"""Ablation: the engine's individual design choices.

Not a paper figure — DESIGN.md calls for ablation benches on the design
choices the paper argues for.  Two are measured here on the NetFlow-like
workload:

* **f2/f3 label-degree pruning** (`use_degree_filter`): enumeration-time
  candidate pruning.  Disabling it must not change the answers (the
  correctness tests assert this too) and shows how much work it saves.
* **edge-slot recycling** (`recycle_edge_ids`): affects memory only —
  runtime and answers must be unchanged, placeholders must shrink.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table

SUFFIX = 600
BATCH_SIZE = 256


def _run(stream, workload):
    rows = []
    checks = []
    prefix = len(stream) - SUFFIX
    for suite, query in workload:
        runs = {}
        for label, kwargs in (
            ("full", {}),
            ("no-degree-filter", {}),
            ("no-recycling", {"recycle_edge_ids": False}),
        ):
            run = run_mnemonic_stream(query, stream, initial_prefix=prefix,
                                      batch_size=BATCH_SIZE, query_name=suite, **kwargs)
            runs[label] = run
        # The degree filter is an engine config knob; re-run with it disabled.
        from repro.core.engine import EngineConfig, MnemonicEngine
        from repro.streams.config import StreamConfig
        from repro.streams.events import EventKind

        config = EngineConfig(stream=StreamConfig(batch_size=BATCH_SIZE),
                              use_degree_filter=False, collect_embeddings=False)
        engine = MnemonicEngine(query, config=config)
        engine.load_initial([e for e in stream[:prefix] if e.kind is EventKind.INSERT])
        import time

        start = time.perf_counter()
        result = engine.run(list(stream[prefix:]))
        no_filter_seconds = time.perf_counter() - start

        rows.append([
            suite,
            runs["full"].seconds,
            no_filter_seconds,
            runs["no-recycling"].seconds,
            runs["full"].embeddings,
            result.total_positive,
            runs["full"].extra["placeholders"],
            runs["no-recycling"].extra["placeholders"],
        ])
        checks.append((runs["full"].embeddings, result.total_positive,
                       runs["no-recycling"].embeddings,
                       runs["full"].extra["placeholders"],
                       runs["no-recycling"].extra["placeholders"]))
    return rows, checks


@pytest.mark.benchmark(group="ablation")
def test_ablation_design_choices(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, checks = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Ablation - degree pruning and edge-slot recycling",
        ["suite", "full_s", "no_degree_filter_s", "no_recycling_s",
         "embeddings", "embeddings_no_filter", "placeholders", "placeholders_no_recycling"],
        rows,
    )
    write_result("ablation_design_choices", table)
    for full_emb, nofilter_emb, norecycle_emb, ph_full, ph_norecycle in checks:
        # Neither knob may change the answers; recycling may only shrink slots.
        assert full_emb == nofilter_emb == norecycle_emb
        assert ph_full <= ph_norecycle
