"""Figure 14: homomorphic enumeration, Mnemonic vs TurboFlux (NetFlow stream).

Homomorphism drops the injectivity check, so enumeration is cheaper and
none of the paper's queries time out; Mnemonic stays ahead (4.2x average
there).  The reproduction reruns the Figure 6 setup with the
homomorphism match definition.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream, run_turboflux_stream
from repro.bench.reporting import format_table
from repro.matchers import HomomorphismMatcher

SUFFIX = 500
BATCH_SIZE = 256


def _run(stream, workload):
    rows = []
    for suite, query in workload:
        mnemonic = run_mnemonic_stream(query, stream, match_def=HomomorphismMatcher(),
                                       initial_prefix=len(stream) - SUFFIX,
                                       batch_size=BATCH_SIZE, query_name=suite)
        turboflux = run_turboflux_stream(query, stream, match_def=HomomorphismMatcher(),
                                         initial_prefix=len(stream) - SUFFIX, query_name=suite)
        speedup = turboflux.seconds / mnemonic.seconds if mnemonic.seconds > 0 else 0.0
        rows.append([suite, mnemonic.seconds, turboflux.seconds, speedup,
                     mnemonic.embeddings, turboflux.embeddings])
    return rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_homomorphism(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 14 - homomorphic enumeration: runtime (s) per query suite",
        ["suite", "mnemonic_s", "turboflux_s", "speedup", "mn_embeddings", "tf_embeddings"],
        rows,
    )
    write_result("fig14_homomorphism", table)
    # Shape checks: every suite finishes (no timeouts) and the multigraph-aware
    # engine never reports fewer homomorphic matches than the collapsed view.
    for row in rows:
        assert row[1] > 0 and row[2] > 0
        assert row[4] >= row[5]
