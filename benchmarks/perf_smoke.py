"""Perf smoke job: fast fig06/fig08 runs gated on candidates-scanned regression.

Runs the fig06 insert-only NetFlow workload at stream=500 and the fig08
traversals-per-update sweep, and emits ``BENCH_pr.json`` with per-suite
runtime, ``candidates_scanned`` and ``filter_traversals`` totals.  The
job then compares ``candidates_scanned`` against the checked-in baseline
(``benchmarks/perf_baseline.json``) and **fails on a >20% regression**
for any suite.  Runtimes are reported but never gated — wall-clock on
shared CI runners is noise; the scanned-candidates counter is
deterministic.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                    # gate vs baseline
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline   # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.harness import run_mnemonic_stream
from repro.bench.metrics import traversals_per_update
from repro.datasets import NetFlowConfig, build_query_workload, generate_netflow_stream

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "perf_baseline.json")
OUTPUT_PATH = os.path.join(HERE, "BENCH_pr.json")

#: fig06 configuration, pinned to the stream=500 row
FIG06_SUFFIX = 500
FIG06_BATCH = 256
#: fig08 batch-size sweep at the same suffix
FIG08_BATCH_SIZES = (1, 16, 512)

#: allowed relative growth of candidates_scanned before the job fails
REGRESSION_TOLERANCE = 0.20


def build_workload():
    """The netflow_workload fixture's exact configuration (see conftest.py)."""
    stream = generate_netflow_stream(
        NetFlowConfig(num_events=3000, num_hosts=450, attachment=0.65,
                      repeat_probability=0.10, seed=101)
    )
    workload = build_query_workload(
        stream, tree_sizes=(3, 6, 9), graph_sizes=(6,),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    return stream, workload


def run_fig06(stream, workload) -> dict:
    prefix = len(stream) - FIG06_SUFFIX
    results = {}
    for suite, query in workload:
        run = run_mnemonic_stream(
            query, stream, initial_prefix=prefix, batch_size=FIG06_BATCH, query_name=suite
        )
        results[suite] = {
            "seconds": run.seconds,
            "candidates_scanned": run.extra["candidates_scanned"],
            "filter_traversals": run.extra["filter_traversals"],
            "embeddings": run.embeddings,
        }
    return results


def run_fig08(stream, workload) -> dict:
    prefix = len(stream) - FIG06_SUFFIX
    results = {}
    for suite, query in workload:
        for batch_size in FIG08_BATCH_SIZES:
            run = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=batch_size, query_name=suite
            )
            results[f"{suite}@batch{batch_size}"] = {
                "seconds": run.seconds,
                "candidates_scanned": run.extra["candidates_scanned"],
                "filter_traversals": run.extra["filter_traversals"],
                "traversals_per_update": traversals_per_update(run.run_result),
            }
    return results


def compare(current: dict, baseline: dict) -> list[str]:
    """Return the list of regression messages (empty when the gate passes)."""
    failures = []
    for figure, suites in baseline.items():
        for suite, metrics in suites.items():
            base = metrics.get("candidates_scanned")
            now = current.get(figure, {}).get(suite, {}).get("candidates_scanned")
            if base is None or now is None:
                failures.append(f"{figure}/{suite}: missing from current run")
                continue
            if base == 0:
                continue
            growth = (now - base) / base
            if growth > REGRESSION_TOLERANCE:
                failures.append(
                    f"{figure}/{suite}: candidates_scanned {base} -> {now} "
                    f"(+{growth:.0%}, tolerance {REGRESSION_TOLERANCE:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="refresh benchmarks/perf_baseline.json instead of gating against it",
    )
    args = parser.parse_args(argv)

    stream, workload = build_workload()
    current = {"fig06": run_fig06(stream, workload), "fig08": run_fig08(stream, workload)}

    with open(OUTPUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(current, fh, indent=2, sort_keys=True)
    print(f"wrote {OUTPUT_PATH}")
    for figure, suites in current.items():
        for suite, metrics in sorted(suites.items()):
            print(
                f"  {figure}/{suite}: {metrics['seconds']:.3f}s, "
                f"candidates_scanned={metrics['candidates_scanned']}"
            )

    if args.write_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
        print(f"wrote {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; run with --write-baseline first", file=sys.stderr)
        return 2
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = compare(current, baseline)
    if failures:
        print("candidates-scanned regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("candidates-scanned regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
