"""Perf smoke job: fast fig06/fig08 runs gated on candidates-scanned regression.

Runs the fig06 insert-only NetFlow workload at stream=500, the fig08
traversals-per-update sweep, and a multi-query scenario (8 standing
queries sharing one engine), and emits ``BENCH_pr.json`` with per-suite
runtime, ``candidates_scanned`` and ``filter_traversals`` totals.  The
job then compares ``candidates_scanned`` against the checked-in baseline
(``benchmarks/perf_baseline.json``) and **fails on a >20% regression**
for any suite.  Runtimes are reported but never gated — wall-clock on
shared CI runners is noise; the scanned-candidates counter is
deterministic.

The multi-query scenario additionally gates the sharing contract
itself, not just its drift: the 8 standing queries must scan strictly
fewer candidates than 8 independent engines, their per-query result
sets must be identical to the independent runs, and the process-backend
pass must publish exactly one shared-memory snapshot per enumeration
phase (instead of one per query per batch).

The ``kernel_parity`` gate protects the columnar enumeration kernel: on
the fig06 insert-only stream and a fig08-style insert+delete stream, the
arena-backed kernel (``EngineConfig(kernel="columnar")``) must produce
positive and negative identity sets bit-identical to the tuple-at-a-time
reference (``kernel="python"``), under both the serial and the process
backend, and the serial runs must agree on ``candidates_scanned`` to the
digit (the kernel batches the same scans, it must not add or skip any).

The ``ingest_parity`` gate protects the columnar ingest path
(``EngineConfig(ingest="columnar")``): serial runs must match the
per-edge reference on identity sets *and* scan counters to the digit,
pipelined and sharded runs on identity sets (sharded also on aggregate
counters), the raw graph replay must assign identical edge-id sequences
(recycling included), and the columnar mutation+index throughput must
clear a loose events/sec floor so the path cannot silently degrade.

The ``pipeline_parity`` gate protects the pipelined execution mode: on
an insert+delete stream, ``pipeline="pipelined"`` must produce
bit-identical positive *and* negative result sets to the serial mode,
and every pool-dispatched phase must publish exactly one epoch (the
double-buffered writer never publishes more or fewer).

The ``service_parity`` gate protects the streaming service layer: on a
boundary-invariant insert+delete stream, broker-fed runs (fixed-size
batching through the producer thread) and adaptive runs (virtual-clock
rate-controlled replay with ``max_batch_delay`` flushing) must produce
positive and negative identity sets bit-identical to the fixed-batch
serial engine, in both serial and pipelined modes; broker-fed runs must
additionally leave ``candidates_scanned`` untouched and every run must
report an ingest-to-result latency rollup.

The ``durability_parity`` gate protects the durable-state stack: a
journaled, checkpointed, DEBI-spilling engine killed mid-stream and
recovered with ``MnemonicEngine.open`` must reproduce the uninterrupted
run's positive and negative identity multisets exactly, with real rows
on the cold tier; spill and journal counters ride along in the metrics.

The ``self_healing_parity`` gate protects the supervised execution
layer: runs whose pool workers are deterministically SIGKILLed
mid-stream (1..3 faults, serial and pipelined modes) must complete with
result sets bit-identical to the fault-free run and at least one
recorded respawn; a hung worker must be cut off by the epoch deadline
(no deadlock) and recovered the same way; and exhausting the respawn
budget must degrade to the thread backend while still matching the
fault-free results.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                    # gate vs baseline
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline   # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.harness import (
    run_mnemonic_stream,
    run_multi_query_stream,
    run_service_stream,
    run_sharded_stream,
)
from repro.bench.metrics import traversals_per_update
from repro.core.parallel import ParallelConfig
from repro.datasets import NetFlowConfig, build_query_workload, generate_netflow_stream
from repro.streams.config import StreamType
from repro.streams.events import EventKind, StreamEvent

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "perf_baseline.json")
OUTPUT_PATH = os.path.join(HERE, "BENCH_pr.json")

#: fig06 configuration, pinned to the stream=500 row
FIG06_SUFFIX = 500
FIG06_BATCH = 256
#: fig08 batch-size sweep at the same suffix
FIG08_BATCH_SIZES = (1, 16, 512)
#: the 8 standing queries of the multi-query scenario (6 trees + 2 graphs)
MULTI_QUERY_TREE_SIZES = (3, 4, 5, 6, 7, 9)
MULTI_QUERY_GRAPH_SIZES = (5, 6)

#: allowed relative growth of candidates_scanned before the job fails
REGRESSION_TOLERANCE = 0.20

#: minimum mutation+index events/sec for the columnar serial ingest path.
#: Local runs clear ~10x this; the slack absorbs shared-runner noise while
#: still catching an accidental fall-back to the per-edge path.
INGEST_THROUGHPUT_FLOOR = 10_000.0

#: figures gated against perf_baseline.json.  service_parity is excluded:
#: its adaptive rows batch by arrival time, so their scan counts shift a
#: little with thread interleaving — the gate instead asserts the strong
#: invariants directly (identity-set equality; broker rows must match the
#: serial scan count *exactly*) every run.
BASELINE_FIGURES = (
    "fig06", "fig08", "multi_query", "pipeline_parity", "kernel_parity"
)


def build_workload():
    """The netflow_workload fixture's exact configuration (see conftest.py)."""
    stream = generate_netflow_stream(
        NetFlowConfig(num_events=3000, num_hosts=450, attachment=0.65,
                      repeat_probability=0.10, seed=101)
    )
    workload = build_query_workload(
        stream, tree_sizes=(3, 6, 9), graph_sizes=(6,),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    return stream, workload


def run_fig06(stream, workload) -> dict:
    prefix = len(stream) - FIG06_SUFFIX
    results = {}
    for suite, query in workload:
        run = run_mnemonic_stream(
            query, stream, initial_prefix=prefix, batch_size=FIG06_BATCH, query_name=suite
        )
        results[suite] = {
            "seconds": run.seconds,
            "candidates_scanned": run.extra["candidates_scanned"],
            "filter_traversals": run.extra["filter_traversals"],
            "embeddings": run.embeddings,
        }
    return results


def run_fig08(stream, workload) -> dict:
    prefix = len(stream) - FIG06_SUFFIX
    results = {}
    for suite, query in workload:
        for batch_size in FIG08_BATCH_SIZES:
            run = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=batch_size, query_name=suite
            )
            results[f"{suite}@batch{batch_size}"] = {
                "seconds": run.seconds,
                "candidates_scanned": run.extra["candidates_scanned"],
                "filter_traversals": run.extra["filter_traversals"],
                "traversals_per_update": traversals_per_update(run.run_result),
            }
    return results


def positive_identities(run_result) -> set:
    return {
        e.identity()
        for snapshot in run_result.snapshots
        for e in snapshot.positive_embeddings
    }


def negative_identities(run_result) -> set:
    return {
        e.identity()
        for snapshot in run_result.snapshots
        for e in snapshot.negative_embeddings
    }


def run_kernel_parity(stream) -> tuple[dict, list[str]]:
    """The columnar-kernel gate: arena kernel vs the tuple reference.

    Two streams (fig06 insert-only; a fig08-style insert+delete mix) and
    two backends (serial; process pool) per suite.  Every columnar run's
    positive and negative identity sets must equal the ``kernel="python"``
    reference bit-for-bit, and the serial runs must agree on
    ``candidates_scanned`` exactly: the kernel batches the same candidate
    fetches the tuple path performs one row at a time, so any drift means
    a pruning predicate fired at the wrong point.
    """
    workload = build_query_workload(
        stream, tree_sizes=(3, 6, 9), graph_sizes=(6,),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    suffix = stream[prefix:]
    deletes = [
        StreamEvent.delete(e.src, e.dst, e.label, timestamp=e.timestamp)
        for e in suffix[::2]
        if e.kind is EventKind.INSERT
    ]
    mixed = list(stream[:prefix]) + list(suffix) + deletes
    streams = {
        "insert": (list(stream), StreamType.INSERT_ONLY),
        "mixed": (mixed, StreamType.INSERT_DELETE),
    }
    parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=32)
    failures: list[str] = []
    metrics: dict[str, dict] = {}
    for suite, query in workload:
        for stream_name, (events, stream_type) in streams.items():
            reference = run_mnemonic_stream(
                query, events, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=stream_type, collect_embeddings=True,
                kernel="python", query_name=suite,
            )
            ref_pos = positive_identities(reference.run_result)
            ref_neg = negative_identities(reference.run_result)
            if not ref_pos:
                failures.append(
                    f"kernel_parity/{suite}.{stream_name}: vacuous gate "
                    "(reference produced no positive embeddings)"
                )
            for backend_name, kwargs in (
                ("serial", {}),
                ("process", {"parallel": parallel}),
            ):
                run = run_mnemonic_stream(
                    query, events, initial_prefix=prefix, batch_size=FIG06_BATCH,
                    stream_type=stream_type, collect_embeddings=True,
                    kernel="columnar", query_name=suite, **kwargs,
                )
                label = f"kernel_parity/{suite}.{stream_name}.{backend_name}"
                if positive_identities(run.run_result) != ref_pos:
                    failures.append(
                        f"{label}: positive results differ from the tuple reference"
                    )
                if negative_identities(run.run_result) != ref_neg:
                    failures.append(
                        f"{label}: negative results differ from the tuple reference"
                    )
                if (
                    backend_name == "serial"
                    and run.extra["candidates_scanned"]
                    != reference.extra["candidates_scanned"]
                ):
                    failures.append(
                        f"{label}: candidates_scanned diverged from the reference "
                        f"({reference.extra['candidates_scanned']} -> "
                        f"{run.extra['candidates_scanned']})"
                    )
                metrics[f"{suite}.{stream_name}.{backend_name}"] = {
                    "seconds": run.seconds,
                    "reference_seconds": reference.seconds,
                    "candidates_scanned": run.extra["candidates_scanned"],
                    "positive": run.embeddings,
                    "negative": run.negative_embeddings,
                }
    return metrics, failures


def run_ingest_parity(stream) -> tuple[dict, list[str]]:
    """The columnar-ingest gate: vectorized batch mutations vs per-edge.

    ``EngineConfig(ingest="columnar")`` decodes each sealed batch into
    int64 columns and applies graph mutation, DEBI/index maintenance and
    snapshot publication in bulk; the contract is **bit-identity** with
    the per-edge reference path, not mere result equality:

    * serial runs must agree on positive and negative identity sets AND
      on ``candidates_scanned`` / ``filter_traversals`` to the digit
      (insert-only and insert+delete streams);
    * pipelined runs (process pool, dirty-slice publication active) must
      agree on identity sets;
    * sharded runs (2 shards, per-shard column splits) must agree on
      identity sets and aggregate scan counters;
    * the raw graph replay must assign the **same edge-id sequence**,
      including per-source newest-first recycling;
    * the columnar serial mutation+index throughput must clear a floor —
      a deliberately loose one (shared runners), pinned so the path
      cannot silently fall back to per-edge.
    """
    from repro.graph.adjacency import DynamicGraph
    from repro.streams.events import EventColumns

    workload = build_query_workload(
        stream, tree_sizes=(3, 6), graph_sizes=(),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    suffix = stream[prefix:]
    deletes = [
        StreamEvent.delete(e.src, e.dst, e.label, timestamp=e.timestamp)
        for e in suffix[::2]
        if e.kind is EventKind.INSERT
    ]
    mixed = list(stream[:prefix]) + list(suffix) + deletes
    streams = {
        "insert": (list(stream), StreamType.INSERT_ONLY),
        "mixed": (mixed, StreamType.INSERT_DELETE),
    }
    parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=32)
    failures: list[str] = []
    metrics: dict[str, dict] = {}

    # -- edge-id sequence parity on the raw graph (batch-by-batch replay)
    per_edge_graph = DynamicGraph()
    columnar_graph = DynamicGraph()
    events = [e for e in mixed if e.kind is EventKind.INSERT]
    for lo in range(0, len(events), FIG06_BATCH):
        batch = events[lo : lo + FIG06_BATCH]
        ref_ids = [
            per_edge_graph.add_edge(
                e.src, e.dst, e.label, e.timestamp,
                src_label=e.src_label, dst_label=e.dst_label,
            )
            for e in batch
        ]
        columns = EventColumns.from_events(EventKind.INSERT, batch)
        col_ids = [
            int(i)
            for i in columnar_graph.apply_insert_columns(
                columns.src, columns.dst, columns.label,
                columns.timestamp, columns.src_label, columns.dst_label,
            )
        ]
        if col_ids != ref_ids:
            failures.append(
                f"ingest_parity: edge-id sequence diverged in batch at {lo}"
            )
            break

    for suite, query in workload:
        for stream_name, (events, stream_type) in streams.items():
            reference = run_mnemonic_stream(
                query, events, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=stream_type, collect_embeddings=True,
                ingest="per_edge", query_name=suite,
            )
            ref_pos = positive_identities(reference.run_result)
            ref_neg = negative_identities(reference.run_result)
            if not ref_pos:
                failures.append(
                    f"ingest_parity/{suite}.{stream_name}: vacuous gate "
                    "(per-edge reference produced no positive embeddings)"
                )
            run = run_mnemonic_stream(
                query, events, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=stream_type, collect_embeddings=True,
                ingest="columnar", query_name=suite,
            )
            label = f"ingest_parity/{suite}.{stream_name}.serial"
            if positive_identities(run.run_result) != ref_pos:
                failures.append(f"{label}: positive results differ from per-edge")
            if negative_identities(run.run_result) != ref_neg:
                failures.append(f"{label}: negative results differ from per-edge")
            for counter in ("candidates_scanned", "filter_traversals"):
                if run.extra[counter] != reference.extra[counter]:
                    failures.append(
                        f"{label}: {counter} diverged "
                        f"({reference.extra[counter]} -> {run.extra[counter]})"
                    )
            split = run.extra["phase_split"]
            ingest_seconds = split["update_seconds"] + split["filter_seconds"]
            events_in_suffix = len(events) - prefix
            throughput = (
                events_in_suffix / ingest_seconds if ingest_seconds > 0 else 0.0
            )
            if throughput < INGEST_THROUGHPUT_FLOOR:
                failures.append(
                    f"{label}: mutation+index throughput {throughput:,.0f} ev/s "
                    f"below the {INGEST_THROUGHPUT_FLOOR:,.0f} ev/s floor"
                )
            metrics[f"{suite}.{stream_name}.serial"] = {
                "seconds": run.seconds,
                "per_edge_seconds": reference.seconds,
                "candidates_scanned": run.extra["candidates_scanned"],
                "filter_traversals": run.extra["filter_traversals"],
                "ingest_events_per_second": throughput,
                "phase_split": split,
            }

            # pipelined: dirty-slice publication is live (process pool)
            pipe_runs = {}
            for ingest in ("per_edge", "columnar"):
                pipe_runs[ingest] = run_mnemonic_stream(
                    query, events, initial_prefix=prefix, batch_size=FIG06_BATCH,
                    stream_type=stream_type, collect_embeddings=True,
                    parallel=parallel, pipeline="pipelined",
                    ingest=ingest, query_name=suite,
                )
            label = f"ingest_parity/{suite}.{stream_name}.pipelined"
            if positive_identities(
                pipe_runs["columnar"].run_result
            ) != positive_identities(pipe_runs["per_edge"].run_result):
                failures.append(f"{label}: positive results differ from per-edge")
            if negative_identities(
                pipe_runs["columnar"].run_result
            ) != negative_identities(pipe_runs["per_edge"].run_result):
                failures.append(f"{label}: negative results differ from per-edge")
            metrics[f"{suite}.{stream_name}.pipelined"] = {
                "seconds": pipe_runs["columnar"].seconds,
                "per_edge_seconds": pipe_runs["per_edge"].seconds,
                "candidates_scanned": pipe_runs["columnar"].extra["candidates_scanned"],
                "publish_stats": pipe_runs["columnar"].extra.get("publish_stats"),
            }

            # sharded: per-shard column splits, mirrored DEBI bulk updates
            shard_runs = {}
            for ingest in ("per_edge", "columnar"):
                shard_runs[ingest] = run_sharded_stream(
                    query, events, shards=2, initial_prefix=prefix,
                    batch_size=FIG06_BATCH, stream_type=stream_type,
                    collect_embeddings=True, ingest=ingest, query_name=suite,
                )
            label = f"ingest_parity/{suite}.{stream_name}.sharded"
            if positive_identities(
                shard_runs["columnar"].run_result
            ) != positive_identities(shard_runs["per_edge"].run_result):
                failures.append(f"{label}: positive results differ from per-edge")
            if negative_identities(
                shard_runs["columnar"].run_result
            ) != negative_identities(shard_runs["per_edge"].run_result):
                failures.append(f"{label}: negative results differ from per-edge")
            for counter in ("candidates_scanned", "filter_traversals"):
                if (
                    shard_runs["columnar"].extra[counter]
                    != shard_runs["per_edge"].extra[counter]
                ):
                    failures.append(
                        f"{label}: {counter} diverged "
                        f"({shard_runs['per_edge'].extra[counter]} -> "
                        f"{shard_runs['columnar'].extra[counter]})"
                    )
            metrics[f"{suite}.{stream_name}.sharded"] = {
                "seconds": shard_runs["columnar"].seconds,
                "per_edge_seconds": shard_runs["per_edge"].seconds,
                "candidates_scanned": shard_runs["columnar"].extra["candidates_scanned"],
            }
    return metrics, failures


def run_shard_parity(stream) -> tuple[dict, list[str]]:
    """The partition-parallel gate: ShardedEngine(shards=N) vs the single engine.

    Two streams per suite — the fig06 insert-only suffix and a fig09-style
    insert+delete mix — at shards = 1, 2, 4 (serial backend, so the scan
    counter is deterministic).  Every sharded run's positive and negative
    identity sets must equal the single engine's **bit-for-bit**: the
    global edge-id allocator, the replica-complete adjacency at each
    owner, and the mirrored DEBI bits are exactly the machinery that
    makes a partitioned run indistinguishable from one process, and any
    drift here means an ownership or forwarding rule is wrong.  The
    aggregate ``candidates_scanned`` is bounded, not exact: cross-shard
    frontier re-reads may re-scan a pool another shard already paid for,
    so the sum must stay within [single, N x single].
    """
    workload = build_query_workload(
        stream, tree_sizes=(3, 6), graph_sizes=(6,),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    suffix = stream[prefix:]
    deletes = [
        StreamEvent.delete(e.src, e.dst, e.label, timestamp=e.timestamp)
        for e in suffix[::2]
        if e.kind is EventKind.INSERT
    ]
    mixed = list(stream[:prefix]) + list(suffix) + deletes
    streams = {
        "insert": (list(stream), StreamType.INSERT_ONLY),
        "mixed": (mixed, StreamType.INSERT_DELETE),
    }
    failures: list[str] = []
    metrics: dict[str, dict] = {}
    for suite, query in workload:
        for stream_name, (events, stream_type) in streams.items():
            reference = run_mnemonic_stream(
                query, events, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=stream_type, collect_embeddings=True,
                query_name=suite,
            )
            ref_pos = positive_identities(reference.run_result)
            ref_neg = negative_identities(reference.run_result)
            ref_scanned = reference.extra["candidates_scanned"]
            if not ref_pos:
                failures.append(
                    f"shard_parity/{suite}.{stream_name}: vacuous gate "
                    "(single engine produced no positive embeddings)"
                )
            if stream_name == "mixed" and not ref_neg:
                failures.append(
                    f"shard_parity/{suite}.{stream_name}: vacuous gate "
                    "(single engine produced no negative embeddings)"
                )
            for shards in (1, 2, 4):
                run = run_sharded_stream(
                    query, events, shards=shards, initial_prefix=prefix,
                    batch_size=FIG06_BATCH, stream_type=stream_type,
                    collect_embeddings=True, query_name=suite,
                )
                label = f"shard_parity/{suite}.{stream_name}@{shards}"
                if positive_identities(run.run_result) != ref_pos:
                    failures.append(
                        f"{label}: positive results differ from the single engine"
                    )
                if negative_identities(run.run_result) != ref_neg:
                    failures.append(
                        f"{label}: negative results differ from the single engine"
                    )
                scanned = run.extra["candidates_scanned"]
                if not (ref_scanned <= scanned <= shards * ref_scanned):
                    failures.append(
                        f"{label}: aggregate candidates_scanned {scanned} outside "
                        f"[{ref_scanned}, {shards * ref_scanned}]"
                    )
                metrics[f"{suite}.{stream_name}@{shards}"] = {
                    "seconds": run.seconds,
                    "reference_seconds": reference.seconds,
                    "candidates_scanned": scanned,
                    "positive": run.embeddings,
                    "negative": run.negative_embeddings,
                    "frontier_forwards": run.extra["frontier"]["frontier_forwards"],
                    "frontier_rows": run.extra["frontier"]["frontier_rows"],
                }
    return metrics, failures


def run_pipeline_parity(stream) -> tuple[dict, list[str]]:
    """The pipelined-execution gate: serial vs pipelined on insert+delete.

    Overlapping batch k+1's mutations with batch k's enumeration must not
    change a single embedding — positive or negative — and each
    pool-dispatched phase must publish exactly one epoch.  Returns the
    metrics row for ``BENCH_pr.json`` plus the violated invariants.
    """
    workload = build_query_workload(
        stream, tree_sizes=(3, 6), graph_sizes=(6,),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    # Mixed workload: the streamed suffix plus deletions of every second
    # streamed insertion (so delete batches hit live, indexed edges).
    suffix = stream[prefix:]
    deletes = [
        StreamEvent.delete(e.src, e.dst, e.label, timestamp=e.timestamp)
        for e in suffix[::2]
        if e.kind is EventKind.INSERT
    ]
    mixed = list(stream[:prefix]) + list(suffix) + deletes
    parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=32)
    failures: list[str] = []
    metrics: dict[str, dict] = {}
    for suite, query in workload:
        runs = {}
        for mode in ("serial", "pipelined"):
            runs[mode] = run_mnemonic_stream(
                query, mixed, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=StreamType.INSERT_DELETE, collect_embeddings=True,
                parallel=parallel, pipeline=mode, query_name=suite,
            )
        serial, pipelined = runs["serial"], runs["pipelined"]
        if positive_identities(pipelined.run_result) != positive_identities(
            serial.run_result
        ):
            failures.append(
                f"pipeline_parity/{suite}: pipelined positive results differ from serial"
            )
        if negative_identities(pipelined.run_result) != negative_identities(
            serial.run_result
        ):
            failures.append(
                f"pipeline_parity/{suite}: pipelined negative results differ from serial"
            )
        exports = pipelined.extra["snapshot_exports"]
        pool_phases = pipelined.extra["pool_phases"]
        if pool_phases == 0:
            failures.append(
                f"pipeline_parity/{suite}: no phase was dispatched to the pool "
                "(pool unavailable?)"
            )
        elif exports != pool_phases:
            failures.append(
                f"pipeline_parity/{suite}: expected exactly one epoch per "
                f"dispatched phase, got {exports} epochs for {pool_phases} phases"
            )
        metrics[suite] = {
            "seconds": pipelined.seconds,
            "serial_seconds": serial.seconds,
            "candidates_scanned": pipelined.extra["candidates_scanned"],
            "snapshot_exports": exports,
            "pool_phases": pool_phases,
            "enumeration_phases": pipelined.extra["enumeration_phases"],
            "positive": pipelined.embeddings,
            "negative": pipelined.negative_embeddings,
        }
    return metrics, failures


def build_parity_mixed_stream(stream, prefix) -> list[StreamEvent]:
    """An insert+delete stream whose result identities are batch-boundary invariant.

    The adaptive (broker-fed) runs batch by *arrival time*, so their
    batch boundaries legitimately differ from the fixed-size serial
    baseline; the gate therefore needs a stream whose aggregate positive
    and negative identity sets cannot depend on where batches split:

    * deletions target only triples that are **unique** in the whole
      stream, so deletion resolution picks the same edge instance no
      matter the graph state it runs against;
    * every deletion is placed (all deletions trail the whole suffix)
      so that **more than one batch cap of events** separates it from
      its insertion — enforced per candidate during construction, not
      assumed — so a deletion can never share a batch with its
      insertion under any boundary alignment: the in-batch cancellation
      elision never fires and edge-id assignment is identical across
      runs.
    """
    from collections import Counter

    suffix = stream[prefix:]
    triple_counts = Counter(e.as_triple() for e in stream)
    candidates = [
        (position, event)
        for position, event in enumerate(suffix[: len(suffix) // 2])
        if event.kind is EventKind.INSERT and triple_counts[event.as_triple()] == 1
    ][::2]
    deletes: list[StreamEvent] = []
    for insert_position, event in candidates:
        delete_position = len(suffix) + len(deletes)
        if delete_position - insert_position > FIG06_BATCH:
            deletes.append(
                StreamEvent.delete(event.src, event.dst, event.label,
                                   timestamp=event.timestamp)
            )
    assert deletes, "parity stream needs unique-triple deletions to be meaningful"
    return list(stream[:prefix]) + list(suffix) + deletes


def run_service_parity(stream) -> tuple[dict, list[str]]:
    """The service-layer gate: broker-fed / adaptive runs vs the fixed serial engine.

    Four configurations are compared against the fixed-batch serial
    baseline on an insert+delete stream:

    * ``broker`` (serial / pipelined): the same fixed-size batching, fed
      through the StreamBroker's producer thread — batch boundaries are
      identical, so positive and negative identity sets must match the
      baseline exactly, and the serial row's ``candidates_scanned`` must
      not move at all;
    * ``adaptive`` (serial / pipelined): rate-controlled virtual-clock
      replay with ``max_batch_delay`` flushing — boundaries differ, but
      on the boundary-invariant mixed stream the identity sets must
      still match bit-for-bit.

    Every broker-fed run must also report an ingest-to-result latency
    rollup (the accounting the fig18 benchmark builds on).
    """
    from repro.streams.clock import VirtualClock

    workload = build_query_workload(
        stream, tree_sizes=(3, 6), graph_sizes=(),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    mixed = build_parity_mixed_stream(stream, prefix)
    parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=32)
    adaptive_rate = 4000.0
    adaptive_delay = 4.5 / adaptive_rate  # ~5-event batches at uniform arrivals
    failures: list[str] = []
    metrics: dict[str, dict] = {}
    for suite, query in workload:
        baseline = run_mnemonic_stream(
            query, mixed, initial_prefix=prefix, batch_size=FIG06_BATCH,
            stream_type=StreamType.INSERT_DELETE, collect_embeddings=True,
            query_name=suite,
        )
        base_pos = positive_identities(baseline.run_result)
        base_neg = negative_identities(baseline.run_result)
        if not base_pos or not base_neg:
            failures.append(
                f"service_parity/{suite}: vacuous gate (positives={len(base_pos)}, "
                f"negatives={len(base_neg)})"
            )
        runs = {
            "broker_serial": dict(pipeline="serial"),
            "broker_pipelined": dict(pipeline="pipelined", parallel=parallel),
            "adaptive_serial": dict(
                pipeline="serial", events_per_second=adaptive_rate,
                max_batch_delay=adaptive_delay, clock=VirtualClock(),
            ),
            "adaptive_pipelined": dict(
                pipeline="pipelined", parallel=parallel,
                events_per_second=adaptive_rate,
                max_batch_delay=adaptive_delay, clock=VirtualClock(),
            ),
        }
        for mode, kwargs in runs.items():
            run = run_service_stream(
                query, mixed, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=StreamType.INSERT_DELETE, collect_embeddings=True,
                query_name=suite, **kwargs,
            )
            label = f"service_parity/{suite}.{mode}"
            if positive_identities(run.run_result) != base_pos:
                failures.append(f"{label}: positive results differ from fixed serial")
            if negative_identities(run.run_result) != base_neg:
                failures.append(f"{label}: negative results differ from fixed serial")
            if mode == "broker_serial":
                # Identical batching AND identical backend: the scan
                # counter must not move at all.  (The pipelined rows use
                # the worker pool, where each worker pays its own first
                # touch on the shared scan cache, so their counter is
                # only comparable to other pool runs — pipeline_parity
                # covers that comparison.)
                if run.extra["candidates_scanned"] != baseline.extra["candidates_scanned"]:
                    failures.append(
                        f"{label}: candidates_scanned changed "
                        f"({baseline.extra['candidates_scanned']} -> "
                        f"{run.extra['candidates_scanned']})"
                    )
            if not run.latency:
                failures.append(f"{label}: broker-fed run reported no latency rollup")
            metrics[f"{suite}.{mode}"] = {
                "seconds": run.seconds,
                "candidates_scanned": run.extra["candidates_scanned"],
                "snapshots": run.extra["snapshots"],
                "positive": run.embeddings,
                "negative": run.negative_embeddings,
                "latency_p50": run.latency.get("p50"),
                "latency_p99": run.latency.get("p99"),
            }
    return metrics, failures


def run_durability_parity(stream) -> tuple[dict, list[str]]:
    """The durable-state gate: kill-and-recover mid-stream vs straight-through.

    A durable engine (journal + checkpoints + spilled DEBI) processes
    half the mixed insert+delete stream, is abandoned without a clean
    shutdown (``close()`` never seals or checkpoints), recovered with
    ``MnemonicEngine.open`` and fed the rest.  The union of pre-crash and
    post-recovery results must equal the uninterrupted durable run
    bit-for-bit, the hot-row budget must actually force rows onto the
    cold tier, and the journal must scan clean.  Spill/journal counters
    are uploaded with the metrics row.

    Not baseline-gated (like service_parity): the gate asserts the
    invariants directly every run.
    """
    import tempfile
    from collections import Counter

    from repro.core.engine import MnemonicEngine
    from repro.storage.config import StorageConfig
    from repro.streams.config import StreamConfig
    from repro.streams.generator import SnapshotGenerator
    from repro.streams.sources import ListSource

    workload = build_query_workload(
        stream, tree_sizes=(3, 6), graph_sizes=(),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    mixed = build_parity_mixed_stream(stream, prefix)
    stream_config = StreamConfig(
        stream_type=StreamType.INSERT_DELETE, batch_size=FIG06_BATCH
    )

    def identities(results):
        counts: Counter = Counter()
        for result in results:
            counts.update(e.identity() for e in result.positive_embeddings)
            counts.update(e.identity() for e in result.negative_embeddings)
        return counts

    failures: list[str] = []
    metrics: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="mnemonic-durability-") as tmp:
        for suite, query in workload:
            from repro.core.engine import EngineConfig

            def make_config(directory):
                return EngineConfig(
                    stream=stream_config, collect_embeddings=True,
                    storage=StorageConfig(
                        directory=directory, checkpoint_interval=4,
                        debi_hot_rows=256, debi_segment_rows=512,
                    ),
                )

            initial = [e for e in mixed[:prefix] if e.kind is EventKind.INSERT]
            snapshots = list(
                SnapshotGenerator(ListSource(list(mixed[prefix:])), stream_config)
            )
            crash_at = len(snapshots) // 2
            label = f"durability_parity/{suite}"

            # Uninterrupted durable run.
            import time

            straight_dir = os.path.join(tmp, f"{suite}-straight")
            engine = MnemonicEngine(query, config=make_config(straight_dir))
            engine.load_initial(list(initial))
            start = time.perf_counter()
            straight = [engine.process_snapshot(s) for s in snapshots]
            straight_seconds = time.perf_counter() - start
            straight_counters = engine.storage_counters()
            engine.close()

            # Kill mid-stream, recover, refeed.
            crash_dir = os.path.join(tmp, f"{suite}-crash")
            engine = MnemonicEngine(query, config=make_config(crash_dir))
            engine.load_initial(list(initial))
            pre = [engine.process_snapshot(s) for s in snapshots[:crash_at]]
            engine.close()  # no seal, no checkpoint: a crash, not a shutdown

            recovered = MnemonicEngine.open(crash_dir)
            info = recovered.recovery_info
            if info["corruption"] is not None:
                failures.append(f"{label}: clean journal reported corruption "
                                f"({info['corruption']})")
            last = info["last_sealed_number"]
            resume = 0 if last is None else last + 1
            if resume != crash_at:
                failures.append(
                    f"{label}: recovery points at epoch {resume}, crashed at {crash_at}"
                )
            post = [recovered.process_snapshot(s) for s in snapshots[crash_at:]]
            counters = recovered.storage_counters()
            recovered.close()

            if identities(pre + post) != identities(straight):
                failures.append(
                    f"{label}: recovered results differ from the uninterrupted run"
                )
            if counters.get("spilled_rows", 0) <= 0:
                failures.append(f"{label}: hot-row budget never forced a spill")
            if straight_counters.get("checkpoints_written", 0) < 2:
                failures.append(f"{label}: straight run cut "
                                f"{straight_counters.get('checkpoints_written', 0)} "
                                "checkpoints; the cadence gate needs >= 2")
            metrics[suite] = {
                "seconds": straight_seconds,
                "candidates_scanned": sum(s.candidates_scanned for s in straight),
                "crash_epoch": crash_at,
                "replayed_records": info["replayed_records"],
                "spilled_rows": counters.get("spilled_rows", 0),
                "debi_disk_bytes": counters.get("debi_disk_bytes", 0),
                "journal_bytes": counters.get("journal_bytes", 0),
                "checkpoints_written": counters.get("checkpoints_written", 0),
            }
    return metrics, failures


def run_self_healing_parity(stream) -> tuple[dict, list[str]]:
    """The chaos gate: killed and hung pool workers must not change a result.

    Every chaos run is compared against a fault-free run of the same
    configuration (process backend, both pipeline modes):

    * ``kill{1..3}``: the first 1..3 pool generations SIGKILL their
      workers mid-enumeration; the supervisor must respawn and
      redispatch the in-flight epochs, the result identity sets must be
      bit-identical, and at least one respawn must be recorded;
    * ``hang``: generation 0 wedges at its first work unit; the epoch
      deadline must cut the drain off (no deadlock), counted in
      ``deadline_expiries``, and recovery proceeds as for a kill;
    * ``exhausted``: more kills than the respawn budget; the engine must
      degrade to the thread backend (recorded in ``degradations``) and
      still match the fault-free results.

    Not baseline-gated (like service_parity): the invariants are
    asserted directly every run.
    """
    import warnings

    from repro.core.supervisor import FaultPolicy
    from repro.utils import faults

    workload = build_query_workload(
        stream, tree_sizes=(6,), graph_sizes=(),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    prefix = len(stream) - FIG06_SUFFIX
    mixed = build_parity_mixed_stream(stream, prefix)
    parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=32)
    failures: list[str] = []
    metrics: dict[str, dict] = {}

    def chaos_run(suite, query, mode, plan, policy):
        with warnings.catch_warnings():
            # Budget exhaustion legitimately warns about the degradation;
            # the gate checks the counters instead of the warning text.
            warnings.simplefilter("ignore", RuntimeWarning)
            with faults.injected(plan):
                return run_mnemonic_stream(
                    query, mixed, initial_prefix=prefix, batch_size=FIG06_BATCH,
                    stream_type=StreamType.INSERT_DELETE, collect_embeddings=True,
                    parallel=parallel, pipeline=mode, fault=policy,
                    query_name=suite,
                )

    def check_identity(label, run, base_pos, base_neg):
        if positive_identities(run.run_result) != base_pos:
            failures.append(f"{label}: positive results differ from fault-free")
        if negative_identities(run.run_result) != base_neg:
            failures.append(f"{label}: negative results differ from fault-free")

    for suite, query in workload:
        for mode in ("serial", "pipelined"):
            baseline = run_mnemonic_stream(
                query, mixed, initial_prefix=prefix, batch_size=FIG06_BATCH,
                stream_type=StreamType.INSERT_DELETE, collect_embeddings=True,
                parallel=parallel, pipeline=mode, query_name=suite,
            )
            base_pos = positive_identities(baseline.run_result)
            base_neg = negative_identities(baseline.run_result)
            if not base_pos or not base_neg:
                failures.append(
                    f"self_healing_parity/{suite}.{mode}: vacuous gate "
                    f"(positives={len(base_pos)}, negatives={len(base_neg)})"
                )

            for kills in (1, 2, 3):
                label = f"self_healing_parity/{suite}.{mode}.kill{kills}"
                run = chaos_run(
                    suite, query, mode,
                    faults.FaultPlan(kill_at_unit=2, kills=kills),
                    FaultPolicy(max_respawns=kills + 1, backoff_initial_seconds=0.0),
                )
                stats = run.extra["fault_stats"]
                check_identity(label, run, base_pos, base_neg)
                if stats["respawns"] < 1:
                    failures.append(f"{label}: no respawn was recorded ({stats})")
                if stats["level"] != "process":
                    failures.append(
                        f"{label}: degraded to {stats['level']} despite budget"
                    )
                metrics[f"{suite}.{mode}.kill{kills}"] = {
                    "seconds": run.seconds,
                    "candidates_scanned": run.extra["candidates_scanned"],
                    "respawns": stats["respawns"],
                    "redispatched_epochs": stats["redispatched_epochs"],
                }

            label = f"self_healing_parity/{suite}.{mode}.hang"
            run = chaos_run(
                suite, query, mode,
                faults.FaultPlan(hang_at_unit=1, hangs=1, hang_seconds=60.0),
                FaultPolicy(max_respawns=2, backoff_initial_seconds=0.0,
                            epoch_deadline_seconds=1.0),
            )
            stats = run.extra["fault_stats"]
            check_identity(label, run, base_pos, base_neg)
            if stats["deadline_expiries"] < 1:
                failures.append(f"{label}: deadline never expired ({stats})")
            if stats["respawns"] < 1:
                failures.append(f"{label}: hung pool was never respawned ({stats})")
            metrics[f"{suite}.{mode}.hang"] = {
                "seconds": run.seconds,
                "candidates_scanned": run.extra["candidates_scanned"],
                "deadline_expiries": stats["deadline_expiries"],
                "respawns": stats["respawns"],
            }

            label = f"self_healing_parity/{suite}.{mode}.exhausted"
            run = chaos_run(
                suite, query, mode,
                faults.FaultPlan(kill_at_unit=2, kills=3),
                FaultPolicy(max_respawns=1, backoff_initial_seconds=0.0),
            )
            stats = run.extra["fault_stats"]
            check_identity(label, run, base_pos, base_neg)
            if stats["level"] != "thread":
                failures.append(
                    f"{label}: expected degradation to the thread backend, "
                    f"got level={stats['level']!r} ({stats})"
                )
            if "process->thread" not in stats["degradations"]:
                failures.append(f"{label}: missing process->thread transition ({stats})")
            metrics[f"{suite}.{mode}.exhausted"] = {
                "seconds": run.seconds,
                "candidates_scanned": run.extra["candidates_scanned"],
                "respawns": stats["respawns"],
                "degradations": stats["degradations"],
            }
    return metrics, failures


def run_multi_query(stream) -> tuple[dict, list[str]]:
    """The multi-query sharing gate: 8 standing queries vs 8 engines.

    Returns the metrics row for ``BENCH_pr.json`` plus the list of
    violated sharing invariants (empty when the gate passes).
    """
    workload = build_query_workload(
        stream,
        tree_sizes=MULTI_QUERY_TREE_SIZES,
        graph_sizes=MULTI_QUERY_GRAPH_SIZES,
        queries_per_suite=1,
        prefix=2000,
        seed=11,
    )
    queries = [(suite, query) for suite, query in workload]
    prefix = len(stream) - FIG06_SUFFIX
    failures: list[str] = []

    shared = run_multi_query_stream(
        queries, stream, initial_prefix=prefix, batch_size=FIG06_BATCH,
        collect_embeddings=True,
    )
    independent_scanned = 0
    for suite, query in queries:
        independent = run_mnemonic_stream(
            query, stream, initial_prefix=prefix, batch_size=FIG06_BATCH,
            collect_embeddings=True, query_name=suite,
        )
        independent_scanned += independent.extra["candidates_scanned"]
        if positive_identities(shared.per_query[suite].run_result) != positive_identities(
            independent.run_result
        ):
            failures.append(
                f"multi_query/{suite}: shared-engine results differ from an "
                "independent engine"
            )
    if shared.candidates_scanned >= independent_scanned:
        failures.append(
            "multi_query: shared run must scan strictly fewer candidates than "
            f"independent engines ({shared.candidates_scanned} >= {independent_scanned})"
        )

    # Process backend: the 8 queries must share one snapshot export per
    # enumeration phase, and produce the same embeddings as the serial pass.
    pooled = run_multi_query_stream(
        queries, stream, initial_prefix=prefix, batch_size=FIG06_BATCH,
        parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=32),
        collect_embeddings=True,
    )
    if pooled.snapshot_exports == 0:
        failures.append(
            "multi_query: process backend never published a shared snapshot "
            "(pool unavailable?)"
        )
    elif pooled.snapshot_exports != pooled.pool_phases:
        failures.append(
            "multi_query: expected exactly one snapshot export per pool-dispatched "
            f"batch, got {pooled.snapshot_exports} exports for {pooled.pool_phases} "
            "pool phases"
        )
    elif pooled.pool_phases != pooled.enumeration_phases:
        # At fig06 scale every batch amortises a publish; a batch silently
        # dropping to the serial path would weaken the sharing claim.
        failures.append(
            "multi_query: only "
            f"{pooled.pool_phases}/{pooled.enumeration_phases} enumeration phases "
            "went through the shared pool"
        )
    for suite, _ in queries:
        if positive_identities(pooled.per_query[suite].run_result) != positive_identities(
            shared.per_query[suite].run_result
        ):
            failures.append(f"multi_query/{suite}: pooled results differ from serial")

    metrics = {
        "shared8": {
            "seconds": shared.seconds,
            "candidates_scanned": shared.candidates_scanned,
            "independent_candidates_scanned": independent_scanned,
            "scan_sharing_ratio": (
                shared.candidates_scanned / independent_scanned
                if independent_scanned
                else 0.0
            ),
            "snapshot_exports_pooled": pooled.snapshot_exports,
            "enumeration_phases": pooled.enumeration_phases,
            "pool_phases": pooled.pool_phases,
            "embeddings": sum(
                run.embeddings for run in shared.per_query.values()
            ),
        }
    }
    return metrics, failures


def compare(current: dict, baseline: dict) -> list[str]:
    """Return the list of regression messages (empty when the gate passes)."""
    failures = []
    for figure, suites in baseline.items():
        for suite, metrics in suites.items():
            base = metrics.get("candidates_scanned")
            now = current.get(figure, {}).get(suite, {}).get("candidates_scanned")
            if base is None or now is None:
                failures.append(f"{figure}/{suite}: missing from current run")
                continue
            if base == 0:
                continue
            growth = (now - base) / base
            if growth > REGRESSION_TOLERANCE:
                failures.append(
                    f"{figure}/{suite}: candidates_scanned {base} -> {now} "
                    f"(+{growth:.0%}, tolerance {REGRESSION_TOLERANCE:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="refresh benchmarks/perf_baseline.json instead of gating against it",
    )
    args = parser.parse_args(argv)

    stream, workload = build_workload()
    multi_metrics, sharing_failures = run_multi_query(stream)
    kernel_metrics, kernel_failures = run_kernel_parity(stream)
    ingest_metrics, ingest_failures = run_ingest_parity(stream)
    shard_metrics, shard_failures = run_shard_parity(stream)
    parity_metrics, parity_failures = run_pipeline_parity(stream)
    service_metrics, service_failures = run_service_parity(stream)
    durability_metrics, durability_failures = run_durability_parity(stream)
    healing_metrics, healing_failures = run_self_healing_parity(stream)
    sharing_failures.extend(kernel_failures)
    sharing_failures.extend(ingest_failures)
    sharing_failures.extend(shard_failures)
    sharing_failures.extend(parity_failures)
    sharing_failures.extend(service_failures)
    sharing_failures.extend(durability_failures)
    sharing_failures.extend(healing_failures)
    current = {
        "fig06": run_fig06(stream, workload),
        "fig08": run_fig08(stream, workload),
        "multi_query": multi_metrics,
        "kernel_parity": kernel_metrics,
        "ingest_parity": ingest_metrics,
        "shard_parity": shard_metrics,
        "pipeline_parity": parity_metrics,
        "service_parity": service_metrics,
        "durability_parity": durability_metrics,
        "self_healing_parity": healing_metrics,
    }

    with open(OUTPUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(current, fh, indent=2, sort_keys=True)
    print(f"wrote {OUTPUT_PATH}")
    for figure, suites in current.items():
        for suite, metrics in sorted(suites.items()):
            print(
                f"  {figure}/{suite}: {metrics['seconds']:.3f}s, "
                f"candidates_scanned={metrics['candidates_scanned']}"
            )

    if sharing_failures:
        print("multi-query sharing / kernel / ingest / shard / pipeline / "
              "service / durability / self-healing parity gate FAILED:",
              file=sys.stderr)
        for line in sharing_failures:
            print(f"  {line}", file=sys.stderr)
        return 1

    if args.write_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump({k: current[k] for k in BASELINE_FIGURES}, fh,
                      indent=2, sort_keys=True)
        print(f"wrote {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; run with --write-baseline first", file=sys.stderr)
        return 2
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = compare(current, baseline)
    if failures:
        print("candidates-scanned regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("candidates-scanned regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
