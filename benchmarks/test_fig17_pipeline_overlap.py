"""Pipeline overlap: serial vs pipelined batch execution on the fig06 stream.

The serial batch loop leaves the worker pool idle during every
graph-mutation, DEBI-update and snapshot-publish phase (visible as the
fig07 CPU-usage gaps and the sub-linear fig13 tail).  The pipelined mode
overlaps batch k+1's mutation/DEBI/publish work with batch k's pool
enumeration: workers only ever read the published (double-buffered)
shared-memory epoch, so the coordinator mutates the live graph while
they enumerate the previous frozen one.

This benchmark runs the fig06 NetFlow insert-only workload through both
modes on the process backend and reports wall-clock plus throughput.
Results are bit-identical by construction (gated every CI run by
``benchmarks/perf_smoke.py``'s ``pipeline_parity`` job); here we assert
it once more on the measured runs, and — core-gated like fig13, because
a single-core host cannot overlap anything — that pipelining does not
lose throughput.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.core.parallel import ParallelConfig

SUFFIX = 800
BATCH_SIZE = 128
WORKERS = 2


def _effective_cores() -> int:
    """Cores this process is allowed to run on (affinity beats cpu_count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _positive_identities(run) -> set:
    return {
        e.identity()
        for snapshot in run.run_result.snapshots
        for e in snapshot.positive_embeddings
    }


def _run(stream, workload):
    prefix = len(stream) - SUFFIX
    rows = []
    ratios: dict[str, float] = {}
    identical: dict[str, bool] = {}
    for suite, query in workload:
        runs = {}
        for mode in ("serial", "pipelined"):
            runs[mode] = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=BATCH_SIZE,
                query_name=suite, collect_embeddings=True, pipeline=mode,
                parallel=ParallelConfig(
                    backend="process", num_workers=WORKERS, chunk_size=16
                ),
            )
        serial, pipelined = runs["serial"], runs["pipelined"]
        ratio = serial.seconds / pipelined.seconds if pipelined.seconds > 0 else 0.0
        ratios[suite] = ratio
        identical[suite] = (
            _positive_identities(serial) == _positive_identities(pipelined)
        )
        rows.append([
            suite, serial.seconds, pipelined.seconds, ratio,
            serial.embeddings, pipelined.embeddings, identical[suite],
        ])
    return rows, ratios, identical


@pytest.mark.benchmark(group="fig17_pipeline")
def test_fig17_pipeline_overlap(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, ratios, identical = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    table = format_table(
        "Pipeline overlap - serial vs pipelined batch execution (fig06 stream)",
        ["suite", "serial_s", "pipelined_s", "speedup", "serial_emb",
         "pipelined_emb", "bit_identical"],
        rows,
    )
    write_result("fig17_pipeline_overlap", table)
    # Correctness is unconditional: overlap must never change results.
    assert all(identical.values()), f"modes diverged: {identical}"
    # Throughput is core-gated like fig13: overlapping coordinator work
    # with worker enumeration needs at least coordinator + 1 worker truly
    # in parallel.  Aggregate over suites — per-suite wall-clock on loaded
    # hosts is too noisy for individual floors.
    cores = _effective_cores()
    if cores >= 2:
        mean_ratio = sum(ratios.values()) / len(ratios)
        assert mean_ratio >= 0.9, (
            f"pipelined mode lost throughput on {cores} cores: {ratios}"
        )
