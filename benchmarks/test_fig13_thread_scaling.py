"""Figure 13: speedup over worker count (batch size fixed).

The paper parallelises frontier computation, filtering and enumeration
with OpenMP and reports a 5.22x average speedup at 24 threads.  A pure
Python reproduction cannot show that with threads (the GIL serialises
the enumeration workers), so this benchmark reports *both* backends:

* ``thread`` — faithful pull-based scheduling, expected to stay flat
  around 1x (documented deviation, see EXPERIMENTS.md);
* ``process`` — a persistent worker pool over a shared-memory snapshot
  (see ``docs/parallelism.md``), which is how a Python deployment
  actually obtains multi-core speedup.

The workload is a single large insertion batch of the most
enumeration-heavy suite so that worker start-up costs are amortised the
same way the paper's per-query measurement does.  The speedup
assertions are aggregate (per-cell thresholds proved flaky on loaded
hosts) and the multi-core requirement is gated on the cores this
process may actually use: a single-core CI runner cannot show wall-clock
speedup for any backend.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.core.parallel import ParallelConfig

WORKER_COUNTS = (1, 2, 4, 8)
SUFFIX = 800


def _effective_cores() -> int:
    """Cores this process is allowed to run on (affinity beats cpu_count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pick_query(workload):
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return suites[-1], workload.queries(suites[-1])[0]


def _run(stream, workload):
    suite, query = _pick_query(workload)
    prefix = len(stream) - SUFFIX
    rows = []
    speedups: dict[str, dict[int, float]] = {"thread": {}, "process": {}}
    baseline = run_mnemonic_stream(query, stream, initial_prefix=prefix,
                                   batch_size=SUFFIX, query_name=suite)
    rows.append([suite, "serial", 1, baseline.seconds, 1.0])
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            run = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=SUFFIX, query_name=suite,
                parallel=ParallelConfig(backend=backend, num_workers=workers, chunk_size=16),
            )
            speedup = baseline.seconds / run.seconds if run.seconds > 0 else 0.0
            speedups[backend][workers] = speedup
            rows.append([suite, backend, workers, run.seconds, speedup])
    return rows, speedups


@pytest.mark.benchmark(group="fig13")
def test_fig13_thread_scaling(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, speedups = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 13 - speedup over worker count (single large batch)",
        ["suite", "backend", "workers", "runtime_s", "speedup_vs_serial"],
        rows,
    )
    write_result("fig13_thread_scaling", table)
    # Shape checks: the best parallel configuration should recover at least
    # the serial throughput, and no backend may collapse on aggregate
    # (individual cells are too noisy on loaded hosts for a per-cell floor).
    best = max(max(values.values()) for values in speedups.values())
    assert best > 0.9
    for backend, values in speedups.items():
        mean = sum(values.values()) / len(values)
        assert mean > 0.5, f"{backend} backend collapsed: {values}"
    # The shared-memory process backend must turn real cores into real
    # speedup (the paper's Figure 13 claim).  Gated on affinity: with one
    # usable core no backend can beat serial wall-clock.
    cores = _effective_cores()
    if cores >= 4:
        assert speedups["process"][4] >= 1.5, (
            f"shared-memory backend too slow on {cores} cores: {speedups['process']}"
        )
    elif cores >= 2:
        # Same tolerance as the "best > 0.9" check: publication + IPC noise
        # on a loaded 2-core host must not fail a healthy backend.
        assert speedups["process"][2] >= 0.9, (
            f"shared-memory backend slower than serial on {cores} cores: {speedups['process']}"
        )
