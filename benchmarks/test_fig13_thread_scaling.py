"""Figure 13: speedup over worker count (batch size fixed).

The paper parallelises frontier computation, filtering and enumeration
with OpenMP and reports a 5.22x average speedup at 24 threads.  This
benchmark sweeps worker counts for both enumeration kernels:

* ``python`` (the tuple-at-a-time reference) — enumeration dominates the
  batch, so the shared-memory ``process`` backend turns cores into real
  wall-clock speedup, which is the paper's Figure 13 claim; the
  ``thread`` backend stays flat around 1x (the GIL serialises the
  workers — documented deviation, see EXPERIMENTS.md);
* ``columnar`` (the default arena-backed kernel) — the serial pass is
  several times faster than the reference, which shrinks enumeration to
  the point where snapshot publication and IPC no longer amortise at
  this workload scale: the parallel backends must merely stay close to
  serial, not beat it.  The kernel's own single-thread win is asserted
  instead.

The workload is a single large insertion batch of the most
enumeration-heavy suite so that worker start-up costs are amortised the
same way the paper's per-query measurement does.  The speedup
assertions are aggregate (per-cell thresholds proved flaky on loaded
hosts) and the multi-core requirement is gated on the cores this
process may actually use: a single-core CI runner cannot show wall-clock
speedup for any backend.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.core.parallel import ParallelConfig

WORKER_COUNTS = (1, 2, 4, 8)
SUFFIX = 800
KERNELS = ("columnar", "python")

#: single-thread floor for the columnar kernel over the reference on the
#: enumeration-heavy suite (the measured ratio is ~3-5x; the floor keeps
#: headroom for loaded hosts)
KERNEL_SPEEDUP_FLOOR = 2.0


def _effective_cores() -> int:
    """Cores this process is allowed to run on (affinity beats cpu_count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pick_query(workload):
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return suites[-1], workload.queries(suites[-1])[0]


def _run(stream, workload):
    suite, query = _pick_query(workload)
    prefix = len(stream) - SUFFIX
    rows = []
    speedups: dict[str, dict[str, dict[int, float]]] = {
        kernel: {"thread": {}, "process": {}} for kernel in KERNELS
    }
    baselines: dict[str, float] = {}
    for kernel in KERNELS:
        baseline = run_mnemonic_stream(query, stream, initial_prefix=prefix,
                                       batch_size=SUFFIX, kernel=kernel,
                                       query_name=suite)
        baselines[kernel] = baseline.seconds
        rows.append([suite, kernel, "serial", 1, baseline.seconds, 1.0])
        for backend in ("thread", "process"):
            for workers in WORKER_COUNTS:
                run = run_mnemonic_stream(
                    query, stream, initial_prefix=prefix, batch_size=SUFFIX,
                    kernel=kernel, query_name=suite,
                    parallel=ParallelConfig(backend=backend, num_workers=workers,
                                            chunk_size=16),
                )
                speedup = baseline.seconds / run.seconds if run.seconds > 0 else 0.0
                speedups[kernel][backend][workers] = speedup
                rows.append([suite, kernel, backend, workers, run.seconds, speedup])
    return rows, speedups, baselines


@pytest.mark.benchmark(group="fig13")
def test_fig13_thread_scaling(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, speedups, baselines = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    table = format_table(
        "Figure 13 - speedup over worker count (single large batch)",
        ["suite", "kernel", "backend", "workers", "runtime_s", "speedup_vs_serial"],
        rows,
    )
    write_result("fig13_thread_scaling", table)

    # The columnar kernel's single-thread win is what moved the goalposts
    # for the parallel rows; pin it so a silent fallback to the tuple
    # path (which would also "fix" the parallel ratios) cannot pass.
    kernel_speedup = baselines["python"] / baselines["columnar"]
    assert kernel_speedup >= KERNEL_SPEEDUP_FLOOR, (
        f"columnar kernel only {kernel_speedup:.2f}x over the reference "
        f"(floor {KERNEL_SPEEDUP_FLOOR}x): {baselines}"
    )

    # Reference kernel: enumeration dominates, so the backends must show
    # the paper's shape — threads flat but not collapsed, the
    # shared-memory process pool turning real cores into real speedup.
    best_python = max(max(v.values()) for v in speedups["python"].values())
    assert best_python > 0.9
    for backend, values in speedups["python"].items():
        mean = sum(values.values()) / len(values)
        assert mean > 0.5, f"python/{backend} backend collapsed: {values}"
    cores = _effective_cores()
    if cores >= 4:
        assert speedups["python"]["process"][4] >= 1.5, (
            f"shared-memory backend too slow on {cores} cores: "
            f"{speedups['python']['process']}"
        )
    elif cores >= 2:
        # Same tolerance as the "best > 0.9" check: publication + IPC noise
        # on a loaded 2-core host must not fail a healthy backend.
        assert speedups["python"]["process"][2] >= 0.9, (
            f"shared-memory backend slower than serial on {cores} cores: "
            f"{speedups['python']['process']}"
        )

    # Columnar kernel: the serial pass finishes this batch in tens of
    # milliseconds, so publication/IPC cannot amortise — the requirement
    # is that no backend collapses, not that it wins.  The thread backend
    # delegates kernel-eligible batches to one whole-batch kernel call
    # (GIL convoying made per-unit threading strictly slower), so its
    # rows must track serial; the process rows pay a fixed publication
    # cost that dominates at this scale (larger batches are where the
    # pool still pays off, see docs/parallelism.md).
    best_columnar = max(max(v.values()) for v in speedups["columnar"].values())
    assert best_columnar > 0.7, f"columnar parallel collapsed: {speedups['columnar']}"
    thread_mean = sum(speedups["columnar"]["thread"].values()) / len(WORKER_COUNTS)
    assert thread_mean > 0.5, (
        f"columnar/thread backend collapsed: {speedups['columnar']['thread']}"
    )
