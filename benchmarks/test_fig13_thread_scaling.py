"""Figure 13: speedup over worker count (batch size fixed).

The paper parallelises frontier computation, filtering and enumeration
with OpenMP and reports a 5.22x average speedup at 24 threads.  A pure
Python reproduction cannot show that with threads (the GIL serialises
the enumeration workers), so this benchmark reports *both* backends:

* ``thread`` — faithful pull-based scheduling, expected to stay flat
  around 1x (documented deviation, see EXPERIMENTS.md);
* ``process`` — forked workers over chunked work units, which is how a
  Python deployment actually obtains multi-core speedup.

The workload is a single large insertion batch of the most
enumeration-heavy suite so that worker start-up costs are amortised the
same way the paper's per-query measurement does.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.core.parallel import ParallelConfig

WORKER_COUNTS = (1, 2, 4, 8)
SUFFIX = 800


def _pick_query(workload):
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return suites[-1], workload.queries(suites[-1])[0]


def _run(stream, workload):
    suite, query = _pick_query(workload)
    prefix = len(stream) - SUFFIX
    rows = []
    speedups: dict[str, dict[int, float]] = {"thread": {}, "process": {}}
    baseline = run_mnemonic_stream(query, stream, initial_prefix=prefix,
                                   batch_size=SUFFIX, query_name=suite)
    rows.append([suite, "serial", 1, baseline.seconds, 1.0])
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            run = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=SUFFIX, query_name=suite,
                parallel=ParallelConfig(backend=backend, num_workers=workers, chunk_size=16),
            )
            speedup = baseline.seconds / run.seconds if run.seconds > 0 else 0.0
            speedups[backend][workers] = speedup
            rows.append([suite, backend, workers, run.seconds, speedup])
    return rows, speedups


@pytest.mark.benchmark(group="fig13")
def test_fig13_thread_scaling(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, speedups = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 13 - speedup over worker count (single large batch)",
        ["suite", "backend", "workers", "runtime_s", "speedup_vs_serial"],
        rows,
    )
    write_result("fig13_thread_scaling", table)
    # Shape checks: parallel execution must never be catastrophically worse
    # than serial, and the best parallel configuration should recover at
    # least the serial throughput (the GIL-free backend is expected to win).
    best = max(max(values.values()) for values in speedups.values())
    assert best > 0.9
    assert all(value > 0.2 for values in speedups.values() for value in values.values())
