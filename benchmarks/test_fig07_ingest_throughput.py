"""Figure 7 companion: ingest throughput of the columnar mutation path.

The paper's update/filter/enumerate CPU split (fig07) motivates the
columnar ingest path: graph mutation and DEBI maintenance are the two
phases a streaming system pays on *every* batch, enumeration only where
matches exist.  This benchmark runs the same fig06 netflow stream from a
cold graph under both ingest modes (``per_edge`` — one ``add_edge`` /
matcher pass per event — and ``columnar`` — one decoded column batch)
and tables the phase split, the ingest wall (update + filter) and the
derived events/sec per batch size.

Embedding counts must be identical across modes (the `ingest_parity`
perf-smoke gate checks the full identity sets and scan counters to the
digit); here the shape check is the headline claim: batching pays, i.e.
the columnar path is faster at every measured batch size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table

BATCH_SIZES = (256, 512, 1024)
MODES = ("per_edge", "columnar")
#: best-of samples per (batch, mode) cell — one sample is too exposed to a
#: stray GC pause to compare two ~30 ms walls
SAMPLES = 3


def _pick_query(workload):
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return suites[-1], workload.queries(suites[-1])[0]


def _run(stream, workload):
    suite, query = _pick_query(workload)
    rows = []
    speedups = {}
    for batch in BATCH_SIZES:
        per_mode = {}
        for mode in MODES:
            samples = []
            for _ in range(SAMPLES):
                run = run_mnemonic_stream(
                    query, stream, initial_prefix=0, batch_size=batch,
                    query_name=suite, ingest=mode,
                )
                split = run.extra["phase_split"]
                ingest_wall = split["update_seconds"] + split["filter_seconds"]
                samples.append((run, split, ingest_wall))
            per_mode[mode] = min(samples, key=lambda s: s[2])
            run, split, ingest_wall = per_mode[mode]
            rows.append([
                batch, mode,
                split["update_seconds"], split["filter_seconds"],
                split["enumerate_seconds"], ingest_wall,
                len(stream) / ingest_wall, run.embeddings,
            ])
        speedups[batch] = per_mode["per_edge"][2] / per_mode["columnar"][2]
        assert per_mode["per_edge"][0].embeddings == per_mode["columnar"][0].embeddings
    return suite, rows, speedups


@pytest.mark.benchmark(group="fig07")
def test_fig07_ingest_throughput(benchmark, netflow_workload):
    stream, workload = netflow_workload
    suite, rows, speedups = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    text = format_table(
        f"Figure 7 companion - ingest phase split and throughput ({suite}, cold graph)",
        ["batch", "ingest", "update_s", "filter_s", "enumerate_s",
         "ingest_wall_s", "events_per_s", "embeddings"],
        rows,
    )
    text += "\n" + "\n".join(
        f"columnar ingest speedup @ batch {batch}: {speedup:.2f}x"
        for batch, speedup in sorted(speedups.items())
    )
    write_result("fig07_ingest_throughput", text)
    # Shape check only (wall-clock on shared runners is noisy): batching
    # must pay at every measured batch size.  The calibrated >=2x claim
    # at batch >= 512 is recorded by perf_trend in BENCH_ingest.json.
    for batch, speedup in speedups.items():
        assert speedup > 1.0, f"columnar ingest slower at batch {batch}"
