"""Figure 13 (shard rows): per-shard work over engine-shard count.

The thread-scaling benchmark splits *enumeration* over workers; the
partition-parallel :class:`~repro.core.shard_router.ShardedEngine`
additionally splits the parts the pool never touched — mutation
application, DEBI maintenance, snapshot export, and the stored graph
itself — across N shards.  On one machine that is a capacity claim, not
a latency claim, so the honest assertions here are about *work per
shard*, measured on the engine's own counters:

* the maximum per-shard mutation count strictly decreases as shards
  grow (the router splits the stream, replicas included);
* the maximum per-shard stored-edge count and DEBI bit count strictly
  decrease (each shard's heap holds a shrinking slice of the graph);
* results stay bit-identical to the single engine (the shard_parity CI
  gate re-proves this; here it guards the benchmark's own workload);
* wall-clock speedup is only asserted where it can exist — with the
  per-shard process pools enabled on a multi-core host — and then only
  as a "did not collapse" bound, because scatter-gather forwarding on a
  hash-partitioned graph is pure overhead at this workload scale.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream, run_sharded_stream
from repro.bench.reporting import format_table

SHARD_COUNTS = (1, 2, 4, 8)
SUFFIX = 800


def _effective_cores() -> int:
    """Cores this process is allowed to run on (affinity beats cpu_count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pick_query(workload):
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return suites[-1], workload.queries(suites[-1])[0]


def _run(stream, workload):
    suite, query = _pick_query(workload)
    prefix = len(stream) - SUFFIX
    single = run_mnemonic_stream(
        query, stream, initial_prefix=prefix, batch_size=SUFFIX,
        collect_embeddings=True, query_name=suite,
    )
    rows = []
    samples = {}
    for shards in SHARD_COUNTS:
        run = run_sharded_stream(
            query, stream, shards=shards, initial_prefix=prefix,
            batch_size=SUFFIX, collect_embeddings=True, query_name=suite,
        )
        stats = run.extra["shard_stats"]
        sample = {
            "seconds": run.seconds,
            "max_mutations": max(s["mutations_applied"] for s in stats),
            "max_stored_edges": max(s["stored_edges"] for s in stats),
            "max_debi_bits": max(s["debi_bits_set"] for s in stats),
            "frontier_rows": run.extra["frontier"]["frontier_rows"],
            "positive": run.embeddings,
            "run": run,
        }
        samples[shards] = sample
        rows.append([
            suite, shards, run.seconds, sample["max_mutations"],
            sample["max_stored_edges"], sample["max_debi_bits"],
            sample["frontier_rows"],
        ])
    return single, samples, rows, suite


@pytest.mark.benchmark(group="fig13")
def test_fig13_shard_scaling(benchmark, netflow_workload):
    stream, workload = netflow_workload
    single, samples, rows, suite = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    table = format_table(
        "Figure 13 (shards) - per-shard work over shard count",
        ["suite", "shards", "runtime_s", "max_mutations/shard",
         "max_edges/shard", "max_debi_bits/shard", "frontier_rows"],
        rows,
    )
    write_result("fig13_shard_scaling", table)

    def identities(run):
        return {
            e.identity()
            for s in run.run_result.snapshots
            for e in s.positive_embeddings
        }

    # Bit-identity on the benchmark's own workload: the capacity numbers
    # below mean nothing if the shards compute a different answer.
    base = identities(single)
    assert base, "vacuous benchmark: the single engine found no embeddings"
    for shards, sample in samples.items():
        assert identities(sample["run"]) == base, (
            f"shards={shards} changed the result set"
        )

    # The capacity claim, on deterministic counters: every per-shard
    # work metric strictly decreases as the shard count grows.
    for metric in ("max_mutations", "max_stored_edges", "max_debi_bits"):
        values = [samples[n][metric] for n in SHARD_COUNTS]
        assert all(a > b for a, b in zip(values, values[1:])), (
            f"per-shard {metric} must strictly decrease over shards "
            f"{SHARD_COUNTS}: {values}"
        )

    # Forwarding only exists across a partition boundary: one shard must
    # never forward, and more shards must not forward less.
    assert samples[1]["frontier_rows"] == 0
    assert samples[2]["frontier_rows"] > 0, (
        "hash partitioning at shards=2 produced no cross-shard frontier "
        "traffic; the scatter-gather path was never exercised"
    )

    # Wall-clock: serial shard execution adds routing and forwarding
    # overhead on one core, so the honest bound is "did not collapse",
    # and only on hosts where the work could in principle spread out.
    if _effective_cores() >= 4:
        slowdown = samples[4]["seconds"] / max(single.seconds, 1e-9)
        assert slowdown < 5.0, (
            f"shards=4 is {slowdown:.1f}x slower than the single engine; "
            "routing overhead has regressed far beyond scatter-gather cost"
        )
