"""Table II: common query shapes — BigJoin vs TurboFlux vs Mnemonic.

The paper compares homomorphic matching of five classic patterns
(triangle, 4-clique, 5-clique, rectangle, dual-triangle) on the NetFlow
stream.  BigJoin shines on the dense clique queries (set intersections
prune aggressively) and degrades on the sparser rectangle/dual-triangle;
Mnemonic is competitive across the board and TurboFlux trails.  The
reproduction runs the same five wildcard-labelled patterns on the scaled
stream and prints the same table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_bigjoin_inserts, run_mnemonic_stream, run_turboflux_stream
from repro.bench.reporting import format_table
from repro.matchers import HomomorphismMatcher
from repro.query.query_graph import QueryGraph

SUFFIX = 300
BATCH_SIZE = 256


def _clique(n: int) -> QueryGraph:
    query = QueryGraph()
    for i in range(n):
        for j in range(i + 1, n):
            query.add_edge(i, j)
    return query


def common_queries() -> dict[str, QueryGraph]:
    triangle = QueryGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    rectangle = QueryGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
    dual_triangle = QueryGraph.from_edges([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
    return {
        "triangle": triangle,
        "4-clique": _clique(4),
        "5-clique": _clique(5),
        "rectangle": rectangle,
        "dual-triangle": dual_triangle,
    }


def _run(stream):
    rows = []
    prefix = len(stream) - SUFFIX
    results: dict[str, dict[str, float]] = {}
    for name, query in common_queries().items():
        mnemonic = run_mnemonic_stream(query, stream, match_def=HomomorphismMatcher(),
                                       initial_prefix=prefix, batch_size=BATCH_SIZE,
                                       query_name=name)
        turboflux = run_turboflux_stream(query, stream, match_def=HomomorphismMatcher(),
                                         initial_prefix=prefix, query_name=name)
        bigjoin = run_bigjoin_inserts(query, stream, match_def=HomomorphismMatcher(),
                                      initial_prefix=prefix, batch_size=BATCH_SIZE,
                                      query_name=name)
        results[name] = {
            "Mnemonic": mnemonic.seconds,
            "TurboFlux": turboflux.seconds,
            "BigJoin": bigjoin.seconds,
        }
        rows.append([name, bigjoin.seconds, turboflux.seconds, mnemonic.seconds,
                     mnemonic.embeddings])
    return rows, results


@pytest.mark.benchmark(group="table2")
def test_table2_common_queries(benchmark, netflow_workload):
    stream, _ = netflow_workload
    rows, results = benchmark.pedantic(_run, args=(stream,), rounds=1, iterations=1)
    table = format_table(
        "Table II - common query runtimes (s), homomorphism on the NetFlow-like stream",
        ["query", "bigjoin_s", "turboflux_s", "mnemonic_s", "mnemonic_embeddings"],
        rows,
    )
    write_result("table2_common_queries", table)
    # Shape checks: every system completed every query, and Mnemonic beats
    # TurboFlux on the sparse queries the paper highlights (rectangle or
    # dual-triangle) for at least one of them.
    assert all(all(v >= 0 for v in r.values()) for r in results.values())
    sparse_wins = sum(
        1 for name in ("rectangle", "dual-triangle")
        if results[name]["Mnemonic"] <= results[name]["TurboFlux"]
    )
    assert sparse_wins >= 1
