"""Figure 9: insertion + deletion stream (LSBench-like), Mnemonic vs TurboFlux.

Both positive (newly formed) and negative (destroyed) embeddings are
reported.  The paper measures a 3.27x average speedup — smaller than on
NetFlow because LSBench has fewer parallel edges and a near-random
topology, which narrows the gap between the index designs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream, run_turboflux_stream
from repro.bench.reporting import format_table
from repro.streams.config import StreamType

SUFFIX = 600
BATCH_SIZE = 256


def _run(stream, workload):
    rows = []
    prefix = len(stream) - SUFFIX
    for suite, query in workload:
        mnemonic = run_mnemonic_stream(
            query, stream, initial_prefix=prefix, batch_size=BATCH_SIZE,
            stream_type=StreamType.INSERT_DELETE, query_name=suite,
        )
        turboflux = run_turboflux_stream(query, stream, initial_prefix=prefix, query_name=suite)
        speedup = turboflux.seconds / mnemonic.seconds if mnemonic.seconds > 0 else 0.0
        rows.append([
            suite, mnemonic.seconds, turboflux.seconds, speedup,
            mnemonic.embeddings, mnemonic.negative_embeddings,
            turboflux.embeddings, turboflux.negative_embeddings,
        ])
    return rows


@pytest.mark.benchmark(group="fig09")
def test_fig09_lsbench_insert_delete(benchmark, lsbench_workload):
    stream, workload = lsbench_workload
    rows = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 9 - LSBench-like insert+delete stream: runtime (s) and embeddings",
        ["suite", "mnemonic_s", "turboflux_s", "speedup",
         "mn_pos", "mn_neg", "tf_pos", "tf_neg"],
        rows,
    )
    write_result("fig09_lsbench_insert_delete", table)
    # Shape checks: every suite completed, negative embeddings are reported
    # when deletions hit matches, and Mnemonic never finds fewer positives
    # than the collapsed-view baseline.
    for row in rows:
        assert row[1] > 0 and row[2] > 0
        assert row[4] >= row[6]
