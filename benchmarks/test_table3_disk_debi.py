"""Table III: storage / runtime trade-off of the disk-backed DEBI.

For queries that need a search window larger than what should stay
resident, Mnemonic spills older edges and their DEBI rows to an on-disk
transactional edge log, keeping only an in-memory window of recent
events.  The paper reports, per query suite, the memory and disk
footprint plus the overhead (a few percent) added to index maintenance
and enumeration.  The reproduction runs the LANL-like stream with a
3-"day" search window while keeping only the most recent events in
memory, and reports the same columns.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.streams.config import StreamType

WINDOW = 3 * 24 * 60.0     # three synthetic days: effectively the whole stream
STRIDE = 6 * 60.0
IN_MEMORY_EVENTS = 1200    # roughly "one day" of the scaled stream


def _run(stream, workload):
    rows = []
    for suite, query in workload:
        run = run_mnemonic_stream(
            query, stream, initial_prefix=0, batch_size=100_000,
            stream_type=StreamType.SLIDING_WINDOW, window=WINDOW, stride=STRIDE,
            in_memory_window=IN_MEMORY_EVENTS, query_name=suite,
        )
        # Recover the engine-side stats through the run result's last snapshot
        # and the stored totals in `extra`.
        result = run.run_result
        filter_seconds = sum(s.filter_seconds for s in result.snapshots)
        enumerate_seconds = sum(s.enumerate_seconds for s in result.snapshots)
        rows.append([suite, run.seconds, run.embeddings,
                     run.extra["live_edges"], filter_seconds, enumerate_seconds])
    return rows


def _store_columns(engine_stats):
    return engine_stats


@pytest.mark.benchmark(group="table3")
def test_table3_disk_debi(benchmark, lanl_workload):
    stream, workload = lanl_workload
    # Run one representative suite inside the benchmark timer and the full
    # table outside of it (the table construction itself is the artifact).
    from repro.core.engine import EngineConfig, MnemonicEngine
    from repro.streams.config import StreamConfig

    rows = []
    spilled_any = False
    for suite, query in workload:
        config = EngineConfig(
            stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=WINDOW,
                                stride=STRIDE, in_memory_window=IN_MEMORY_EVENTS),
            collect_embeddings=False,
        )
        engine = MnemonicEngine(query, config=config)

        def run_engine(engine=engine):
            return engine.run(stream)

        if suite == workload.suite_names()[0]:
            result = benchmark.pedantic(run_engine, rounds=1, iterations=1)
        else:
            result = run_engine()
        store = engine.external_store
        assert store is not None
        spilled_any = spilled_any or store.spilled_count > 0
        filter_seconds = sum(s.filter_seconds for s in result.snapshots)
        enumerate_seconds = sum(s.enumerate_seconds for s in result.snapshots)
        memory_mib = (engine.debi.nbytes() + store.memory_bytes()) / (1024 * 1024)
        disk_mib = store.stats.disk_bytes / (1024 * 1024)
        debi_overhead = store.stats.spill_seconds / filter_seconds * 100 if filter_seconds else 0.0
        enum_overhead = (store.stats.fetch_seconds / enumerate_seconds * 100
                         if enumerate_seconds else 0.0)
        rows.append([suite, memory_mib, disk_mib, debi_overhead, enum_overhead,
                     store.spilled_count, result.total_positive])

    table = format_table(
        "Table III - storage/runtime trade-off for the disk-backed DEBI",
        ["suite", "memory_MiB", "disk_MiB", "debi_mgmt_overhead_%", "enumeration_overhead_%",
         "spilled_edges", "positives"],
        rows,
    )
    write_result("table3_disk_debi", table)
    assert spilled_any, "the in-memory window should force spilling on this workload"
    # Overheads stay moderate (the paper reports 3-10%; allow head-room at this scale).
    for row in rows:
        assert row[3] < 100.0
