"""Table III: storage / runtime trade-off of the disk-backed DEBI.

The paper reports, per query suite, the memory and disk footprint of
keeping DEBI partially on disk, plus the (single-digit percent) overhead
added to index maintenance and enumeration.  The reproduction runs each
suite twice over the LANL-like stream:

* fully in memory (the baseline the rest of the benchmarks use), and
* durably, with a deliberately small DEBI hot-row budget so the bulk of
  the index lives in mmap'd cold segments, the epoch journal grows on
  disk, and checkpoints are cut mid-stream.

The two runs must find the *identical* embedding multiset — spilling is
an implementation detail of the index, never a semantics knob — and the
durable run must report real, nonzero disk bytes and spilled rows.
"""

from __future__ import annotations

from collections import Counter

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.storage.config import StorageConfig
from repro.streams.config import StreamType

BATCH = 256
#: small enough that every suite pushes most DEBI rows onto the cold tier
HOT_ROWS = 512
SEGMENT_ROWS = 1024


def _identities(run):
    counts: Counter = Counter()
    for snapshot in run.run_result.snapshots:
        counts.update(e.identity() for e in snapshot.positive_embeddings)
        counts.update(e.identity() for e in snapshot.negative_embeddings)
    return counts


@pytest.mark.benchmark(group="table3")
def test_table3_disk_debi(benchmark, lanl_workload, tmp_path):
    stream, workload = lanl_workload
    rows = []
    for suite, query in workload:
        memory_run = run_mnemonic_stream(
            query, stream, batch_size=BATCH, stream_type=StreamType.INSERT_ONLY,
            collect_embeddings=True, query_name=suite,
        )
        storage = StorageConfig(
            directory=tmp_path / suite, checkpoint_interval=4,
            debi_hot_rows=HOT_ROWS, debi_segment_rows=SEGMENT_ROWS,
        )

        def run_durable(query=query, suite=suite, storage=storage):
            return run_mnemonic_stream(
                query, stream, batch_size=BATCH, stream_type=StreamType.INSERT_ONLY,
                collect_embeddings=True, storage=storage, query_name=suite,
            )

        if suite == workload.suite_names()[0]:
            durable_run = benchmark.pedantic(run_durable, rounds=1, iterations=1)
        else:
            durable_run = run_durable()

        # Bit-identity: the cold tier and the journal must be invisible
        # to enumeration.
        assert _identities(durable_run) == _identities(memory_run), suite

        extra = durable_run.extra
        spilled_rows = extra["spilled_rows"]
        memory_mib = extra["debi_hot_bytes"] / (1024 * 1024)
        disk_mib = (extra["debi_disk_bytes"] + extra["journal_bytes"]) / (1024 * 1024)
        overhead_pct = (
            (durable_run.seconds - memory_run.seconds) / memory_run.seconds * 100
            if memory_run.seconds > 0 else 0.0
        )
        rows.append([
            suite, memory_mib, disk_mib, overhead_pct, spilled_rows,
            extra["checkpoints_written"], durable_run.embeddings,
        ])
        assert spilled_rows > 0, f"{suite}: hot-row budget did not force spilling"
        assert extra["debi_disk_bytes"] > 0 and extra["journal_bytes"] > 0, suite
        assert extra["checkpoints_written"] > 1, suite

    table = format_table(
        "Table III - storage/runtime trade-off for the disk-backed DEBI",
        ["suite", "memory_MiB", "disk_MiB", "durable_overhead_%",
         "spilled_rows", "checkpoints", "positives"],
        rows,
    )
    write_result("table3_disk_debi", table)
    # Durability cost stays moderate at this scale (the paper reports
    # 3-10% on the server-scale runs; allow slack for tiny Python runs).
    for row in rows:
        assert row[3] < 500.0, f"{row[0]}: durable run {row[3]:.0f}% slower"
