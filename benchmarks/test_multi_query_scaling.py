"""Multi-query scaling: N standing queries vs N independent engines.

The service scenario behind the ROADMAP north-star: one stream, many
concurrent standing queries.  A shared :class:`~repro.core.registry.MultiQueryEngine`
pays the graph mutation, index-update sweep and (process backend)
snapshot export once per batch and shares raw candidate scans across
queries, so the marginal cost of the Nth query is far below the cost of
an Nth engine.  The table reports, for N in {1, 2, 4, 8}:

* total runtime of N independent engines vs one shared engine,
* total ``candidates_scanned`` for both (deterministic, the gated metric),
* the scan-sharing ratio (shared / independent).

Correctness is asserted alongside: per-query results of the shared run
must be identical to the independent engines'.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream, run_multi_query_stream
from repro.datasets import build_query_workload

#: suffix streamed after the initial load, and the per-snapshot batch size
SUFFIX = 400
BATCH = 128

QUERY_COUNTS = (1, 2, 4, 8)


def positive_identities(run_result) -> set:
    return {
        e.identity()
        for snapshot in run_result.snapshots
        for e in snapshot.positive_embeddings
    }


def test_multi_query_scaling(netflow_workload):
    stream, _ = netflow_workload
    workload = build_query_workload(
        stream, tree_sizes=(3, 4, 5, 6, 7, 9), graph_sizes=(5, 6),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    queries = [(suite, query) for suite, query in workload]
    assert len(queries) >= max(QUERY_COUNTS)
    prefix = len(stream) - SUFFIX

    rows = []
    for n in QUERY_COUNTS:
        subset = queries[:n]
        independent_seconds = 0.0
        independent_scanned = 0
        independent_results = {}
        for suite, query in subset:
            run = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=BATCH,
                collect_embeddings=True, query_name=suite,
            )
            independent_seconds += run.seconds
            independent_scanned += run.extra["candidates_scanned"]
            independent_results[suite] = positive_identities(run.run_result)

        shared = run_multi_query_stream(
            subset, stream, initial_prefix=prefix, batch_size=BATCH,
            collect_embeddings=True,
        )
        for suite, _query in subset:
            assert (
                positive_identities(shared.per_query[suite].run_result)
                == independent_results[suite]
            ), f"shared results diverged for {suite} at N={n}"
        assert shared.candidates_scanned <= independent_scanned
        if n > 1:
            # Sharing must actually kick in once queries overlap.
            assert shared.candidates_scanned < independent_scanned

        ratio = (
            shared.candidates_scanned / independent_scanned
            if independent_scanned
            else 1.0
        )
        rows.append(
            (n, independent_seconds, shared.seconds, independent_scanned,
             shared.candidates_scanned, ratio)
        )

    lines = [
        "Multi-query scaling: N standing queries, one shared engine vs N engines",
        f"(NetFlow suffix={SUFFIX}, batch={BATCH}; scans are the deterministic metric)",
        "",
        f"{'N':>2}  {'N-engines s':>11}  {'shared s':>9}  "
        f"{'N-engines scans':>15}  {'shared scans':>12}  {'scan ratio':>10}",
    ]
    for n, ind_s, sh_s, ind_c, sh_c, ratio in rows:
        lines.append(
            f"{n:>2}  {ind_s:>11.3f}  {sh_s:>9.3f}  {ind_c:>15}  {sh_c:>12}  {ratio:>10.2f}"
        )
    write_result("multi_query_scaling", "\n".join(lines))
