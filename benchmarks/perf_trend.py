"""Perf trend job: wall-clock samples for the scheduled CI run.

Runs a deliberately small suite — the fig06 T_9 row (the most
enumeration-heavy suite) for both enumeration kernels, plus a fig13
micro-sweep (kernel x backend x workers at a reduced suffix) — and
records **wall-clock seconds** per row.  Unlike ``perf_smoke.py``, whose
gate is the deterministic ``candidates_scanned`` counter, this job
exists to watch the one thing that counter cannot: runtime drift.

Wall-clock on shared runners is noisy, so nothing here ever fails a
build.  The job instead

* appends one JSON line per run to ``benchmarks/results/BENCH_trend.jsonl``
  (uploaded as a CI artifact, so the scheduled runs accumulate a series),
* writes the full sample to ``benchmarks/BENCH_trend.json``,
* writes the ingest A/B (per-edge vs columnar mutation+index wall per
  batch size, with speedups) to ``benchmarks/BENCH_ingest.json``, and
* emits a markdown delta table against the checked-in advisory baseline
  (``benchmarks/perf_trend_baseline.json``) for the PR comment.

Usage::

    PYTHONPATH=src python benchmarks/perf_trend.py [--markdown trend.md]
    PYTHONPATH=src python benchmarks/perf_trend.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench.harness import run_mnemonic_stream, run_sharded_stream
from repro.core.parallel import ParallelConfig
from repro.datasets import NetFlowConfig, build_query_workload, generate_netflow_stream

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "perf_trend_baseline.json")
OUTPUT_PATH = os.path.join(HERE, "BENCH_trend.json")
TREND_PATH = os.path.join(HERE, "results", "BENCH_trend.jsonl")
INGEST_OUTPUT_PATH = os.path.join(HERE, "BENCH_ingest.json")

#: fig06 row: stream suffix and batch size, matching perf_smoke's fig06
FIG06_SUFFIX = 500
FIG06_BATCH = 256
#: fig13 micro-sweep: smaller than the pytest benchmark so the scheduled
#: job stays under a minute, but the same kernel x backend grid
FIG13_SUFFIX = 400
FIG13_WORKERS = (2, 4)
#: fig13 shard-scaling rows (see benchmarks/test_fig13_shard_scaling.py)
FIG13_SHARDS = (1, 2, 4)
#: ingest A/B: per-edge vs columnar mutation+index wall per batch size
INGEST_BATCHES = (256, 512, 1024)
INGEST_REPEATS = 3

KERNELS = ("columnar", "python")


def build_workload():
    """The netflow_workload fixture's exact configuration (see conftest.py)."""
    stream = generate_netflow_stream(
        NetFlowConfig(num_events=3000, num_hosts=450, attachment=0.65,
                      repeat_probability=0.10, seed=101)
    )
    workload = build_query_workload(
        stream, tree_sizes=(9,), graph_sizes=(),
        queries_per_suite=1, prefix=2000, seed=11,
    )
    suite = workload.suite_names()[0]
    return stream, suite, workload.queries(suite)[0]


def run_fig06_t9(stream, suite, query) -> dict[str, dict]:
    """The fig06 T_9 row, once per kernel, serial backend."""
    prefix = len(stream) - FIG06_SUFFIX
    rows = {}
    for kernel in KERNELS:
        run = run_mnemonic_stream(
            query, stream, initial_prefix=prefix, batch_size=FIG06_BATCH,
            kernel=kernel, query_name=suite,
        )
        rows[f"fig06/{suite}.{kernel}"] = {
            "seconds": run.seconds,
            "candidates_scanned": run.extra["candidates_scanned"],
            "embeddings": run.embeddings,
        }
    return rows


def run_fig13_micro(stream, suite, query) -> dict[str, dict]:
    """A reduced fig13 grid: kernel x backend x workers, one large batch."""
    prefix = len(stream) - FIG13_SUFFIX
    rows = {}
    for kernel in KERNELS:
        serial = run_mnemonic_stream(
            query, stream, initial_prefix=prefix, batch_size=FIG13_SUFFIX,
            kernel=kernel, query_name=suite,
        )
        rows[f"fig13/{suite}.{kernel}.serial"] = {"seconds": serial.seconds}
        for backend in ("thread", "process"):
            for workers in FIG13_WORKERS:
                run = run_mnemonic_stream(
                    query, stream, initial_prefix=prefix, batch_size=FIG13_SUFFIX,
                    kernel=kernel, query_name=suite,
                    parallel=ParallelConfig(backend=backend, num_workers=workers,
                                            chunk_size=16),
                )
                rows[f"fig13/{suite}.{kernel}.{backend}@{workers}"] = {
                    "seconds": run.seconds,
                }
    return rows


def run_fig13_shards(stream, suite, query) -> dict[str, dict]:
    """The shard-scaling row set: one serial ShardedEngine run per count.

    Wall-clock only, like every other trend row; the strictly-decreasing
    per-shard *work* assertions live in the pytest benchmark
    (``test_fig13_shard_scaling.py``) where they can be core-gated.
    """
    prefix = len(stream) - FIG13_SUFFIX
    rows = {}
    for shards in FIG13_SHARDS:
        run = run_sharded_stream(
            query, stream, shards=shards, initial_prefix=prefix,
            batch_size=FIG13_SUFFIX, query_name=suite,
        )
        rows[f"fig13/{suite}.columnar.shards@{shards}"] = {"seconds": run.seconds}
    return rows


def run_ingest(stream, suite, query) -> tuple[dict[str, dict], dict]:
    """Ingest A/B: the per-edge vs the columnar mutation+index path.

    Runs the whole fig06 stream from a cold graph (every growth and
    recycling regime is exercised) under the serial pipeline, where
    publication does not run — so ``update + filter`` seconds IS the
    ingest wall (graph mutation + DEBI/index maintenance).  Each mode
    takes the best of ``INGEST_REPEATS`` samples; identity sets and scan
    counters are bit-identical by the ``ingest_parity`` gate in
    ``perf_smoke.py``, so only wall-clock is recorded here.

    Returns the trend rows plus the machine-readable payload written to
    ``benchmarks/BENCH_ingest.json`` (per batch size: seconds per mode,
    speedup, and columnar events/sec).
    """
    num_events = len(stream)
    rows: dict[str, dict] = {}
    payload: dict = {
        "stream": f"fig06_netflow_{num_events}",
        "suite": suite,
        "metric": "update_seconds + filter_seconds (serial, cold graph)",
        "batch_sizes": {},
    }
    for batch in INGEST_BATCHES:
        seconds: dict[str, float] = {}
        for ingest in ("per_edge", "columnar"):
            samples = []
            for _ in range(INGEST_REPEATS):
                run = run_mnemonic_stream(
                    query, stream, initial_prefix=0, batch_size=batch,
                    kernel="columnar", query_name=suite, ingest=ingest,
                )
                split = run.extra["phase_split"]
                samples.append(
                    split["update_seconds"] + split["filter_seconds"]
                )
            seconds[ingest] = min(samples)
            rows[f"ingest/{suite}.{ingest}@{batch}"] = {
                "seconds": seconds[ingest],
            }
        payload["batch_sizes"][str(batch)] = {
            "per_edge_seconds": seconds["per_edge"],
            "columnar_seconds": seconds["columnar"],
            "speedup": seconds["per_edge"] / seconds["columnar"],
            "columnar_events_per_second": num_events / seconds["columnar"],
        }
    return rows, payload


def delta_table(current: dict[str, dict], baseline: dict[str, dict]) -> str:
    """Markdown baseline-vs-current table (advisory, never gated)."""
    lines = [
        "### Perf trend (wall-clock, advisory)",
        "",
        "| benchmark | baseline (s) | current (s) | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for name in sorted(current):
        now = current[name]["seconds"]
        base = baseline.get(name, {}).get("seconds")
        if base:
            delta = f"{(now - base) / base:+.0%}"
            base_cell = f"{base:.3f}"
        else:
            delta, base_cell = "n/a", "-"
        lines.append(f"| `{name}` | {base_cell} | {now:.3f} | {delta} |")
    lines += [
        "",
        "_Wall-clock on shared runners is noisy; this table is a trend "
        "signal, not a gate. The blocking perf job gates on "
        "`candidates_scanned` instead._",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="refresh benchmarks/perf_trend_baseline.json from this run",
    )
    parser.add_argument(
        "--markdown", metavar="PATH",
        help="write the baseline-vs-current delta table (markdown) to PATH",
    )
    args = parser.parse_args(argv)

    stream, suite, query = build_workload()
    current: dict[str, dict] = {}
    current.update(run_fig06_t9(stream, suite, query))
    current.update(run_fig13_micro(stream, suite, query))
    current.update(run_fig13_shards(stream, suite, query))
    ingest_rows, ingest_payload = run_ingest(stream, suite, query)
    current.update(ingest_rows)

    with open(OUTPUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(current, fh, indent=2, sort_keys=True)
    print(f"wrote {OUTPUT_PATH}")

    with open(INGEST_OUTPUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(ingest_payload, fh, indent=2, sort_keys=True)
    print(f"wrote {INGEST_OUTPUT_PATH}")

    os.makedirs(os.path.dirname(TREND_PATH), exist_ok=True)
    sample = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rows": {name: row["seconds"] for name, row in current.items()},
    }
    with open(TREND_PATH, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(sample, sort_keys=True) + "\n")
    print(f"appended {TREND_PATH}")

    if args.write_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
        print(f"wrote {BASELINE_PATH}")
        return 0

    baseline: dict[str, dict] = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        # Rows added since the baseline was written (new benchmarks) have
        # nothing to diff against; seed them from this run so the next
        # scheduled run reports a real delta instead of n/a forever.
        missing = {name: row for name, row in current.items() if name not in baseline}
        if missing:
            baseline.update(missing)
            with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
                json.dump(baseline, fh, indent=2, sort_keys=True)
            print(
                f"seeded {len(missing)} new row(s) into {BASELINE_PATH}",
                file=sys.stderr,
            )
    else:
        # First scheduled run: no prior sample to diff.  Emit this run AS
        # the baseline (zero-delta rows) rather than skipping the table —
        # the artifact then exists for every later run to diff against.
        baseline = current
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
        print(
            f"no baseline at {BASELINE_PATH}; seeded it from this run "
            "(deltas start at +0%)",
            file=sys.stderr,
        )

    table = delta_table(current, baseline)
    print(table)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
