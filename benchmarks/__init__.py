"""Figure/table benchmarks for the Mnemonic reproduction (pytest-benchmark)."""
