"""Figure 6: Mnemonic vs TurboFlux on an insert-only NetFlow-like stream.

The paper streams 0.2M / 2M / 10M edge insertions (the rest of the trace
is the initial graph) and reports per-suite runtimes; Mnemonic wins by
7.8x on average at 0.2M with the gap coming from batching and
finer-grained parallel enumeration.  The reproduction streams scaled
suffixes of the synthetic trace and reports the same table: runtime per
query suite per stream size for both systems, plus the speedup.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream, run_turboflux_stream
from repro.bench.metrics import mean_runtime
from repro.bench.reporting import format_table

#: streamed suffix sizes (the paper's 0.2M / 2M / 10M, scaled)
STREAM_SIZES = (200, 500, 1000)
BATCH_SIZE = 256


def _run(stream, workload):
    rows = []
    speedups: dict[str, list[float]] = {}
    for suffix in STREAM_SIZES:
        prefix = len(stream) - suffix
        for suite, query in workload:
            mnemonic = run_mnemonic_stream(
                query, stream, initial_prefix=prefix, batch_size=BATCH_SIZE, query_name=suite,
            )
            turboflux = run_turboflux_stream(
                query, stream, initial_prefix=prefix, query_name=suite,
            )
            speedup = turboflux.seconds / mnemonic.seconds if mnemonic.seconds > 0 else 0.0
            speedups.setdefault(suite, []).append(speedup)
            rows.append([
                f"{suffix}", suite,
                mnemonic.seconds, turboflux.seconds, speedup,
                mnemonic.embeddings, turboflux.embeddings,
            ])
    for suite, values in speedups.items():
        rows.append(["-", f"mean {suite}", "-", "-", mean_runtime(values), "-", "-"])
    return rows, speedups


@pytest.mark.benchmark(group="fig06")
def test_fig06_netflow_insert_only(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, speedups = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 6 - insert-only NetFlow stream: runtime (s) per query suite",
        ["stream", "suite", "mnemonic_s", "turboflux_s", "speedup", "mn_embeddings", "tf_embeddings"],
        rows,
    )
    write_result("fig06_netflow_insert_only", table)
    # Shape check (see EXPERIMENTS.md): the paper's gap grows with query
    # size; at Python scale we check that the advantage over TurboFlux is
    # larger for the biggest tree suite than for the smallest one.
    smallest = f"T_{min(int(s.split('_')[1]) for s in speedups if s.startswith('T_'))}"
    largest = f"T_{max(int(s.split('_')[1]) for s in speedups if s.startswith('T_'))}"
    assert mean_runtime(speedups[largest]) > mean_runtime(speedups[smallest])
