"""Figure 10: isomorphism on the LANL-like stream with a sliding window.

None of the comparison systems supports this scenario out of the box
(the paper reports Mnemonic only), so the reproduction does the same:
runtime per query suite with a scaled 24-hour window and 10-minute
stride; edges are dropped from the tail of the window automatically.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.streams.config import StreamType

#: scaled window/stride (the generator compresses one day into 1440 time units)
WINDOW = 24 * 60.0
STRIDE = 4 * 60.0


def _run(stream, workload):
    rows = []
    runtimes: dict[str, float] = {}
    for suite, query in workload:
        run = run_mnemonic_stream(
            query, stream, initial_prefix=0, batch_size=100_000,
            stream_type=StreamType.SLIDING_WINDOW, window=WINDOW, stride=STRIDE,
            query_name=suite,
        )
        runtimes[suite] = run.seconds
        rows.append([
            suite, run.seconds, run.extra["snapshots"], run.embeddings,
            run.negative_embeddings, run.extra["live_edges"],
        ])
    return rows, runtimes


@pytest.mark.benchmark(group="fig10")
def test_fig10_lanl_sliding_window(benchmark, lanl_workload):
    stream, workload = lanl_workload
    rows, runtimes = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 10 - sliding-window isomorphism on the LANL-like stream",
        ["suite", "runtime_s", "snapshots", "positives", "negatives", "final_live_edges"],
        rows,
    )
    write_result("fig10_lanl_sliding_window", table)
    # Shape checks: the window keeps the search space bounded (the final live
    # graph is much smaller than the full stream) and every suite finishes.
    assert all(seconds > 0 for seconds in runtimes.values())
    assert all(row[5] < len(stream) for row in rows)
