"""Figure 8: filtering traversals per edge update as a function of batch size.

The unified traversal frontier shares the top-down / bottom-up filtering
work across all edges of a batch, so the number of edges traversed *per
updated edge* drops as the batch grows (the paper shows roughly an order
of magnitude between batch=1 and batch=16K, and sub-linear growth with
query size).  The reproduction measures the engine's traversal counters
for batch sizes 1, 16 and 512 on every query suite.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.metrics import traversals_per_update
from repro.bench.reporting import format_table

BATCH_SIZES = (1, 16, 512)
SUFFIX = 500


def _run(stream, workload):
    rows = []
    per_suite: dict[str, dict[int, float]] = {}
    prefix = len(stream) - SUFFIX
    for suite, query in workload:
        per_suite[suite] = {}
        for batch_size in BATCH_SIZES:
            run = run_mnemonic_stream(query, stream, initial_prefix=prefix,
                                      batch_size=batch_size, query_name=suite)
            value = traversals_per_update(run.run_result)
            per_suite[suite][batch_size] = value
            rows.append([suite, batch_size, value, run.extra["filter_traversals"]])
    return rows, per_suite


@pytest.mark.benchmark(group="fig08")
def test_fig08_traversals_per_update(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, per_suite = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 8 - filtering traversals per edge update vs batch size",
        ["suite", "batch_size", "traversals_per_update", "total_traversals"],
        rows,
    )
    write_result("fig08_traversals_per_update", table)
    # Shape check: larger batches never traverse more per update, and the
    # largest batch traverses strictly less than per-edge processing for at
    # least one suite (sharing kicks in where update regions overlap).
    improved = 0
    for suite, values in per_suite.items():
        assert values[BATCH_SIZES[-1]] <= values[BATCH_SIZES[0]] * 1.05
        if values[BATCH_SIZES[-1]] < values[BATCH_SIZES[0]] * 0.9:
            improved += 1
    assert improved >= 1
