"""Shared fixtures for the figure/table benchmarks.

Workloads are generated once per session at a laptop-friendly scale (the
paper streams millions of events on a 24-core server; we stream a few
thousand on whatever runs the suite).  EXPERIMENTS.md records the scale
mapping and compares the measured *shapes* against the paper's reported
numbers.

Every benchmark writes its paper-shaped table both to stdout and to
``benchmarks/results/<name>.txt`` so the tables survive pytest's output
capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import (
    LANLConfig,
    LSBenchConfig,
    NetFlowConfig,
    build_query_workload,
    generate_lanl_stream,
    generate_lsbench_stream,
    generate_netflow_stream,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: query suites used across the benchmarks (scaled from the paper's
#: T_3..T_12 / G_6..G_12 to keep Python-scale runtimes in seconds)
TREE_SUITES = (3, 6, 9)
GRAPH_SUITES = (6,)


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def netflow_workload():
    """NetFlow-like insert-only stream plus a small T_k / G_k query workload."""
    stream = generate_netflow_stream(
        NetFlowConfig(num_events=3000, num_hosts=450, attachment=0.65,
                      repeat_probability=0.10, seed=101)
    )
    workload = build_query_workload(
        stream, tree_sizes=TREE_SUITES, graph_sizes=GRAPH_SUITES,
        queries_per_suite=1, prefix=2000, seed=11,
    )
    return stream, workload


@pytest.fixture(scope="session")
def lsbench_workload():
    """LSBench-like insert+delete stream plus its query workload."""
    stream = generate_lsbench_stream(
        LSBenchConfig(num_events=2500, num_users=350, prefix_fraction=0.8,
                      delete_fraction=0.15, seed=103)
    )
    workload = build_query_workload(
        stream, tree_sizes=TREE_SUITES, graph_sizes=GRAPH_SUITES,
        queries_per_suite=1, prefix=1800, seed=13,
    )
    return stream, workload


@pytest.fixture(scope="session")
def lanl_workload():
    """LANL-like timestamped stream plus a timestamped query workload."""
    stream = generate_lanl_stream(
        LANLConfig(num_events=4000, num_entities=500, num_days=3.0, seed=107)
    )
    workload = build_query_workload(
        stream, tree_sizes=TREE_SUITES, graph_sizes=GRAPH_SUITES,
        queries_per_suite=1, prefix=2500, with_timestamps=True, seed=17,
    )
    return stream, workload
