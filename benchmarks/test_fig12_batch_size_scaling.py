"""Figure 12: speedup over batch size (single worker).

The paper fixes the thread count to 1 and grows the batch size from 1 to
16K: tree and graph suites gain up to ~10x purely from the shared
traversal frontier and batched enumeration setup.  The reproduction
sweeps scaled batch sizes and reports the speedup relative to strictly
per-edge processing (batch size 1).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table

BATCH_SIZES = (1, 8, 64, 512)
SUFFIX = 500


def _pick_queries(workload):
    chosen = []
    for suite in workload.suite_names():
        if suite in ("T_6", "G_6"):
            chosen.append((suite, workload.queries(suite)[0]))
    if not chosen:  # fall back to whatever the workload has
        chosen = [next(iter(workload))]
    return chosen


def _run(stream, workload):
    rows = []
    speedups: dict[str, dict[int, float]] = {}
    prefix = len(stream) - SUFFIX
    for suite, query in _pick_queries(workload):
        baseline = None
        speedups[suite] = {}
        for batch_size in BATCH_SIZES:
            run = run_mnemonic_stream(query, stream, initial_prefix=prefix,
                                      batch_size=batch_size, query_name=suite)
            if baseline is None:
                baseline = run.seconds
            speedup = baseline / run.seconds if run.seconds > 0 else 0.0
            speedups[suite][batch_size] = speedup
            rows.append([suite, batch_size, run.seconds, speedup])
    return rows, speedups


@pytest.mark.benchmark(group="fig12")
def test_fig12_batch_size_scaling(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, speedups = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 12 - speedup over batch size (single worker, relative to batch=1)",
        ["suite", "batch_size", "runtime_s", "speedup_vs_batch1"],
        rows,
    )
    write_result("fig12_batch_size_scaling", table)
    # Shape check: the largest batch is faster than per-edge processing for
    # every measured suite (the paper reports 4x-10x; Python-scale streams
    # still show a clear win because per-batch overheads dominate at batch=1).
    for suite, values in speedups.items():
        assert values[BATCH_SIZES[-1]] > 1.0
