"""Figure 16: time-constrained isomorphism — Mnemonic vs the Li et al. baseline.

Query edges carry timestamps (ranks) extracted from the data graph; an
embedding must respect that order.  The paper reports Mnemonic 1.8x
faster on average because DEBI is cheap to update, whereas the
match-store tree of partially materialised embeddings has to be walked
and updated for every event.  The reproduction runs both systems on the
timestamped LANL-like workload and also reports the baseline's peak
stored-partials count (its memory-cost signature).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_litcs_stream, run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.matchers import TemporalIsomorphismMatcher

BATCH_SIZE = 256
SUFFIX = 1500


def _run(stream, workload):
    rows = []
    for suite, query in workload:
        prefix = len(stream) - SUFFIX
        mnemonic = run_mnemonic_stream(
            query, stream, match_def=TemporalIsomorphismMatcher(),
            initial_prefix=prefix, batch_size=BATCH_SIZE, query_name=suite,
        )
        litcs = run_litcs_stream(query, stream, initial_prefix=prefix, query_name=suite)
        speedup = litcs.seconds / mnemonic.seconds if mnemonic.seconds > 0 else 0.0
        rows.append([
            suite, mnemonic.seconds, litcs.seconds, speedup,
            mnemonic.embeddings, litcs.embeddings,
            litcs.extra["peak_stored_partials"],
        ])
    return rows


@pytest.mark.benchmark(group="fig16")
def test_fig16_temporal(benchmark, lanl_workload):
    stream, workload = lanl_workload
    rows = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 16 - time-constrained isomorphism: Mnemonic vs Li et al. match-store tree",
        ["suite", "mnemonic_s", "li_et_al_s", "speedup", "mn_matches", "li_matches",
         "li_peak_partials"],
        rows,
    )
    write_result("fig16_temporal", table)
    for row in rows:
        # Both systems complete; the match-store tree must not find matches the
        # incremental engine misses (its arrival-order restriction only loses).
        assert row[1] > 0 and row[2] > 0
        assert row[4] >= row[5]
        # The baseline's memory signature: it stores partial embeddings.
        assert row[6] >= 0
