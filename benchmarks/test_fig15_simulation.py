"""Figure 15: dual simulation on the LANL-like stream with a sliding window.

The simulation family produces a binary relation instead of embeddings,
so its per-window cost is far below isomorphism (the paper completes
most queries within 30 minutes vs 2 hours).  The reproduction updates
DEBI incrementally per window and recomputes the relation from the
index (``dual_simulation_from_debi``), reporting runtime per suite and
the relation sizes, plus the isomorphism runtime on the same windows
for the cheap/expensive contrast.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.matchers import HomomorphismMatcher, dual_simulation_from_debi
from repro.streams.config import StreamConfig, StreamType

WINDOW = 24 * 60.0
STRIDE = 6 * 60.0


def _run_simulation(query, stream):
    engine = MnemonicEngine(query, match_def=HomomorphismMatcher(), config=EngineConfig(
        stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=WINDOW, stride=STRIDE),
        collect_embeddings=False,
    ))
    start = time.perf_counter()
    snapshots = 0
    non_empty_windows = 0
    relation_size = 0
    for snapshot in engine.initialize_stream(stream):
        # Index maintenance only (no embedding enumeration): insert the batch,
        # apply the expirations, then recompute the relation from DEBI.
        engine.index_manager.handle_insertions(
            [engine._insert_event(e) for e in snapshot.insertions])
        if snapshot.deletions:
            doomed = []
            for event in snapshot.deletions:
                edge_id = engine.graph.find_edges(event.src, event.dst, event.label)[-1]
                row = engine.debi.row(edge_id)
                record = engine.graph.delete_edge(edge_id)
                engine.debi.clear_edge(edge_id)
                doomed.append((record, row))
            engine.index_manager.handle_deletions(doomed)
        relation = dual_simulation_from_debi(engine)
        snapshots += 1
        if relation:
            non_empty_windows += 1
            relation_size = sum(len(v) for v in relation.values())
    elapsed = time.perf_counter() - start
    return elapsed, snapshots, non_empty_windows, relation_size


def _run(stream, workload):
    rows = []
    for suite, query in workload:
        sim_seconds, snapshots, non_empty, relation_size = _run_simulation(query, stream)
        iso = run_mnemonic_stream(query, stream, initial_prefix=0, batch_size=100_000,
                                  stream_type=StreamType.SLIDING_WINDOW, window=WINDOW,
                                  stride=STRIDE, query_name=suite)
        rows.append([suite, sim_seconds, iso.seconds, snapshots, non_empty, relation_size])
    return rows


@pytest.mark.benchmark(group="fig15")
def test_fig15_simulation(benchmark, lanl_workload):
    stream, workload = lanl_workload
    rows = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 15 - dual simulation per sliding window vs isomorphism on the same windows",
        ["suite", "dual_simulation_s", "isomorphism_s", "windows", "non_empty_windows",
         "last_relation_size"],
        rows,
    )
    write_result("fig15_simulation", table)
    # Shape check: every suite completes and the relaxed semantics is never
    # dramatically more expensive than full isomorphism on the same stream.
    for row in rows:
        assert row[1] > 0
        assert row[1] <= row[2] * 5
