"""Figure 7: per-worker utilisation over the lifetime of one query.

The paper samples per-core CPU usage while a T_9 query is processed and
shows that Mnemonic keeps all cores busy (fine-grained pull-based work
units) whereas TurboFlux is strictly sequential.  The reproduction runs
the same stream with a 4-worker pull-based pool, derives the utilisation
timeline from the workers' busy intervals, and contrasts it with the
sequential baseline (which by construction can keep at most one worker
busy, i.e. 1/4 of the pool).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream, run_turboflux_stream
from repro.bench.metrics import cpu_usage_timeline
from repro.bench.reporting import format_series
from repro.core.parallel import ParallelConfig

WORKERS = 4
SUFFIX = 600
BATCH_SIZE = 128


def _pick_query(workload):
    # The paper uses a T_9 query; fall back to the largest available suite.
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return suites[-1], workload.queries(suites[-1])[0]


def _run(stream, workload):
    suite, query = _pick_query(workload)
    prefix = len(stream) - SUFFIX
    mnemonic = run_mnemonic_stream(
        query, stream, initial_prefix=prefix, batch_size=BATCH_SIZE, query_name=suite,
        parallel=ParallelConfig(backend="thread", num_workers=WORKERS),
    )
    turboflux = run_turboflux_stream(query, stream, initial_prefix=prefix, query_name=suite)
    series = cpu_usage_timeline(mnemonic.run_result, buckets=20)
    mean_util = sum(v for _, v in series) / len(series)
    return suite, series, mean_util, mnemonic, turboflux


@pytest.mark.benchmark(group="fig07")
def test_fig07_cpu_usage(benchmark, netflow_workload):
    stream, workload = netflow_workload
    suite, series, mean_util, mnemonic, turboflux = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    text = format_series(
        f"Figure 7 - worker utilisation over normalised runtime ({suite}, {WORKERS} workers)",
        [(f"{x:.2f}", v) for x, v in series],
        value_name="mean_utilisation",
    )
    text += (
        f"\nmean worker utilisation (Mnemonic, pull-based): {mean_util:.2f}"
        f"\nsequential baseline utilisation bound (1/{WORKERS} workers): {1.0 / WORKERS:.2f}"
        f"\nTurboFlux runtime {turboflux.seconds:.3f}s vs Mnemonic {mnemonic.seconds:.3f}s"
    )
    write_result("fig07_cpu_usage", text)
    # Shape check: the pull-based decomposition keeps the pool busier than a
    # strictly sequential system ever could (> 1/WORKERS on average).
    assert mean_util > 1.0 / WORKERS
