"""Figure 17: edge placeholders over the sliding window with / without reclaiming.

Even when the number of live events inside a 24-hour window stays flat,
the number of allocated edge slots (and therefore DEBI rows) grows
steadily unless the slots of deleted edges are recycled.  The paper
reports growth dropping from 67% to 23% over 90 snapshots with
reclaiming.  The reproduction runs the same sliding window twice — with
recycling on and off — and samples, per snapshot, the live edge count
(the "search space") and the allocated placeholders.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.reporting import format_table
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.streams.config import StreamConfig, StreamType

WINDOW = 24 * 60.0
STRIDE = 2 * 60.0


def _pick_query(workload):
    suites = sorted((s for s in workload.suite_names() if s.startswith("T_")),
                    key=lambda s: int(s.split("_")[1]))
    return workload.queries(suites[0])[0]


def _run_variant(query, stream, recycle: bool):
    engine = MnemonicEngine(query, config=EngineConfig(
        stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=WINDOW, stride=STRIDE),
        collect_embeddings=False, recycle_edge_ids=recycle,
    ))
    samples = []
    for snapshot in engine.initialize_stream(stream):
        engine.process_snapshot(snapshot)
        samples.append((snapshot.number, engine.graph.num_edges, engine.graph.num_placeholders))
    return samples, engine


def _run(stream, workload):
    query = _pick_query(workload)
    with_recycling, engine_r = _run_variant(query, stream, recycle=True)
    without_recycling, engine_n = _run_variant(query, stream, recycle=False)
    rows = []
    for (num, live, ph_with), (_, _, ph_without) in zip(with_recycling, without_recycling):
        if num % 3 == 0 or num == with_recycling[-1][0]:
            rows.append([num, live, ph_with, ph_without])
    summary = {
        "snapshots": len(with_recycling),
        "final_live": with_recycling[-1][1],
        "final_with": with_recycling[-1][2],
        "final_without": without_recycling[-1][2],
        "recycle_rate": engine_r.graph.stats.recycle_rate,
    }
    return rows, summary


@pytest.mark.benchmark(group="fig17")
def test_fig17_memory_reclaiming(benchmark, lanl_workload):
    stream, workload = lanl_workload
    rows, summary = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 17 - edge placeholders per snapshot (search space vs with/without reclaiming)",
        ["snapshot", "live_edges", "placeholders_with_reclaiming", "placeholders_without"],
        rows,
    )
    table += (
        f"\nsnapshots={summary['snapshots']}  final live={summary['final_live']}  "
        f"with reclaiming={summary['final_with']}  without={summary['final_without']}  "
        f"recycle rate={summary['recycle_rate']:.1%}"
    )
    write_result("fig17_memory_reclaiming", table)
    # Shape checks: reclaiming cuts placeholder growth substantially (the
    # paper: 67% -> 23% growth over 90 snapshots), while the non-reclaiming
    # run keeps one slot per streamed insertion.  Reuse is per source vertex,
    # so the reclaimed count sits between the live search space and the
    # non-reclaiming ceiling.
    assert summary["final_with"] < 0.75 * summary["final_without"]
    assert summary["final_with"] >= summary["final_live"]
    assert summary["recycle_rate"] > 0.2
