"""Service latency vs offered load: the figure the paper never measured.

The paper evaluates Mnemonic as a batch replayer — throughput over a
pre-materialised trace, with ingest assumed free.  A live service is
judged on a different axis: how long an event waits between *arriving*
and its matches being *available*, as a function of offered load.  This
benchmark drives the broker-fed service path at several uniform offered
loads (a rate-controlled :class:`~repro.streams.sources.ReplaySource`
behind the :class:`~repro.streams.broker.StreamBroker`'s producer
thread, real wall clock) with adaptive batching enabled, in both batch
execution modes, and reports the p50/p95/p99 ingest-to-result latency
rollup next to throughput.

Expected shape: at low load the adaptive ``max_batch_delay`` dominates —
batches flush on time, so p50 sits near the delay and grows only mildly
with load; as offered load approaches service capacity, queueing (the
broker's backpressure) pushes the tail percentiles up first.  Latency
*values* on shared CI runners are noise, so assertions only cover
structure: every run reports a full rollup over every snapshot, and
percentiles are ordered.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_service_stream
from repro.bench.reporting import format_table
from repro.core.parallel import ParallelConfig
from repro.streams.config import StreamType

SUFFIX = 400
BATCH_SIZE = 64
MAX_BATCH_DELAY = 0.02
#: uniform offered loads (events/second); ~0.2s and ~0.05s of streaming
LOADS = (2000.0, 8000.0)
MODES = ("serial", "pipelined")
WORKERS = 2


def _run(stream, workload):
    prefix = len(stream) - SUFFIX
    suite, query = next(iter(workload))  # T_3: the latency-bound (small) query
    rows = []
    summaries = {}
    for load in LOADS:
        for mode in MODES:
            run = run_service_stream(
                query, stream, initial_prefix=prefix, batch_size=BATCH_SIZE,
                max_batch_delay=MAX_BATCH_DELAY, stream_type=StreamType.INSERT_ONLY,
                events_per_second=load, pipeline=mode, query_name=suite,
                parallel=ParallelConfig(backend="process", num_workers=WORKERS,
                                        chunk_size=16),
            )
            latency = run.latency
            summaries[(load, mode)] = run
            rows.append([
                suite, f"{load:.0f}", mode, run.extra["snapshots"],
                latency.get("p50", 0.0) * 1e3, latency.get("p95", 0.0) * 1e3,
                latency.get("p99", 0.0) * 1e3, latency.get("max", 0.0) * 1e3,
                run.embeddings, run.seconds,
                run.extra["broker"]["max_depth"],
            ])
    return rows, summaries


@pytest.mark.benchmark(group="fig18_service_latency")
def test_fig18_service_latency(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, summaries = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    table = format_table(
        "Service latency vs offered load - broker-fed adaptive batching "
        f"(delay {MAX_BATCH_DELAY * 1e3:.0f}ms, cap {BATCH_SIZE})",
        ["suite", "load_ev_s", "mode", "batches", "p50_ms", "p95_ms",
         "p99_ms", "max_ms", "embeddings", "wall_s", "peak_queue"],
        rows,
    )
    write_result("fig18_service_latency", table)

    embeddings = {key: run.embeddings for key, run in summaries.items()}
    assert len(set(embeddings.values())) == 1, (
        f"offered load / pipeline mode changed the results: {embeddings}"
    )
    for key, run in summaries.items():
        latency = run.latency
        assert latency, f"{key}: broker-fed run reported no latency rollup"
        # every processed snapshot must carry an ingest->result latency
        assert latency["count"] == run.extra["snapshots"]
        assert 0.0 <= latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        # ingest really went through the bounded broker
        assert run.extra["broker"]["enqueued"] == SUFFIX
        assert run.extra["broker"]["max_depth"] <= 4096
