"""Figure 11: incremental Mnemonic vs from-scratch CECI per snapshot.

CECI's compact query-centric index is excellent for a single static
enumeration but has to be rebuilt for every snapshot of a stream; the
paper reports a 42x average advantage for incremental processing (CECI
is only marginally better on the very first snapshot).  The reproduction
generates a series of snapshots from the NetFlow-like stream, lets
Mnemonic process only the per-snapshot deltas, re-runs CECI from scratch
at each snapshot point, and compares mean per-snapshot runtimes.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_ceci_per_snapshot
from repro.bench.reporting import format_table
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.streams.config import StreamConfig

FIRST_SNAPSHOT = 2000
STRIDE_EVENTS = 200


def _mnemonic_per_snapshot(query, stream):
    engine = MnemonicEngine(query, config=EngineConfig(
        stream=StreamConfig(batch_size=STRIDE_EVENTS), collect_embeddings=False))
    engine.load_initial(stream[:FIRST_SNAPSHOT])
    start = time.perf_counter()
    result = engine.run(stream[FIRST_SNAPSHOT:])
    elapsed = time.perf_counter() - start
    return elapsed / max(len(result.snapshots), 1), len(result.snapshots)


def _run(stream, workload):
    snapshot_points = list(range(FIRST_SNAPSHOT, len(stream) + 1, STRIDE_EVENTS))
    rows = []
    ratios = []
    for suite, query in workload:
        mnemonic_per_snap, snapshots = _mnemonic_per_snapshot(query, stream)
        ceci = run_ceci_per_snapshot(query, stream, snapshot_points, query_name=suite)
        ratio = ceci.seconds / mnemonic_per_snap if mnemonic_per_snap > 0 else 0.0
        ratios.append(ratio)
        rows.append([suite, mnemonic_per_snap, ceci.seconds, ratio, snapshots])
    return rows, ratios


@pytest.mark.benchmark(group="fig11")
def test_fig11_vs_ceci_snapshots(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, ratios = benchmark.pedantic(_run, args=(stream, workload), rounds=1, iterations=1)
    table = format_table(
        "Figure 11 - mean per-snapshot runtime (s): incremental Mnemonic vs from-scratch CECI",
        ["suite", "mnemonic_per_snapshot_s", "ceci_per_snapshot_s", "ceci/mnemonic", "snapshots"],
        rows,
    )
    write_result("fig11_vs_ceci_snapshots", table)
    # Shape check: incremental processing beats recomputation on average
    # (the paper reports ~42x; the scale here is much smaller but the
    # direction must hold for every suite).
    assert all(ratio > 1.0 for ratio in ratios)
