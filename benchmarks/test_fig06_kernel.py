"""Figure 6 kernel gate: columnar vs reference single-thread wall-clock.

The columnar kernel's reason to exist is the single-thread fig06 T_9 row
— the suite where per-tuple Python overhead dominates and the arena's
batched extend/intersect pays off hardest.  This benchmark measures both
kernels best-of-N on the same host and **asserts the ≥3x floor** on T_9
(measured ~4-5x; the floor keeps headroom for loaded runners).  The
other suites are reported for context but not gated: their enumeration
trees are shallow enough that per-batch fixed costs dilute the win.

Parity is not this benchmark's job — ``perf_smoke.py``'s
``kernel_parity`` gate proves bit-identical results; this file only pins
the speed claim so a future regression cannot quietly trade the win
away while staying correct.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_mnemonic_stream
from repro.bench.reporting import format_table

SUFFIX = 500
BATCH = 256
ROUNDS = 3
KERNELS = ("columnar", "python")

#: single-thread T_9 floor (acceptance: >= 3x; measured ~4-5x)
T9_SPEEDUP_FLOOR = 3.0


def _best_of(rounds, fn):
    return min(fn().seconds for _ in range(rounds))


def _run(stream, workload):
    prefix = len(stream) - SUFFIX
    rows = []
    speedups = {}
    for suite in workload.suite_names():
        query = workload.queries(suite)[0]
        seconds = {}
        for kernel in KERNELS:
            seconds[kernel] = _best_of(
                ROUNDS,
                lambda kernel=kernel: run_mnemonic_stream(
                    query, stream, initial_prefix=prefix, batch_size=BATCH,
                    kernel=kernel, query_name=suite,
                ),
            )
        speedups[suite] = seconds["python"] / seconds["columnar"]
        rows.append([suite, seconds["python"], seconds["columnar"],
                     speedups[suite]])
    return rows, speedups


@pytest.mark.benchmark(group="fig06")
def test_fig06_kernel_speedup(benchmark, netflow_workload):
    stream, workload = netflow_workload
    rows, speedups = benchmark.pedantic(
        _run, args=(stream, workload), rounds=1, iterations=1
    )
    table = format_table(
        f"Figure 6 - kernel single-thread wall-clock (best of {ROUNDS})",
        ["suite", "python_s", "columnar_s", "speedup"],
        rows,
    )
    write_result("fig06_kernel_speedup", table)

    assert speedups["T_9"] >= T9_SPEEDUP_FLOOR, (
        f"columnar kernel only {speedups['T_9']:.2f}x over the reference on "
        f"T_9 (floor {T9_SPEEDUP_FLOOR}x): {speedups}"
    )
    # The shallow suites must at least not regress badly: the kernel is
    # allowed to tie, not to lose half its speed to fixed batch costs.
    for suite, ratio in speedups.items():
        assert ratio > 0.5, f"columnar kernel regressed on {suite}: {ratio:.2f}x"
