"""CECI-style static subgraph matcher (query-centric compact candidate index).

CECI (Bhattarai et al., SIGMOD'19) builds, for every query-tree edge, a
key–value store mapping each candidate match of the parent query node to
the adjacent candidate matches of the child node (the paper's Figure
5(a)).  The index is compact and gives coalesced access during
enumeration, but — as Observation #1 in Section IV argues — updating it
on a streaming graph costs up to O(|V|) per edge, so the streaming
comparison (Figure 11) re-builds it from scratch for every snapshot.

This implementation is intentionally independent of the Mnemonic engine:
it has its own filtering and its own backtracking enumeration, and it is
used both as the Figure 11 baseline and as a correctness cross-check in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.results import Embedding
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.query.query_tree import QueryTree, TreeEdge


@dataclass
class CECIStats:
    """Index-construction and enumeration statistics for one run."""

    index_entries: int = 0
    candidate_vertices: int = 0
    filter_passes: int = 0
    embeddings: int = 0
    build_seconds: float = 0.0
    enumerate_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.enumerate_seconds


class CECIMatcher:
    """From-scratch subgraph matching over a static graph snapshot."""

    def __init__(self, query: QueryGraph, match_def: MatchDefinition | None = None,
                 root: int | None = None) -> None:
        query.validate()
        self.query = query
        self.match_def = match_def or DefaultMatchDefinition()
        self.tree = QueryTree(query, root=root)
        self.stats = CECIStats()

    # ------------------------------------------------------------------ index construction
    def _initial_candidates(self, graph: DynamicGraph) -> dict[int, set[int]]:
        cand: dict[int, set[int]] = {}
        for u in self.query.nodes():
            label = self.query.node_label(u)
            if label == WILDCARD_LABEL:
                members = set(graph.vertices())
            else:
                members = {v for v in graph.vertices() if graph.vertex_label(v) == label}
            cand[u] = members
            self.stats.candidate_vertices += len(members)
        return cand

    def _edges_between_candidates(
        self, graph: DynamicGraph, tree_edge: TreeEdge, parent_vertex: int, cand: dict[int, set[int]]
    ) -> list[tuple[int, int]]:
        """(edge_id, child_vertex) pairs extending ``parent_vertex`` along ``tree_edge``."""
        q_edge = tree_edge.query_edge
        out: list[tuple[int, int]] = []
        if tree_edge.parent_is_src:
            pool = graph.out_edges(parent_vertex)
        else:
            pool = graph.in_edges(parent_vertex)
        for eid in pool:
            record = graph.edge(eid)
            child_vertex = record.dst if tree_edge.parent_is_src else record.src
            if child_vertex not in cand[tree_edge.child]:
                continue
            if not self.match_def.edge_matcher(self.query, graph, q_edge, record):
                continue
            out.append((eid, child_vertex))
        return out

    def build_index(self, graph: DynamicGraph) -> dict[int, dict[int, list[tuple[int, int]]]]:
        """Build the per-tree-edge key–value candidate store (and prune candidates)."""
        import time

        start = time.perf_counter()
        cand = self._initial_candidates(graph)

        # Top-down pass: restrict each child's candidates to vertices reachable
        # from a surviving parent candidate along a matching edge.
        for tree_edge in self.tree.tree_edges:
            self.stats.filter_passes += 1
            reachable: set[int] = set()
            for vp in cand[tree_edge.parent]:
                for _, vc in self._edges_between_candidates(graph, tree_edge, vp, cand):
                    reachable.add(vc)
            cand[tree_edge.child] &= reachable

        # Bottom-up pass: drop parent candidates with no surviving child candidate.
        for tree_edge in reversed(self.tree.tree_edges):
            self.stats.filter_passes += 1
            keep: set[int] = set()
            for vp in cand[tree_edge.parent]:
                if self._edges_between_candidates(graph, tree_edge, vp, cand):
                    keep.add(vp)
            cand[tree_edge.parent] &= keep

        # Materialise the key-value stores.
        index: dict[int, dict[int, list[tuple[int, int]]]] = {}
        for tree_edge in self.tree.tree_edges:
            store: dict[int, list[tuple[int, int]]] = {}
            for vp in cand[tree_edge.parent]:
                entries = self._edges_between_candidates(graph, tree_edge, vp, cand)
                if entries:
                    store[vp] = entries
                    self.stats.index_entries += len(entries)
            index[tree_edge.column] = store
        self._candidates = cand
        self.stats.build_seconds += time.perf_counter() - start
        return index

    # ------------------------------------------------------------------ enumeration
    def match(self, graph: DynamicGraph) -> list[Embedding]:
        """Enumerate all embeddings in ``graph`` (from scratch)."""
        import time

        index = self.build_index(graph)
        start = time.perf_counter()
        results: list[Embedding] = []
        root = self.tree.root
        root_candidates = self._candidates.get(root, set())
        order = self.tree.tree_edges  # BFS order: parents always bound before children

        def verify_non_tree(node_map: dict[int, int], used_edges: set[int]) -> dict[int, int] | None:
            witness: dict[int, int] = {}
            for q_edge in self.tree.non_tree_edges:
                if q_edge.src not in node_map or q_edge.dst not in node_map:
                    return None
                found = None
                for eid in graph.find_edges(node_map[q_edge.src], node_map[q_edge.dst]):
                    if self.match_def.injective and (eid in used_edges or eid in witness.values()):
                        continue
                    if self.match_def.edge_matcher(self.query, graph, q_edge, graph.edge(eid)):
                        found = eid
                        break
                if found is None:
                    return None
                witness[q_edge.index] = found
            return witness

        def extend(position: int, node_map: dict[int, int], edge_map: dict[int, int]) -> None:
            if position == len(order):
                witness = verify_non_tree(node_map, set(edge_map.values()))
                if witness is None:
                    return
                full_edges = dict(edge_map)
                full_edges.update(witness)
                embedding = Embedding.build(node_map, full_edges, start_edge=order[0].query_edge.index
                                            if order else 0)
                if self.match_def.accept(None, embedding):  # type: ignore[arg-type]
                    results.append(embedding)
                return
            tree_edge = order[position]
            parent_vertex = node_map[tree_edge.parent]
            for eid, child_vertex in index[tree_edge.column].get(parent_vertex, ()):
                if self.match_def.injective and child_vertex in node_map.values():
                    continue
                if self.match_def.injective and eid in edge_map.values():
                    continue
                node_map[tree_edge.child] = child_vertex
                edge_map[tree_edge.query_edge.index] = eid
                extend(position + 1, node_map, edge_map)
                del node_map[tree_edge.child]
                del edge_map[tree_edge.query_edge.index]

        for root_vertex in sorted(root_candidates):
            extend(0, {root: root_vertex}, {})

        self.stats.embeddings += len(results)
        self.stats.enumerate_seconds += time.perf_counter() - start
        return results

    def match_node_maps(self, graph: DynamicGraph) -> set[tuple[tuple[int, int], ...]]:
        """Distinct node mappings (for cross-checks against other engines)."""
        return {e.node_map for e in self.match(graph)}
