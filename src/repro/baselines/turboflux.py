"""TurboFlux-style incremental matcher (data-centric, edge-at-a-time).

TurboFlux (Kim et al., SIGMOD'18) pioneered data-graph-centric
incremental subgraph matching.  The reproduction models the three
properties the paper contrasts Mnemonic against (Section I and IV):

1. **Collapsed multi-edges** — all edge instances between the same
   endpoints with the same label are one entry (a count) in its graph
   view, so repeated events do not trigger re-enumeration and the
   temporal context of individual instances is lost.
2. **Strictly per-edge processing** — every inserted/deleted edge is
   processed on its own: the affected region of the vertex-state index
   is re-traversed for each edge, with no sharing across a batch.
3. **Sequential pipeline** — updates and enumeration are interleaved
   per edge; there is no batch-level work decomposition to parallelise.

The vertex-state index mirrors the DCG idea: for every data vertex and
every non-root query node we keep a boolean *candidate state* meaning
"the subtree of the query rooted at this node can be matched starting at
this vertex"; the root has its own state.  States are recomputed locally
(bottom-up from the touched vertices) on every single edge update, and
new embeddings containing the updated edge are enumerated immediately.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.results import Embedding
from repro.query.query_graph import WILDCARD_LABEL, QueryEdge, QueryGraph
from repro.query.query_tree import QueryTree
from repro.utils.validation import GraphError


@dataclass
class TurboFluxStats:
    """Work counters used by the Figure 6/8/9 comparisons."""

    edges_processed: int = 0
    state_recomputations: int = 0
    traversed_edges: int = 0
    embeddings: int = 0
    suppressed_duplicates: int = 0


@dataclass
class _CollapsedEdge:
    """One (src, dst, label) entry of the collapsed simple-graph view."""

    src: int
    dst: int
    label: int
    count: int = 1


class TurboFluxMatcher:
    """Incremental isomorphism/homomorphism matching, one edge at a time."""

    def __init__(self, query: QueryGraph, match_def: MatchDefinition | None = None,
                 root: int | None = None) -> None:
        query.validate()
        self.query = query
        self.match_def = match_def or DefaultMatchDefinition()
        self.tree = QueryTree(query, root=root)
        self.stats = TurboFluxStats()

        # Collapsed graph view: (src, dst, label) -> _CollapsedEdge
        self._edges: dict[tuple[int, int, int], _CollapsedEdge] = {}
        self._out: dict[int, set[tuple[int, int, int]]] = defaultdict(set)
        self._in: dict[int, set[tuple[int, int, int]]] = defaultdict(set)
        self._vertex_labels: dict[int, int] = {}

        # Candidate states: query node -> set of data vertices whose
        # downward subtree requirement is satisfied.
        self._state: dict[int, set[int]] = {u: set() for u in query.nodes()}

    # ------------------------------------------------------------------ collapsed graph
    def _add_vertex(self, vertex: int, label: int) -> None:
        if vertex not in self._vertex_labels:
            self._vertex_labels[vertex] = label

    def vertex_label(self, vertex: int) -> int:
        return self._vertex_labels.get(vertex, 0)

    def _out_keys(self, vertex: int) -> set[tuple[int, int, int]]:
        return self._out.get(vertex, set())

    def _in_keys(self, vertex: int) -> set[tuple[int, int, int]]:
        return self._in.get(vertex, set())

    # ------------------------------------------------------------------ label matching on the collapsed view
    def _node_label_ok(self, query_node: int, vertex: int) -> bool:
        label = self.query.node_label(query_node)
        return label == WILDCARD_LABEL or label == self.vertex_label(vertex)

    def _edge_label_ok(self, q_edge: QueryEdge, key: tuple[int, int, int]) -> bool:
        return q_edge.label == WILDCARD_LABEL or q_edge.label == key[2]

    def _collapsed_edge_matches(self, q_edge: QueryEdge, key: tuple[int, int, int]) -> bool:
        src, dst, _ = key
        return (
            self._edge_label_ok(q_edge, key)
            and self._node_label_ok(q_edge.src, src)
            and self._node_label_ok(q_edge.dst, dst)
        )

    # ------------------------------------------------------------------ candidate states
    def _down_ok(self, vertex: int, query_node: int) -> bool:
        for child in self.tree.children[query_node]:
            tree_edge = self.tree.tree_edge_by_child[child]
            q_edge = tree_edge.query_edge
            pool = self._out_keys(vertex) if q_edge.src == query_node else self._in_keys(vertex)
            ok = False
            for key in pool:
                self.stats.traversed_edges += 1
                other = key[1] if q_edge.src == query_node else key[0]
                if self._collapsed_edge_matches(q_edge, key) and other in self._state[child]:
                    ok = True
                    break
            if not ok:
                return False
        return True

    def _recompute_state(self, vertex: int, query_node: int) -> bool:
        """Recompute one (vertex, query node) state; return True when it changed."""
        self.stats.state_recomputations += 1
        should = self._node_label_ok(query_node, vertex) and self._down_ok(vertex, query_node)
        present = vertex in self._state[query_node]
        if should and not present:
            self._state[query_node].add(vertex)
            return True
        if not should and present:
            self._state[query_node].remove(vertex)
            return True
        return False

    def _propagate_from(self, src: int, dst: int) -> None:
        """Per-edge upward propagation of candidate states (no batch sharing)."""
        # Start from the deepest query nodes and walk to the root, rechecking
        # both endpoints of the updated edge and any vertex whose state change
        # may cascade to its in/out neighbours along the query tree.
        dirty: set[tuple[int, int]] = set()
        for query_node in sorted(self.query.nodes(), key=lambda u: -self.tree.depth[u]):
            for vertex in (src, dst):
                dirty.add((vertex, query_node))
        # Fixed-point per edge (the region is small but re-walked per edge).
        pending = sorted(dirty, key=lambda item: -self.tree.depth[item[1]])
        while pending:
            vertex, query_node = pending.pop(0)
            changed = self._recompute_state(vertex, query_node)
            if not changed:
                continue
            parent = self.tree.parent.get(query_node)
            if parent is None:
                continue
            tree_edge = self.tree.tree_edge_by_child[query_node]
            q_edge = tree_edge.query_edge
            # Vertices that could match the parent node through this child.
            pool = self._in_keys(vertex) if q_edge.src == parent else self._out_keys(vertex)
            for key in pool:
                self.stats.traversed_edges += 1
                neighbour = key[0] if q_edge.src == parent else key[1]
                pending.append((neighbour, parent))

    # ------------------------------------------------------------------ public streaming API
    def insert_edge(self, src: int, dst: int, label: int = 0,
                    src_label: int = 0, dst_label: int = 0) -> list[Embedding]:
        """Insert one edge and return the embeddings it creates.

        Repeated insertions of an existing (src, dst, label) triple only
        bump the multiplicity counter: TurboFlux's collapsed view cannot
        distinguish the new instance, so no new embeddings are reported
        (``stats.suppressed_duplicates`` counts these events).
        """
        self.stats.edges_processed += 1
        self._add_vertex(src, src_label)
        self._add_vertex(dst, dst_label)
        key = (src, dst, label)
        existing = self._edges.get(key)
        if existing is not None:
            existing.count += 1
            self.stats.suppressed_duplicates += 1
            return []
        self._edges[key] = _CollapsedEdge(src, dst, label)
        self._out[src].add(key)
        self._in[dst].add(key)
        self._propagate_from(src, dst)
        embeddings = self._enumerate_containing(key, positive=True)
        self.stats.embeddings += len(embeddings)
        return embeddings

    def delete_edge(self, src: int, dst: int, label: int = 0) -> list[Embedding]:
        """Delete one edge instance and return the embeddings it destroys."""
        self.stats.edges_processed += 1
        key = (src, dst, label)
        existing = self._edges.get(key)
        if existing is None:
            raise GraphError(f"TurboFlux: no edge {key} to delete")
        if existing.count > 1:
            existing.count -= 1
            self.stats.suppressed_duplicates += 1
            return []
        # Enumerate the embeddings that are about to disappear, then remove.
        embeddings = self._enumerate_containing(key, positive=False)
        del self._edges[key]
        self._out[src].discard(key)
        self._in[dst].discard(key)
        self._propagate_from(src, dst)
        self.stats.embeddings += len(embeddings)
        return embeddings

    def load_edge(self, src: int, dst: int, label: int = 0,
                  src_label: int = 0, dst_label: int = 0) -> None:
        """Insert one edge *without* enumerating (initial-graph loading).

        Mirrors the Mnemonic engine's ``load_initial``: the collapsed graph
        and the candidate states are updated, but pre-existing matches are
        not reported.
        """
        self._add_vertex(src, src_label)
        self._add_vertex(dst, dst_label)
        key = (src, dst, label)
        existing = self._edges.get(key)
        if existing is not None:
            existing.count += 1
            return
        self._edges[key] = _CollapsedEdge(src, dst, label)
        self._out[src].add(key)
        self._in[dst].add(key)
        self._propagate_from(src, dst)

    def insert_batch(self, triples) -> list[Embedding]:
        """Convenience: process many (src, dst, label[, src_label, dst_label]) sequentially."""
        out: list[Embedding] = []
        for item in triples:
            out.extend(self.insert_edge(*item))
        return out

    def delete_batch(self, triples) -> list[Embedding]:
        out: list[Embedding] = []
        for item in triples:
            out.extend(self.delete_edge(*item[:3]))
        return out

    # ------------------------------------------------------------------ enumeration
    def _enumerate_containing(self, key: tuple[int, int, int], positive: bool) -> list[Embedding]:
        """Backtracking enumeration of embeddings that use the collapsed edge ``key``."""
        results: list[Embedding] = []
        src, dst, _ = key
        for q_edge in self.query.edges():
            if not self._collapsed_edge_matches(q_edge, key):
                continue
            node_map = {q_edge.src: src}
            if q_edge.dst in node_map and node_map[q_edge.dst] != dst:
                continue
            node_map[q_edge.dst] = dst
            if self.match_def.injective and q_edge.src != q_edge.dst and src == dst:
                continue
            remaining = [u for u in self.query.nodes() if u not in node_map]
            self._extend(q_edge.index, key, remaining, node_map, {q_edge.index: key}, results, positive)
        # The same node mapping can be rediscovered when the updated edge
        # matches several query edges.  The collapsed view carries no edge
        # identity, so embeddings are node-level and deduplicated as such.
        unique: dict[tuple, Embedding] = {}
        for embedding in results:
            unique.setdefault(embedding.node_map, embedding)
        return list(unique.values())

    def _extend(self, start_edge: int, start_key, remaining: list[int], node_map: dict[int, int],
                edge_map: dict[int, tuple[int, int, int]], results: list[Embedding],
                positive: bool) -> None:
        if not remaining:
            if self._verify_all_edges(node_map, edge_map, start_edge, start_key):
                # Collapsed keys have no stable integer id; hash them for the record.
                encoded = {qi: hash(k) & 0x7FFFFFFF for qi, k in edge_map.items()}
                results.append(Embedding.build(node_map, encoded, start_edge, positive=positive))
            return
        # Pick the next query node adjacent (in the query) to a bound node.
        next_node = None
        for u in remaining:
            if any(e.other(u) in node_map for e in self.query.incident_edges(u)):
                next_node = u
                break
        if next_node is None:
            return
        anchor_edge = next(
            e for e in self.query.incident_edges(next_node) if e.other(next_node) in node_map
        )
        anchor_vertex = node_map[anchor_edge.other(next_node)]
        anchor_is_src = anchor_edge.src != next_node
        pool = self._out_keys(anchor_vertex) if anchor_is_src else self._in_keys(anchor_vertex)
        for cand_key in pool:
            self.stats.traversed_edges += 1
            if not self._collapsed_edge_matches(anchor_edge, cand_key):
                continue
            vertex = cand_key[1] if anchor_is_src else cand_key[0]
            if self.match_def.injective and vertex in node_map.values():
                continue
            # Candidate-state pruning (the data-centric index).
            if next_node != self.tree.root and vertex not in self._state[next_node]:
                continue
            if next_node == self.tree.root and not (
                self._node_label_ok(next_node, vertex) and self._down_ok(vertex, next_node)
            ):
                continue
            node_map[next_node] = vertex
            edge_map[anchor_edge.index] = cand_key
            self._extend(start_edge, start_key, [u for u in remaining if u != next_node],
                         node_map, edge_map, results, positive)
            del node_map[next_node]
            del edge_map[anchor_edge.index]

    def _verify_all_edges(self, node_map: dict[int, int], edge_map: dict, start_edge: int,
                          start_key) -> bool:
        """Every query edge must have a matching collapsed edge between its images.

        Embeddings must contain the updated edge (``start_key``) so that an
        embedding is reported exactly once over an insert-only stream (only
        when its last edge arrives).
        """
        uses_new = False
        for q_edge in self.query.edges():
            vs, vd = node_map[q_edge.src], node_map[q_edge.dst]
            found = None
            for key in self._out_keys(vs):
                if key[1] == vd and self._collapsed_edge_matches(q_edge, key):
                    found = key
                    break
            if found is None:
                return False
            if found == start_key:
                uses_new = True
        return uses_new

    # ------------------------------------------------------------------ introspection
    def node_maps(self) -> set[tuple[tuple[int, int], ...]]:
        """All embeddings' node maps found so far are not stored; helper for tests."""
        raise NotImplementedError(
            "TurboFluxMatcher streams embeddings; collect the return values of "
            "insert_edge()/delete_edge() instead"
        )

    def state_size(self) -> int:
        """Total number of (vertex, query node) candidate states currently set."""
        return sum(len(vertices) for vertices in self._state.values())
