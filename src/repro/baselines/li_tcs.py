"""Li et al.-style time-constrained continuous subgraph search (Figure 16 baseline).

Li et al. (ICDE'19) answer time-constrained subgraph queries over a
sliding window by keeping a *match-store tree*: partially materialised
embeddings ordered by the query's temporal order, so that a new edge
only has to extend stored prefixes instead of re-running the search.
The price — which the paper's Section II-C calls out — is that the
store holds a potentially huge number of partial embeddings, and every
insertion/eviction has to walk and update it.

The reproduction keeps the same structure: query edges are processed in
increasing ``time_rank`` order; level ``k`` of the store holds every
partial embedding that matches the first ``k`` ranked edges with
non-decreasing timestamps.  Insertions extend prefixes (and may complete
embeddings); deletions prune every stored prefix that used the removed
edge.  ``stats.stored_partials`` exposes the memory-cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.results import Embedding
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryEdge, QueryGraph
from repro.utils.validation import QueryError


@dataclass
class LiTCSStats:
    """Work / memory counters for the match-store tree."""

    edges_processed: int = 0
    stored_partials: int = 0
    peak_stored_partials: int = 0
    extensions_attempted: int = 0
    embeddings: int = 0


@dataclass
class _Partial:
    """A partial embedding matching the first ``depth`` ranked query edges."""

    depth: int
    node_map: dict[int, int]
    edge_map: dict[int, int]
    last_timestamp: float


class LiTCSMatcher:
    """Incremental time-constrained isomorphism with a match-store tree."""

    def __init__(self, query: QueryGraph, match_def: MatchDefinition | None = None,
                 strict: bool = False) -> None:
        query.validate()
        self.query = query
        self.match_def = match_def or DefaultMatchDefinition()
        self.strict = strict
        self.graph = DynamicGraph()
        self.stats = LiTCSStats()
        # Temporal plan: query edges sorted by time_rank (unranked edges last,
        # by index, with no temporal constraint between them).
        ranked = sorted(
            query.edges(),
            key=lambda e: (e.time_rank if e.time_rank is not None else float("inf"), e.index),
        )
        if not ranked:
            raise QueryError("time-constrained matching needs at least one query edge")
        self._plan: list[QueryEdge] = ranked
        #: store[k] = partial embeddings that matched plan[0..k-1]
        self._store: dict[int, list[_Partial]] = {k: [] for k in range(1, len(ranked))}

    # ------------------------------------------------------------------ helpers
    def _timestamps_ok(self, previous: float, current: float, prev_edge: QueryEdge,
                       cur_edge: QueryEdge) -> bool:
        if prev_edge.time_rank is None or cur_edge.time_rank is None:
            return True
        if prev_edge.time_rank == cur_edge.time_rank:
            return True
        if self.strict:
            return previous < current
        return previous <= current

    def _compatible(self, partial_nodes: dict[int, int], q_edge: QueryEdge, src: int, dst: int) -> bool:
        for query_node, vertex in ((q_edge.src, src), (q_edge.dst, dst)):
            bound = partial_nodes.get(query_node)
            if bound is not None and bound != vertex:
                return False
            if bound is None and self.match_def.injective and vertex in partial_nodes.values():
                return False
        if q_edge.src == q_edge.dst and src != dst:
            return False
        return True

    def _count_store(self) -> int:
        return sum(len(v) for v in self._store.values())

    # ------------------------------------------------------------------ streaming API
    def insert_edge(self, src: int, dst: int, label: int = 0, timestamp: float = 0.0,
                    src_label: int = 0, dst_label: int = 0) -> list[Embedding]:
        """Insert one timestamped edge, extend stored prefixes, return completions."""
        self.stats.edges_processed += 1
        edge_id = self.graph.add_edge(src, dst, label, timestamp, src_label, dst_label)
        record = self.graph.edge(edge_id)
        completed: list[Embedding] = []
        new_partials: list[_Partial] = []

        plan = self._plan
        # The new edge may serve as the match of plan position k for existing
        # prefixes of depth k, and as a fresh prefix at position 0.
        for depth in range(len(plan)):
            q_edge = plan[depth]
            self.stats.extensions_attempted += 1
            if not self.match_def.edge_matcher(self.query, self.graph, q_edge, record):
                continue
            if depth == 0:
                base_partials = [_Partial(0, {}, {}, float("-inf"))]
            else:
                base_partials = self._store[depth]
            for partial in base_partials:
                self.stats.extensions_attempted += 1
                if not self._timestamps_ok(partial.last_timestamp, timestamp,
                                           plan[depth - 1] if depth else q_edge, q_edge):
                    continue
                if not self._compatible(partial.node_map, q_edge, src, dst):
                    continue
                if self.match_def.injective and edge_id in partial.edge_map.values():
                    continue
                node_map = dict(partial.node_map)
                node_map[q_edge.src] = src
                node_map[q_edge.dst] = dst
                edge_map = dict(partial.edge_map)
                edge_map[q_edge.index] = edge_id
                extended = _Partial(depth + 1, node_map, edge_map, timestamp)
                if extended.depth == len(plan):
                    completed.append(
                        Embedding.build(node_map, edge_map, start_edge=q_edge.index)
                    )
                else:
                    new_partials.append(extended)

        for partial in new_partials:
            self._store[partial.depth].append(partial)
        self.stats.stored_partials = self._count_store()
        self.stats.peak_stored_partials = max(self.stats.peak_stored_partials,
                                              self.stats.stored_partials)
        self.stats.embeddings += len(completed)
        return completed

    def delete_edge(self, src: int, dst: int, label: int = 0) -> int:
        """Delete the oldest live instance of the triple; prune stored prefixes.

        Returns the number of partial embeddings evicted from the store.
        """
        self.stats.edges_processed += 1
        ids = self.graph.find_edges(src, dst, label)
        if not ids:
            raise QueryError(f"LiTCS: no live edge ({src}, {dst}, {label}) to delete")
        oldest = min(ids, key=lambda eid: self.graph.edge(eid).timestamp)
        self.graph.delete_edge(oldest)
        evicted = 0
        for depth, partials in self._store.items():
            kept = [p for p in partials if oldest not in p.edge_map.values()]
            evicted += len(partials) - len(kept)
            self._store[depth] = kept
        self.stats.stored_partials = self._count_store()
        return evicted

    def insert_batch(self, events) -> list[Embedding]:
        """Process (src, dst, label, timestamp[, src_label, dst_label]) tuples sequentially."""
        out: list[Embedding] = []
        for item in events:
            out.extend(self.insert_edge(*item))
        return out
