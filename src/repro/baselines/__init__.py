"""Baseline systems used in the paper's evaluation.

These are independent re-implementations of the comparison points —
deliberately *not* built on the Mnemonic engine — so the benchmark
comparisons exercise genuinely different code paths:

* :class:`repro.baselines.ceci.CECIMatcher` — a static, query-centric
  compact candidate index rebuilt from scratch for every snapshot
  (Figure 11, Observation #1 of Section IV);
* :class:`repro.baselines.turboflux.TurboFluxMatcher` — an incremental,
  data-centric matcher that processes one edge at a time, collapses
  parallel edges, and re-traverses the affected region per edge
  (Figures 6, 9, 14 and Table II);
* :class:`repro.baselines.bigjoin.BigJoinMatcher` — a node-at-a-time
  binding join with label-only filters (Table II);
* :class:`repro.baselines.li_tcs.LiTCSMatcher` — time-constrained
  matching with a match-store tree of partially materialised embeddings
  (Figure 16).
"""

from repro.baselines.bigjoin import BigJoinMatcher
from repro.baselines.ceci import CECIMatcher
from repro.baselines.li_tcs import LiTCSMatcher
from repro.baselines.turboflux import TurboFluxMatcher

__all__ = [
    "CECIMatcher",
    "TurboFluxMatcher",
    "BigJoinMatcher",
    "LiTCSMatcher",
]
