"""BigJoin-style baseline: node-at-a-time binding joins with label-only filters.

BigJoin (Ammar et al., VLDB'18) evaluates subgraph queries as a
worst-case-optimal multi-way join: partial matches are extended one
query *node* at a time, and the candidate set for the next node is the
intersection of the neighbourhoods of its already-bound query
neighbours.  The crucial difference from Mnemonic that the paper calls
out (Section II-C) is that expansion is driven only by node/edge label
filters and adjacency — there is no query-topology index such as DEBI to
prune candidates before expansion.  Intersections make it strong on
small dense queries (cliques, Table II) and weak on larger / sparser
queries where intermediate results explode.

The baseline operates on streaming insertions in the standard
delta-join fashion: for a batch of new edges, each new edge is pinned
onto each query edge it label-matches and the rest of the query is
joined against the *current* graph; edges of the same batch that arrive
later in the batch order are excluded from earlier deltas so each new
embedding is produced exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.results import Embedding
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryEdge, QueryGraph


@dataclass
class BigJoinStats:
    """Join work counters (intermediate result sizes drive the Table II shape)."""

    deltas_processed: int = 0
    intermediate_results: int = 0
    intersections: int = 0
    embeddings: int = 0


class BigJoinMatcher:
    """Delta binding join over a streaming graph (homomorphism by default)."""

    def __init__(self, query: QueryGraph, match_def: MatchDefinition | None = None) -> None:
        query.validate()
        self.query = query
        self.match_def = match_def or DefaultMatchDefinition()
        self.graph = DynamicGraph()
        self.stats = BigJoinStats()
        #: join order: query nodes ordered greedily by connectivity to the prefix
        self._node_order = self._make_node_order()

    def _make_node_order(self) -> list[int]:
        nodes = sorted(self.query.nodes(), key=lambda u: -self.query.degree(u))
        order = [nodes[0]]
        remaining = set(nodes[1:])
        while remaining:
            # Prefer the node with the most edges into the already-ordered prefix.
            best = max(
                remaining,
                key=lambda u: (
                    sum(1 for e in self.query.incident_edges(u) if e.other(u) in order),
                    self.query.degree(u),
                ),
            )
            order.append(best)
            remaining.remove(best)
        return order

    # ------------------------------------------------------------------ streaming API
    def insert_batch(self, triples) -> list[Embedding]:
        """Insert (src, dst, label[, timestamp[, src_label, dst_label]]) edges, return new embeddings.

        Each edge of the batch is added to the graph first; the delta join
        for the i-th edge then excludes edges i+1.. of the same batch so no
        embedding is missed.  Deltas are node-level: when parallel edges
        provide alternative witnesses, the same node mapping may be reported
        by more than one delta (this baseline has no multigraph context —
        one of the deficiencies the paper's comparison highlights).
        """
        new_ids = [self.graph.add_edge(*item) for item in triples]
        new_rank = {eid: rank for rank, eid in enumerate(new_ids)}
        out: list[Embedding] = []
        for rank, eid in enumerate(new_ids):
            out.extend(self._delta_join(eid, rank, new_rank))
        self.stats.embeddings += len(out)
        return out

    # ------------------------------------------------------------------ delta join
    def _delta_join(self, edge_id: int, rank: int, new_rank: dict[int, int]) -> list[Embedding]:
        self.stats.deltas_processed += 1
        record = self.graph.edge(edge_id)
        results: list[Embedding] = []
        seen: set[tuple] = set()
        for q_edge in self.query.edges():
            if not self.match_def.edge_matcher(self.query, self.graph, q_edge, record):
                continue
            node_map = {q_edge.src: record.src}
            if q_edge.dst in node_map and node_map[q_edge.dst] != record.dst:
                continue
            node_map[q_edge.dst] = record.dst
            if self.match_def.injective and q_edge.src != q_edge.dst and record.src == record.dst:
                continue
            order = [u for u in self._node_order if u not in node_map]
            self._extend(order, 0, node_map, rank, new_rank, q_edge, edge_id, results, seen)
        return results

    def _edge_allowed(self, eid: int, rank: int, new_rank: dict[int, int]) -> bool:
        """Edges later in the current batch are excluded from this delta."""
        other = new_rank.get(eid)
        return other is None or other <= rank

    def _candidates_for(self, node: int, node_map: dict[int, int], rank: int,
                        new_rank: dict[int, int]) -> set[int] | None:
        """Intersect the label-filtered neighbourhoods of all bound query neighbours."""
        candidate_set: set[int] | None = None
        bound_edges = [
            e for e in self.query.incident_edges(node) if e.other(node) in node_map
        ]
        if not bound_edges:
            return None
        for q_edge in bound_edges:
            anchor = q_edge.other(node)
            anchor_vertex = node_map[anchor]
            pool = (
                self.graph.out_edges(anchor_vertex)
                if q_edge.src == anchor
                else self.graph.in_edges(anchor_vertex)
            )
            members: set[int] = set()
            for eid in pool:
                if not self._edge_allowed(eid, rank, new_rank):
                    continue
                rec = self.graph.edge(eid)
                if not self.match_def.edge_matcher(self.query, self.graph, q_edge, rec):
                    continue
                members.add(rec.dst if q_edge.src == anchor else rec.src)
            self.stats.intersections += 1
            candidate_set = members if candidate_set is None else candidate_set & members
            if not candidate_set:
                return set()
        return candidate_set

    def _extend(self, order: list[int], position: int, node_map: dict[int, int], rank: int,
                new_rank: dict[int, int], start_edge: QueryEdge, start_edge_id: int,
                results: list[Embedding], seen: set[tuple]) -> None:
        if position == len(order):
            key = tuple(sorted(node_map.items()))
            if key in seen:
                return
            seen.add(key)
            results.append(
                Embedding.build(node_map, {start_edge.index: start_edge_id}, start_edge.index)
            )
            return
        node = order[position]
        candidates = self._candidates_for(node, node_map, rank, new_rank)
        if candidates is None:
            # Disconnected prefix should not occur for connected queries; be safe.
            return
        for vertex in candidates:
            self.stats.intermediate_results += 1
            if self.match_def.injective and vertex in node_map.values():
                continue
            node_map[node] = vertex
            self._extend(order, position + 1, node_map, rank, new_rank, start_edge,
                         start_edge_id, results, seen)
            del node_map[node]
