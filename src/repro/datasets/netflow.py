"""Synthetic NetFlow-like stream (insert-only, power-law, multi-edge).

The paper's NetFlow dataset is an anonymised backbone trace: 18.5M
(source, destination, protocol) triplets, a single node type, 8 edge
labels, no deletions, and a heavy-tailed degree distribution (the paper
attributes enumeration load imbalance to its power-law nature).

The generator uses a preferential-attachment endpoint sampler so a small
number of hosts concentrate most of the traffic, draws protocols from a
skewed categorical distribution, and emits repeated (parallel) flows
between popular host pairs — the multigraph property Mnemonic's DEBI is
designed around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streams.events import StreamEvent
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class NetFlowConfig:
    """Shape of the synthetic flow stream."""

    num_events: int = 20_000
    num_hosts: int = 2_000
    num_protocols: int = 8
    #: preferential-attachment strength; 0 = uniform endpoints, 1 = strongly skewed
    attachment: float = 0.75
    #: probability that an event repeats a recently seen host pair (parallel edges)
    repeat_probability: float = 0.15
    seed: int = 7

    def __post_init__(self) -> None:
        check_positive(self.num_events, "num_events")
        check_positive(self.num_hosts, "num_hosts")
        check_positive(self.num_protocols, "num_protocols")
        check_probability(self.attachment, "attachment")
        check_probability(self.repeat_probability, "repeat_probability")


def _protocol_weights(num_protocols: int) -> np.ndarray:
    # Zipf-like protocol popularity (TCP/UDP dominate real traces).
    weights = 1.0 / np.arange(1, num_protocols + 1)
    return weights / weights.sum()


def generate_netflow_stream(config: NetFlowConfig | None = None) -> list[StreamEvent]:
    """Generate an insert-only flow event stream.

    Every host has node label 0 (single node type); edge labels are the
    protocol ids.  Timestamps increase by one per event so the stream can
    also be replayed through a sliding window if needed.
    """
    config = config or NetFlowConfig()
    rng = make_rng(config.seed)
    weights = _protocol_weights(config.num_protocols)

    degree = np.ones(config.num_hosts, dtype=np.float64)
    events: list[StreamEvent] = []
    recent_pairs: list[tuple[int, int]] = []

    def sample_host() -> int:
        if rng.random() < config.attachment:
            p = degree / degree.sum()
            return int(rng.choice(config.num_hosts, p=p))
        return int(rng.integers(config.num_hosts))

    for i in range(config.num_events):
        if recent_pairs and rng.random() < config.repeat_probability:
            src, dst = recent_pairs[int(rng.integers(len(recent_pairs)))]
        else:
            src = sample_host()
            dst = sample_host()
            while dst == src:
                dst = int(rng.integers(config.num_hosts))
            recent_pairs.append((src, dst))
            if len(recent_pairs) > 4096:
                recent_pairs.pop(0)
        protocol = int(rng.choice(config.num_protocols, p=weights))
        degree[src] += 1.0
        degree[dst] += 1.0
        events.append(
            StreamEvent.insert(src, dst, label=protocol, timestamp=float(i),
                               src_label=0, dst_label=0)
        )
    return events
