"""Synthetic LSBench-like stream (insert + delete, random topology, 45 labels).

LSBench simulates RDF social-network activity: the paper streams 23.3M
triplets of which the first ~90% are insertions and 10% of the remaining
tail are deletions of randomly chosen earlier edges, encoded on the wire
by negating both endpoints.  The topology is close to random (the paper
uses this to explain why the speedup over TurboFlux is smaller than on
the power-law NetFlow trace).

The generator reproduces that grammar: a uniform-random insertion
prefix, then a mixed tail where each event is a deletion of a random
still-live earlier edge with probability ``delete_fraction``.  The
stream is returned as decoded :class:`StreamEvent` objects; use
``encode_lsbench_triple`` to obtain the on-the-wire format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streams.events import StreamEvent
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class LSBenchConfig:
    """Shape of the synthetic RDF-activity stream."""

    num_events: int = 20_000
    num_users: int = 2_500
    num_activity_labels: int = 45
    #: fraction of the stream that forms the insert-only prefix
    prefix_fraction: float = 0.9
    #: probability that a tail event deletes an earlier edge
    delete_fraction: float = 0.10
    seed: int = 11

    def __post_init__(self) -> None:
        check_positive(self.num_events, "num_events")
        check_positive(self.num_users, "num_users")
        check_positive(self.num_activity_labels, "num_activity_labels")
        check_probability(self.prefix_fraction, "prefix_fraction")
        check_probability(self.delete_fraction, "delete_fraction")


def generate_lsbench_stream(config: LSBenchConfig | None = None) -> list[StreamEvent]:
    """Generate the mixed insertion/deletion activity stream."""
    config = config or LSBenchConfig()
    rng = make_rng(config.seed)
    prefix_len = int(config.num_events * config.prefix_fraction)

    events: list[StreamEvent] = []
    live: list[tuple[int, int, int]] = []

    def random_insert(i: int) -> StreamEvent:
        src = int(rng.integers(config.num_users))
        dst = int(rng.integers(config.num_users))
        while dst == src:
            dst = int(rng.integers(config.num_users))
        label = int(rng.integers(config.num_activity_labels))
        live.append((src, dst, label))
        return StreamEvent.insert(src, dst, label=label, timestamp=float(i),
                                  src_label=0, dst_label=0)

    for i in range(prefix_len):
        events.append(random_insert(i))

    for i in range(prefix_len, config.num_events):
        if live and rng.random() < config.delete_fraction:
            idx = int(rng.integers(len(live)))
            src, dst, label = live.pop(idx)
            events.append(StreamEvent.delete(src, dst, label=label, timestamp=float(i)))
        else:
            events.append(random_insert(i))
    return events
