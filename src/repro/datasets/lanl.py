"""Synthetic LANL-like stream (timestamped host/network events, 6 node types, 3 edge labels).

The LANL "unified host and network" dataset interleaves authentication,
process and flow events between typed entities (users, hosts, processes,
...).  The paper uses the first 3 days of events with a 24-hour sliding
window, and extracts *timestamped* queries from the data graph so the
temporal experiments (Figures 10, 15, 16, 17 and Table III) have a
meaningful time axis.

The generator emits events with monotonically non-decreasing timestamps
over ``num_days`` synthetic days, a diurnal rate modulation (more events
during "working hours"), six node types and three edge labels, and a
small set of recurring communication pairs so sliding windows repeatedly
create and destroy matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streams.events import StreamEvent
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

#: seconds per synthetic day (scaled down so experiments stay fast)
DAY = 24.0 * 60.0


@dataclass
class LANLConfig:
    """Shape of the synthetic host/network event stream."""

    num_events: int = 30_000
    num_entities: int = 1_500
    num_node_types: int = 6
    num_edge_labels: int = 3
    num_days: float = 3.0
    #: fraction of events drawn from a recurring set of (src, dst) pairs
    recurrence: float = 0.3
    seed: int = 23

    def __post_init__(self) -> None:
        check_positive(self.num_events, "num_events")
        check_positive(self.num_entities, "num_entities")
        check_positive(self.num_node_types, "num_node_types")
        check_positive(self.num_edge_labels, "num_edge_labels")
        check_positive(self.num_days, "num_days")


def _diurnal_timestamps(config: LANLConfig, rng) -> np.ndarray:
    """Non-decreasing timestamps whose density follows a day/night cycle."""
    horizon = config.num_days * DAY
    # Sample raw times with a sinusoidal acceptance profile, then sort.
    raw = rng.uniform(0.0, horizon, size=config.num_events * 2)
    phase = (raw % DAY) / DAY
    accept_prob = 0.35 + 0.65 * np.clip(np.sin(np.pi * phase), 0.0, None)
    keep = raw[rng.random(raw.shape[0]) < accept_prob]
    if keep.shape[0] < config.num_events:
        extra = rng.uniform(0.0, horizon, size=config.num_events - keep.shape[0])
        keep = np.concatenate([keep, extra])
    keep = np.sort(keep[: config.num_events])
    return keep


def generate_lanl_stream(config: LANLConfig | None = None) -> list[StreamEvent]:
    """Generate the timestamped, insert-only event stream (windowing adds deletions)."""
    config = config or LANLConfig()
    rng = make_rng(config.seed)
    timestamps = _diurnal_timestamps(config, rng)

    node_types = rng.integers(config.num_node_types, size=config.num_entities)
    num_recurring = max(8, config.num_entities // 20)
    recurring_pairs = [
        (int(rng.integers(config.num_entities)), int(rng.integers(config.num_entities)))
        for _ in range(num_recurring)
    ]
    recurring_pairs = [(s, d) for s, d in recurring_pairs if s != d] or [(0, 1)]

    events: list[StreamEvent] = []
    for i in range(config.num_events):
        if rng.random() < config.recurrence:
            src, dst = recurring_pairs[int(rng.integers(len(recurring_pairs)))]
        else:
            src = int(rng.integers(config.num_entities))
            dst = int(rng.integers(config.num_entities))
            while dst == src:
                dst = int(rng.integers(config.num_entities))
        label = int(rng.integers(config.num_edge_labels))
        events.append(
            StreamEvent.insert(
                src, dst, label=label, timestamp=float(timestamps[i]),
                src_label=int(node_types[src]), dst_label=int(node_types[dst]),
            )
        )
    return events
