"""Query workload construction over the synthetic datasets.

The paper generates 100 tree queries of sizes 3/6/9/12 and 100 cyclic
queries of sizes 6/9/12 by extracting connected subgraphs from each data
graph (TurboFlux's methodology), plus, for LANL, timestamped queries for
the temporal experiments.  This module glues the dataset generators to
:class:`repro.query.QueryGenerator`: build the data graph from a stream
prefix, then sample the workload from it (so every query is guaranteed
to have at least one embedding somewhere in the stream).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graph.adjacency import DynamicGraph
from repro.query.generator import QueryGenerator, QueryWorkload
from repro.streams.events import EventKind, StreamEvent


def graph_from_events(events: Iterable[StreamEvent]) -> DynamicGraph:
    """Materialise a :class:`DynamicGraph` by applying a stream of events in order."""
    graph = DynamicGraph()
    for event in events:
        if event.kind is EventKind.INSERT:
            graph.add_edge(event.src, event.dst, event.label, event.timestamp,
                           src_label=event.src_label, dst_label=event.dst_label)
        else:
            graph.delete_edge_instance(event.src, event.dst, event.label)
    return graph


def build_query_workload(
    events: Sequence[StreamEvent],
    tree_sizes: tuple[int, ...] = (3, 6, 9, 12),
    graph_sizes: tuple[int, ...] = (6, 9, 12),
    queries_per_suite: int = 3,
    with_timestamps: bool = False,
    prefix: int | None = None,
    seed: int = 0,
) -> QueryWorkload:
    """Extract the T_k / G_k workload from the graph induced by a stream prefix.

    Parameters
    ----------
    events:
        The full stream; only the first ``prefix`` events (insertions and
        deletions) are applied before sampling.
    prefix:
        Number of events used to build the sampling graph; defaults to the
        whole stream.
    with_timestamps:
        Attach ``time_rank`` values to the query edges (needed by the
        time-constrained isomorphism experiments).
    """
    use = events if prefix is None else events[:prefix]
    graph = graph_from_events(use)
    generator = QueryGenerator(graph, seed=seed)
    return generator.workload(
        tree_sizes=tree_sizes,
        graph_sizes=graph_sizes,
        queries_per_suite=queries_per_suite,
        with_timestamps=with_timestamps,
    )
