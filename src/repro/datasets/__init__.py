"""Synthetic workload generators standing in for the paper's datasets.

The paper evaluates on three real traces that are not redistributable
(CAIDA NetFlow, LSBench RDF streams, LANL host/network events).  Each
generator below produces a *synthetic* stream with the properties the
paper's analysis depends on — stream grammar (insert-only / explicit
deletions / sliding window), label cardinalities, degree distribution,
and timestamp structure — at a laptop-friendly scale.  See DESIGN.md
("Faithfulness notes and deliberate substitutions") for the mapping.
"""

from repro.datasets.lanl import LANLConfig, generate_lanl_stream
from repro.datasets.lsbench import LSBenchConfig, generate_lsbench_stream
from repro.datasets.netflow import NetFlowConfig, generate_netflow_stream
from repro.datasets.queries import build_query_workload, graph_from_events

__all__ = [
    "NetFlowConfig",
    "generate_netflow_stream",
    "LSBenchConfig",
    "generate_lsbench_stream",
    "LANLConfig",
    "generate_lanl_stream",
    "build_query_workload",
    "graph_from_events",
]
