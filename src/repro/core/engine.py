"""The Mnemonic engine: Algorithm 1 of the paper.

:class:`MnemonicEngine` owns the data graph, DEBI, and the per-query
precomputation (query tree, matching orders, masks).  Its main loop
consumes snapshots from a :class:`~repro.streams.SnapshotGenerator`,
applies the batched insertions and deletions, keeps DEBI consistent
through the :class:`~repro.core.filtering.IndexManager`, and enumerates
the newly formed / destroyed embeddings through the user's
:class:`~repro.core.api.MatchDefinition` in parallel.

The engine also implements the system-level capabilities evaluated in
the paper: memory recycling statistics (Figure 17), periodic index
resets, and disk spill of old edges + DEBI rows through
:class:`~repro.graph.external.ExternalEdgeStore` (Table III).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.api import MatchDefinition
from repro.core.enumeration import EnumerationContext
from repro.core.parallel import (
    EnumerationOutcome,
    ParallelConfig,
    PoolOwnerMixin,
    SharedMemoryPool,
)
from repro.core.pipeline import BatchPipeline, CompletedBatch, ingest_latency
from repro.core.registry import QueryRuntime, build_query_runtime
from repro.core.supervisor import FaultPolicy, PoolSupervisor
from repro.core.results import Embedding, ResultSet
from repro.graph.adjacency import DynamicGraph
from repro.graph.external import ExternalEdgeStore
from repro.query.query_graph import QueryGraph
from repro.storage.config import StorageConfig
from repro.storage.runtime import EngineStorage, RecoveredState, StorageError
from repro.streams.broker import producing
from repro.streams.config import StreamConfig
from repro.streams.events import EventKind, StreamEvent
from repro.streams.generator import Snapshot, SnapshotGenerator
from repro.streams.sources import ListSource, StreamSource
from repro.utils.stats import latency_summary
from repro.utils.timers import Timer
from repro.utils.validation import ConfigurationError


@dataclass
class EngineConfig:
    """Engine-level knobs (stream behaviour, parallelism, pruning)."""

    stream: StreamConfig = field(default_factory=StreamConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    #: batch execution mode: "serial" runs every phase to completion before
    #: the next mutation; "pipelined" overlaps batch k+1's mutation/DEBI/
    #: publish work with batch k's pool enumeration (process backend; other
    #: configurations degenerate to serial).  Results are bit-identical.
    pipeline: str = "serial"
    #: apply the f2/f3 label-degree pruning during enumeration
    use_degree_filter: bool = True
    #: recycle edge ids / DEBI rows of deleted edges (Figure 17 "with reclaiming")
    recycle_edge_ids: bool = True
    #: keep embeddings in the per-snapshot results (disable to only count)
    collect_embeddings: bool = True
    #: enumeration kernel: "columnar" runs the arena-backed batched kernel
    #: (falls back per-batch when a custom MatchDefinition overrides the
    #: enumerate/accept hooks); "python" forces the tuple-at-a-time
    #: reference path
    kernel: str = "columnar"
    #: ingest path: "columnar" decodes each batch once into contiguous
    #: columns and applies graph/DEBI/index mutations with vectorized bulk
    #: operations; "per_edge" forces the event-at-a-time reference path.
    #: Both produce bit-identical edge ids, index bits and scan counters.
    ingest: str = "columnar"
    #: durable state: journal + checkpoints + spillable DEBI (None = volatile)
    storage: StorageConfig | None = None
    #: how pool faults are handled: respawn budget, backoff, epoch deadline
    #: (the default policy performs no respawns — a broken pool degrades
    #: straight to the thread backend, the pre-supervisor behaviour)
    fault: FaultPolicy = field(default_factory=FaultPolicy)
    #: number of engine shards (used by :class:`~repro.core.shard_router.
    #: ShardedEngine`; MnemonicEngine ignores it and always runs one)
    shards: int = 1

    def __post_init__(self) -> None:
        if self.kernel not in ("columnar", "python"):
            raise ConfigurationError(
                f"unknown enumeration kernel {self.kernel!r}; "
                "expected 'columnar' or 'python'"
            )
        if self.ingest not in ("columnar", "per_edge"):
            raise ConfigurationError(
                f"unknown ingest path {self.ingest!r}; "
                "expected 'columnar' or 'per_edge'"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")


@dataclass
class SnapshotResult:
    """What the engine produced for one snapshot."""

    number: int
    num_insertions: int
    num_deletions: int
    positive_embeddings: list[Embedding] = field(default_factory=list)
    negative_embeddings: list[Embedding] = field(default_factory=list)
    num_positive: int = 0
    num_negative: int = 0
    #: (edge, column) evaluations spent updating DEBI for this snapshot
    filter_traversals: int = 0
    #: candidate edges inspected by enumeration (regression-tracked metric)
    candidates_scanned: int = 0
    #: work units enumerated
    work_units: int = 0
    graph_update_seconds: float = 0.0
    filter_seconds: float = 0.0
    enumerate_seconds: float = 0.0
    #: worker statistics of the enumeration phase (Figure 7 / 13)
    enumeration_outcomes: list[EnumerationOutcome] = field(default_factory=list)
    #: graph / index footprint after the snapshot
    live_edges: int = 0
    edge_placeholders: int = 0
    debi_bits: int = 0
    #: end-to-end latency (stream clock): first event arrival -> results
    #: available.  None when the stream carried no arrival stamps (plain
    #: list replays); only broker-fed runs and the service facade fill it.
    ingest_latency_seconds: float | None = None

    @property
    def total_seconds(self) -> float:
        return self.graph_update_seconds + self.filter_seconds + self.enumerate_seconds

    @property
    def total_embeddings(self) -> int:
        return self.num_positive + self.num_negative


@dataclass
class RunResult:
    """Aggregated output of a full streaming run."""

    snapshots: list[SnapshotResult] = field(default_factory=list)

    def add(self, snapshot: SnapshotResult) -> None:
        self.snapshots.append(snapshot)

    @property
    def total_positive(self) -> int:
        return sum(s.num_positive for s in self.snapshots)

    @property
    def total_negative(self) -> int:
        return sum(s.num_negative for s in self.snapshots)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.snapshots)

    @property
    def total_filter_traversals(self) -> int:
        return sum(s.filter_traversals for s in self.snapshots)

    @property
    def total_graph_update_seconds(self) -> float:
        return sum(s.graph_update_seconds for s in self.snapshots)

    @property
    def total_filter_seconds(self) -> float:
        return sum(s.filter_seconds for s in self.snapshots)

    @property
    def total_enumerate_seconds(self) -> float:
        return sum(s.enumerate_seconds for s in self.snapshots)

    def phase_split(self) -> dict[str, float]:
        """CPU split of the run by pipeline phase (the Figure 7 breakdown).

        ``update`` is graph mutation + deletion resolution, ``filter`` the
        DEBI/index maintenance, ``enumerate`` the embedding search wall
        time (which, on the pool backend, includes snapshot publication —
        see the pool's ``publish_stats`` for that share).
        """
        return {
            "update_seconds": self.total_graph_update_seconds,
            "filter_seconds": self.total_filter_seconds,
            "enumerate_seconds": self.total_enumerate_seconds,
        }

    @property
    def total_candidates_scanned(self) -> int:
        return sum(s.candidates_scanned for s in self.snapshots)

    def snapshot_latencies(self) -> list[float]:
        """Per-snapshot ingest-to-result latencies, where known (stream order)."""
        return [
            s.ingest_latency_seconds
            for s in self.snapshots
            if s.ingest_latency_seconds is not None
        ]

    def latency_summary(self) -> dict[str, float] | None:
        """count/mean/p50/p95/p99/max rollup of the snapshot latencies.

        None when no snapshot carried latency data (plain list replays
        have no arrival stamps to measure from).
        """
        return latency_summary(self.snapshot_latencies())

    def all_positive(self) -> list[Embedding]:
        return [e for s in self.snapshots for e in s.positive_embeddings]

    def all_negative(self) -> list[Embedding]:
        return [e for s in self.snapshots for e in s.negative_embeddings]

    def net_result_set(self) -> ResultSet:
        """Positive embeddings minus the ones later destroyed (by node/edge identity)."""
        destroyed = {
            (e.node_map, e.edge_map) for e in self.all_negative()
        }
        net = ResultSet()
        for e in self.all_positive():
            if (e.node_map, e.edge_map) not in destroyed:
                net.add(e)
        return net


class MnemonicEngine(PoolOwnerMixin):
    """A programmable, incremental subgraph matching engine for streaming graphs.

    The per-batch loop itself lives in
    :class:`~repro.core.pipeline.BatchPipeline` (shared with the
    multi-query engine); this class owns the single-query runtime, the
    worker pool and the external-memory support, and supplies them to
    the pipeline through the host hooks.
    """

    def __init__(
        self,
        query: QueryGraph,
        match_def: MatchDefinition | None = None,
        config: EngineConfig | None = None,
        graph: DynamicGraph | None = None,
        root: int | None = None,
        _recovered: RecoveredState | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        if (
            self.config.storage is not None
            and self.config.stream.in_memory_window is not None
        ):
            raise ConfigurationError(
                "config.storage and stream.in_memory_window are mutually "
                "exclusive: the spillable DEBI replaces the legacy external "
                "edge store (set storage.debi_hot_rows instead)"
            )
        self.graph = graph or DynamicGraph(recycle_edge_ids=self.config.recycle_edge_ids)

        # --- InitializeIndex: preprocessing / hyper-parameter selection.
        # The per-query half (tree, orders, masks, DEBI, index manager) is the
        # same bundle the multi-query registry builds per standing query; a
        # pre-populated graph is indexed inside the builder.  On the recovery
        # path (``open``) the index rebuild is skipped: DEBI content is about
        # to be restored verbatim from the checkpoint buffers.
        self.runtime = build_query_runtime(
            query, match_def, self.graph,
            use_degree_filter=self.config.use_degree_filter, root=root,
            rebuild_index=_recovered is None, kernel=self.config.kernel,
        )
        self.query = query
        self.match_def = self.runtime.match_def
        self.tree = self.runtime.tree
        self.orders = self.runtime.orders
        self.masks = self.runtime.masks
        self.debi = self.runtime.debi
        self.index_manager = self.runtime.index_manager

        # --- external-memory support (Table III)
        self.external_store: ExternalEdgeStore | None = None
        self._spilled_edge_ids: set[int] = set()
        self._insertion_order: deque[int] = deque()
        self._fetched_vertices: set[int] = set()
        if self.config.stream.in_memory_window is not None:
            self.external_store = ExternalEdgeStore(
                in_memory_window=self.config.stream.in_memory_window
            )

        # --- durable state (journal + checkpoints + spillable DEBI).
        # The DEBI swap happens before the pool spawns so every later
        # buffer export reads through the tiered matrix.
        self._storage: EngineStorage | None = None
        self.recovery_info: dict | None = None
        if self.config.storage is not None:
            if _recovered is not None:
                self._storage = _recovered.storage
            else:
                self._storage = EngineStorage.create(self.config.storage, kind="single")
            if self.config.storage.debi_hot_rows is not None:
                self.debi.enable_spill(
                    self._storage.debi_directory(0),
                    hot_rows=self.config.storage.debi_hot_rows,
                    segment_rows=self.config.storage.debi_segment_rows,
                )

        self.timer = Timer()
        self._snapshot_counter = 0
        #: end-of-batch footprints captured at mutation time (pipelined runs
        #: may drain a batch's enumeration only after later mutations)
        self._footprints: dict[int, tuple[int, int, int]] = {}
        #: epochs published by pools released earlier in this engine's life
        self._exports_before_pool = 0

        # --- persistent parallel enumeration pool (process backend).
        # Spawned once per engine lifetime; each batch republishes the
        # snapshot into shared memory instead of re-forking workers.  The
        # supervisor owns respawn/degradation policy across that lifetime.
        self.query_state = self.runtime.query_state
        # With an external edge store every context carries spill callbacks
        # the pool cannot ship across processes, so the pool would never be
        # used — don't spawn idle workers for that configuration.
        self._supervisor = PoolSupervisor(
            self.config.fault,
            None
            if self.external_store is not None
            else (lambda: SharedMemoryPool.create(self.query_state, self.config.parallel)),
        )
        self._adopt_pool(self._supervisor.spawn())

        # --- the shared batch-execution loop (serial or pipelined).
        self._pipeline = BatchPipeline(
            self, mode=self.config.pipeline, fallback="fork"
        )

        # A fresh durable engine writes "checkpoint 0" immediately: recovery
        # then always has a base image carrying the query definition, even
        # before the first periodic checkpoint.
        if self._storage is not None and _recovered is None:
            self._storage.checkpoint_now(self._checkpoint_state)

    # ------------------------------------------------------------------ recovery
    @classmethod
    def open(cls, directory, config: EngineConfig | None = None) -> "MnemonicEngine":
        """Recover a durable engine from ``directory``.

        Loads the newest usable checkpoint, replays the journal tail up to
        the last sealed epoch (mutations only — no results are re-emitted),
        truncates any corrupt tail and reopens the journal for appends.
        ``engine.recovery_info`` reports what happened; clients refeed the
        stream from ``recovery_info["last_sealed_number"] + 1``.
        """
        from dataclasses import replace

        config = config or EngineConfig()
        storage_cfg = config.storage or StorageConfig(directory=directory)
        config = replace(config, storage=replace(storage_cfg, directory=directory))
        assert config.storage is not None
        recovered = EngineStorage.open_existing(config.storage, kind="single")
        # open_existing may fold persisted cold-tier geometry into the config.
        config = replace(config, storage=recovered.storage.config)
        state = recovered.checkpoint_state
        engine = cls(
            state["query"], match_def=state["match_def"], config=config,
            graph=state["graph"], root=state["root"], _recovered=recovered,
        )
        engine.debi.restore_buffers(**state["debi"])
        engine._snapshot_counter = state["snapshot_counter"]
        engine._replay_journal(recovered)
        recovered.storage.finish_recovery(recovered.info["journal_valid_bytes"])
        # Re-checkpoint the recovered state: the next restart replays from
        # here instead of walking the whole journal tail again.
        recovered.storage.checkpoint_now(engine._checkpoint_state)
        engine.recovery_info = recovered.info
        return engine

    def _replay_journal(self, recovered: RecoveredState) -> None:
        from repro.storage.journal import RecordKind
        from repro.storage.recovery import (
            events_from_tuples,
            replay_epoch,
            replay_insertions,
        )

        slots = {0: self.runtime}
        for record in recovered.records:
            if record.kind is RecordKind.INITIAL:
                replay_insertions(
                    self.graph, slots, events_from_tuples(record.data())
                )
            elif record.kind is RecordKind.EPOCH:
                inserts, deletes = record.data()
                replay_epoch(
                    self.graph, slots,
                    events_from_tuples(inserts), events_from_tuples(deletes),
                )
            else:
                raise StorageError(
                    f"unexpected {record.kind.name} record in a single-query journal"
                )

    def _checkpoint_state(self) -> dict:
        """Snapshot everything ``open`` needs (graph, query, DEBI buffers)."""
        import numpy as np

        buffers = self.debi.export_buffers()
        return {
            "kind": "single",
            "query": self.query,
            "match_def": self.match_def,
            "root": self.tree.root,
            "graph": self.graph,
            "debi": {
                "rows": np.array(buffers["rows"], copy=True),
                "num_rows": buffers["num_rows"],
                "width": buffers["width"],
                "roots": np.array(buffers["roots"], copy=True),
                "root_bits": buffers["root_bits"],
            },
            "snapshot_counter": self._snapshot_counter,
        }

    def checkpoint(self) -> None:
        """Force a checkpoint now (outside a run, or between serial batches)."""
        if self._storage is None:
            raise ConfigurationError("engine has no storage attached")
        self._pipeline.flush()
        if not self._storage.quiescent():
            raise ConfigurationError(
                "checkpoint requires a quiescent engine (every applied batch "
                "delivered); mid-run checkpoints are taken automatically at "
                "sealed epoch boundaries"
            )
        self._storage.checkpoint_now(self._checkpoint_state)

    def storage_counters(self) -> dict:
        """Journal/checkpoint/spill counters (empty without storage)."""
        if self._storage is None:
            return {}
        counters = self._storage.counters()
        spill = self.debi.spill_stats()
        if spill is not None:
            counters.update(spill)
        return counters

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release engine resources (the parallel worker pool, if any).

        Idempotent and exception-safe: the pool reference is dropped
        *before* the shutdown call, so a failure while reaping workers
        can never leave a half-closed pool attached to the engine (a
        retry or garbage collection would then double-close it).
        Engines are also cleaned up on garbage collection, but
        long-lived applications should close explicitly (or use the
        engine as a context manager) so worker processes do not outlive
        their usefulness.
        """
        pipeline = getattr(self, "_pipeline", None)
        if pipeline is not None and self._pool is not None and self._pool.usable:
            # A run abandoned mid-stream may still have dispatched epochs;
            # join them before the segments are unlinked.
            pipeline.flush()
        self._harvest_and_close_pool()
        storage = getattr(self, "_storage", None)
        if storage is not None:
            storage.close()

    def _harvest_and_close_pool(self) -> None:
        """Close the pool(s), folding their epoch counts into the lifetime total.

        Covers both the active pool and any pools the supervisor retired
        after faults (their snapshot exports must stay visible forever).
        """
        pool = self._detach_pool()
        if pool is not None:
            self._exports_before_pool += getattr(pool, "publish_count", 0)
            pool.close()
        self._exports_before_pool += self._supervisor.release_retired()

    def __enter__(self) -> "MnemonicEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except Exception:
            # Teardown trouble must not mask the exception (e.g. a
            # reset_index() failure) that is already unwinding the block.
            if exc_type is None:
                raise

    # ------------------------------------------------------------------ initialisation API
    def initialize_stream(self, source: StreamSource | Sequence[StreamEvent]) -> SnapshotGenerator:
        """Wrap ``source`` in a snapshot generator using the engine's stream config."""
        if isinstance(source, (list, tuple)):
            source = ListSource(source)
        return SnapshotGenerator(source, self.config.stream)

    def load_initial(self, events: Iterable[StreamEvent | tuple]) -> int:
        """Load an initial graph (insertions only) and index it without enumeration.

        The paper's NetFlow experiments load all but the streamed suffix of
        the trace as the initial snapshot; this is the corresponding API.
        Returns the number of edges loaded.
        """
        coerced = [self._coerce_insert(event) for event in events]
        if coerced and self.config.ingest == "columnar" and hasattr(
            self.graph, "apply_insert_columns"
        ):
            from repro.streams.events import EventColumns

            columns = EventColumns.from_events(EventKind.INSERT, coerced)
            new_ids = self.graph.apply_insert_columns(
                columns.src, columns.dst, columns.label, columns.timestamp,
                columns.src_label, columns.dst_label,
            )
            self.pipeline_edges_inserted(new_ids)
            self.index_manager.handle_insert_columns(
                new_ids, columns.src, columns.dst, columns.label
            )
        else:
            new_ids = [self._insert_event(event) for event in coerced]
            self.index_manager.handle_insertions(new_ids)
        if self._storage is not None:
            self._storage.note_initial(coerced)
        return len(new_ids)

    @staticmethod
    def _coerce_insert(event: StreamEvent | tuple) -> StreamEvent:
        if isinstance(event, StreamEvent):
            if event.kind is not EventKind.INSERT:
                raise ConfigurationError("load_initial only accepts insertion events")
            return event
        return StreamEvent.insert(*event)

    # ------------------------------------------------------------------ main loop
    def run(self, source: StreamSource | Sequence[StreamEvent]) -> RunResult:
        """Process the whole stream and return per-snapshot results (Algorithm 1).

        With ``config.pipeline == "pipelined"`` the shared
        :class:`~repro.core.pipeline.BatchPipeline` overlaps batch k+1's
        mutation/DEBI/publish work with batch k's pool enumeration;
        results are identical to the serial mode either way.

        A :class:`~repro.streams.broker.StreamBroker` source is driven
        end to end: its pull-mode producer thread is started (so event
        arrival overlaps mutation *and* enumeration), every snapshot is
        stamped with ingest-to-result latency, and an abandoned run
        stops the producer instead of leaving it blocked on
        backpressure.
        """
        generator = self.initialize_stream(source)
        with producing(source):
            result = RunResult()
            for batch in self._pipeline.run_stream(generator):
                result.add(self._result_from_batch(batch))
            return result

    def process_snapshot(self, snapshot: Snapshot) -> SnapshotResult:
        """Apply one snapshot: insert batch first, then delete batch (serially)."""
        batch = self._pipeline.process_batch(
            snapshot.number, snapshot.insertions, snapshot.deletions
        )
        self.pipeline_batch_applied(batch)
        return self._result_from_batch(batch)

    # ------------------------------------------------------------------ one-shot batches
    def batch_inserts(self, events: Iterable[StreamEvent | tuple]) -> SnapshotResult:
        """Insert a batch of edges and return the newly formed embeddings."""
        events = [self._coerce_insert(e) for e in events]
        batch = self._pipeline.process_batch(self._snapshot_counter, events, [])
        self._snapshot_counter += 1
        if self._storage is not None:
            self._storage.note_applied()
        return self._result_from_batch(batch)

    def batch_deletes(self, events: Iterable[StreamEvent | tuple]) -> SnapshotResult:
        """Delete a batch of edges and return the destroyed (negative) embeddings."""
        coerced = [
            e if isinstance(e, StreamEvent) else StreamEvent.delete(*e) for e in events
        ]
        batch = self._pipeline.process_batch(self._snapshot_counter, [], coerced)
        self._snapshot_counter += 1
        if self._storage is not None:
            self._storage.note_applied()
        return self._result_from_batch(batch)

    def _insert_event(self, event: StreamEvent) -> int:
        edge_id = self.graph.add_edge(
            event.src, event.dst, event.label, event.timestamp,
            src_label=event.src_label, dst_label=event.dst_label,
        )
        self.pipeline_edge_inserted(edge_id)
        return edge_id

    # ------------------------------------------------------------------ pipeline metrics
    @property
    def snapshot_exports(self) -> int:
        """Shared-memory snapshot publications (epochs) over the engine lifetime.

        Includes pools the supervisor already retired after a fault, so
        the count is monotonic across respawns.
        """
        current = self._pool.publish_count if self._pool is not None else 0
        return (
            self._exports_before_pool
            + self._supervisor.retired_publish_count
            + current
        )

    @property
    def enumeration_phases_with_units(self) -> int:
        """Enumeration phases (insert or delete half of a batch) with >= 1 unit."""
        return self._pipeline.enumeration_phases_with_units

    @property
    def pool_enumeration_phases(self) -> int:
        """Phases dispatched to the shared pool — each publishes exactly one epoch."""
        return self._pipeline.pool_enumeration_phases

    # ------------------------------------------------------------------ pipeline host hooks
    def pipeline_slots(self) -> dict[int, QueryRuntime]:
        return {0: self.runtime}

    def pipeline_acquire_pool(self, pipeline: BatchPipeline) -> SharedMemoryPool | None:
        return self._pool

    def pipeline_pool_broken(self) -> SharedMemoryPool | None:
        # Retire the broken pool (killing its workers, so leftover chunks
        # stop burning cores, but keeping its frozen segments alive for
        # redispatch) and let the supervisor respawn under the budget.
        replacement = self._supervisor.replace(self._detach_pool())
        return self._adopt_pool(replacement)

    def pipeline_degraded_backend(self) -> str | None:
        return self._supervisor.degraded_backend()

    def pipeline_recovery_finished(self, redispatched: int, recovered: int) -> None:
        self._supervisor.note_recovery(redispatched, recovered)
        # The retired pools' frozen epochs were all consumed by recovery;
        # release the segments now, keeping their export counts visible.
        self._exports_before_pool += self._supervisor.release_retired()

    def pipeline_thread_backend_failed(self) -> None:
        self._supervisor.thread_backend_failed()

    def fault_stats(self) -> dict[str, object]:
        """Supervision counters: faults, respawns, degradations, level."""
        stats = self._supervisor.stats.as_dict()
        stats["level"] = self._supervisor.level
        return stats

    def pipeline_make_context(
        self,
        runtime: QueryRuntime,
        batch_edge_ids: set[int],
        positive: bool,
        shared_pool_cache: dict | None,
    ) -> EnumerationContext:
        return runtime.make_context(
            self.graph,
            batch_edge_ids,
            positive,
            shared_pool_cache=shared_pool_cache,
            spilled_edge_ids=self._spilled_edge_ids if self.external_store else None,
            on_spilled_access=self._on_spilled_access if self.external_store else None,
        )

    def _make_context(self, batch_edge_ids: set[int], positive: bool) -> EnumerationContext:
        """Build an enumeration context over the live graph for one batch."""
        return self.pipeline_make_context(
            self.runtime, batch_edge_ids, positive, shared_pool_cache=None
        )

    def pipeline_edge_inserted(self, edge_id: int) -> None:
        # A recycled id may belong to a previously spilled edge; it is live again.
        self._spilled_edge_ids.discard(edge_id)
        if self.external_store is not None:
            self._insertion_order.append(edge_id)

    def pipeline_edges_inserted(self, edge_ids) -> None:
        """Bulk :meth:`pipeline_edge_inserted` (columnar ingest path)."""
        if self._spilled_edge_ids:
            self._spilled_edge_ids.difference_update(edge_ids)
        if self.external_store is not None:
            self._insertion_order.extend(edge_ids)

    def pipeline_edge_deleted(self, edge_id: int) -> None:
        self._spilled_edge_ids.discard(edge_id)

    def pipeline_batch_applied(self, batch: CompletedBatch) -> None:
        """All of a batch's mutations are applied (enumeration may still run).

        The end-of-batch footprint is captured *here*, at mutation time:
        in pipelined mode the batch completes (drains) only after later
        batches' mutations, so reading the graph then would misreport.
        """
        self._maybe_spill()
        self._footprints[batch.number] = (
            self.graph.num_edges,
            self.graph.num_placeholders,
            self.debi.total_bits_set(),
        )
        self.graph.stats.sample_snapshot(
            batch.number, self.graph.num_placeholders, self.graph.num_edges
        )
        self._snapshot_counter += 1
        if self._storage is not None:
            self._storage.note_applied()

    # ------------------------------------------------------------------ result assembly
    def _result_from_batch(self, batch: CompletedBatch) -> SnapshotResult:
        """Map a completed pipeline batch onto the engine's result shape."""
        result = SnapshotResult(
            number=batch.number,
            num_insertions=batch.num_insertions,
            num_deletions=batch.num_deletions,
        )
        collect = self.config.collect_embeddings
        for phase in batch.phases():
            query_phase = phase.per_query[0]
            outcome = query_phase.outcome
            result.graph_update_seconds += phase.graph_update_seconds
            result.filter_seconds += query_phase.filter_seconds
            result.enumerate_seconds += phase.enumerate_wall_seconds
            result.filter_traversals += query_phase.filter_traversals
            result.candidates_scanned += query_phase.candidates_scanned
            result.work_units += query_phase.work_units
            result.enumeration_outcomes.append(outcome)
            self._supervisor.record_outcome(outcome)
            if phase.positive:
                result.num_positive += outcome.num_embeddings
                if collect:
                    result.positive_embeddings.extend(outcome.embeddings)
            else:
                result.num_negative += outcome.num_embeddings
                if collect:
                    result.negative_embeddings.extend(outcome.embeddings)
        footprint = self._footprints.pop(batch.number, None)
        if footprint is not None:
            result.live_edges, result.edge_placeholders, result.debi_bits = footprint
        result.ingest_latency_seconds = ingest_latency(batch)
        if self._storage is not None:
            # Seal at *delivery*, in stream order: an epoch enters the journal
            # only once its results reached the client, so recovery replays
            # exactly the delivered prefix and the client refeeds the rest.
            self._storage.seal_epoch(
                batch.number,
                batch.insert_columns or batch.insert_events,
                batch.delete_columns or batch.delete_events,
                self._checkpoint_state,
            )
        return result

    def _on_spilled_access(self, edge_id: int) -> None:
        """Candidate access touched a spilled edge: fetch its vertex's log transaction once."""
        if self.external_store is None:
            return
        record = self.graph.edge(edge_id)
        if record.src in self._fetched_vertices:
            return
        self._fetched_vertices.add(record.src)
        self.external_store.fetch_vertex(record.src)

    def _maybe_spill(self) -> None:
        """Move edges older than the in-memory window to the external store."""
        if self.external_store is None:
            return
        window = self.external_store.in_memory_window
        while len(self._insertion_order) > window:
            edge_id = self._insertion_order.popleft()
            if not self.graph.is_alive(edge_id) or edge_id in self._spilled_edge_ids:
                continue
            record = self.graph.edge(edge_id)
            self.external_store.append(record, self.debi.row(edge_id))
            self._spilled_edge_ids.add(edge_id)
        self._fetched_vertices.clear()

    # ------------------------------------------------------------------ maintenance / metrics
    def reset_index(self) -> None:
        """Periodic reset: rebuild DEBI from the current live graph."""
        self.index_manager.rebuild()

    def index_size_bits(self) -> int:
        """Size of DEBI in bits: |E| x (|V_Q| - 1) + |V| (the paper's formula)."""
        return (
            self.graph.num_placeholders * max(self.tree.num_columns, 1)
            + self.graph.num_vertices
        )

    def memory_report(self) -> dict[str, int]:
        """Footprint summary used by the memory experiments."""
        report = {
            "live_edges": self.graph.num_edges,
            "edge_placeholders": self.graph.num_placeholders,
            "debi_bits_set": self.debi.total_bits_set(),
            "debi_bytes": self.debi.nbytes(),
            "recycled_inserts": self.graph.stats.recycled,
        }
        if self.external_store is not None:
            report["spilled_edges"] = self.external_store.spilled_count
            report["external_bytes"] = self.external_store.stats.bytes_written
        report.update(self.storage_counters())
        return report


# ---------------------------------------------------------------------- convenience
def enumerate_static(
    query: QueryGraph,
    edges: Iterable[StreamEvent | tuple],
    match_def: MatchDefinition | None = None,
    config: EngineConfig | None = None,
) -> list[Embedding]:
    """From-scratch enumeration of a static edge set (reference implementation).

    Inserting every edge as a single batch into a fresh engine enumerates
    every embedding exactly once; tests use this as the ground truth that
    incremental runs are compared against.
    """
    with MnemonicEngine(query, match_def=match_def, config=config) as engine:
        result = engine.batch_inserts(list(edges))
    return result.positive_embeddings
