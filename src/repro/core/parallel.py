"""Parallel enumeration backends.

Embedding enumeration is embarrassingly parallel across work units
(Section VI), so Mnemonic distributes units to workers with a pull-based
scheme: fine-grained units + dynamic pulling give good load balance on
power-law graphs where a few units dominate.

Three backends are provided:

``serial``
    Run units in order on the calling thread (baseline, deterministic).

``thread``
    A pool of Python threads pulling units from a shared queue.  This is
    the faithful reproduction of the paper's OpenMP dynamic scheduling,
    but wall-clock speedup is bounded by the GIL for this pure-Python
    enumerator; the per-worker busy-time statistics (Figure 7) remain
    meaningful because they measure scheduling balance, not the GIL.

``process``
    ``multiprocessing`` workers over a forked copy of the read-only
    snapshot.  Units are chunked to amortise result pickling.  This is
    the backend that shows real multi-core speedup in Python
    (Figure 13); it requires the platform to support ``fork``.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.utils.validation import ConfigurationError, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.enumeration import EnumerationContext, WorkUnit
    from repro.core.results import Embedding


@dataclass
class ParallelConfig:
    """How enumeration work units are executed."""

    backend: str = "serial"
    num_workers: int = 1
    #: units per task for the process backend (amortises IPC overhead)
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "thread", "process"):
            raise ConfigurationError(
                f"backend must be 'serial', 'thread' or 'process', got {self.backend!r}"
            )
        check_positive(self.num_workers, "num_workers")
        check_positive(self.chunk_size, "chunk_size")


@dataclass
class WorkerStats:
    """Per-worker accounting used for Figures 7 and 13."""

    worker_id: int
    units_processed: int = 0
    embeddings_found: int = 0
    busy_seconds: float = 0.0
    #: (start, end) wall-clock intervals during which the worker was busy
    busy_intervals: list[tuple[float, float]] = field(default_factory=list)

    def utilisation(self, wall_seconds: float) -> float:
        """Fraction of ``wall_seconds`` this worker spent processing units."""
        if wall_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / wall_seconds)


@dataclass
class EnumerationOutcome:
    """Embeddings plus scheduling statistics for one parallel enumeration call."""

    embeddings: list
    worker_stats: list[WorkerStats]
    wall_seconds: float

    def mean_utilisation(self) -> float:
        if not self.worker_stats:
            return 0.0
        return sum(w.utilisation(self.wall_seconds) for w in self.worker_stats) / len(
            self.worker_stats
        )


# ---------------------------------------------------------------------- serial backend
def _run_serial(context: "EnumerationContext", units: list["WorkUnit"]) -> EnumerationOutcome:
    stats = WorkerStats(worker_id=0)
    start = time.perf_counter()
    embeddings: list["Embedding"] = []
    for unit in units:
        unit_start = time.perf_counter()
        produced = list(context.match_def.enumerate(context, unit))
        unit_end = time.perf_counter()
        embeddings.extend(produced)
        stats.units_processed += 1
        stats.embeddings_found += len(produced)
        stats.busy_seconds += unit_end - unit_start
        stats.busy_intervals.append((unit_start - start, unit_end - start))
    wall = time.perf_counter() - start
    return EnumerationOutcome(embeddings, [stats], wall)


# ---------------------------------------------------------------------- thread backend
def _run_threads(
    context: "EnumerationContext", units: list["WorkUnit"], num_workers: int
) -> EnumerationOutcome:
    work: "queue.SimpleQueue[WorkUnit | None]" = queue.SimpleQueue()
    for unit in units:
        work.put(unit)
    for _ in range(num_workers):
        work.put(None)

    results: list[list["Embedding"]] = [[] for _ in range(num_workers)]
    stats = [WorkerStats(worker_id=i) for i in range(num_workers)]
    start = time.perf_counter()

    def worker(worker_id: int) -> None:
        local = results[worker_id]
        st = stats[worker_id]
        while True:
            unit = work.get()
            if unit is None:
                return
            unit_start = time.perf_counter()
            produced = list(context.match_def.enumerate(context, unit))
            unit_end = time.perf_counter()
            local.extend(produced)
            st.units_processed += 1
            st.embeddings_found += len(produced)
            st.busy_seconds += unit_end - unit_start
            st.busy_intervals.append((unit_start - start, unit_end - start))

    threads = [threading.Thread(target=worker, args=(i,), daemon=True) for i in range(num_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    embeddings = [e for bucket in results for e in bucket]
    return EnumerationOutcome(embeddings, stats, wall)


# ---------------------------------------------------------------------- process backend
# The forked children inherit this module-level slot; only picklable unit
# chunks travel through the task queue and only embeddings travel back.
_PROCESS_CONTEXT: "EnumerationContext | None" = None


def _process_chunk(chunk: list["WorkUnit"]):
    assert _PROCESS_CONTEXT is not None, "process worker used before context installation"
    context = _PROCESS_CONTEXT
    start = time.perf_counter()
    embeddings: list["Embedding"] = []
    for unit in chunk:
        embeddings.extend(context.match_def.enumerate(context, unit))
    busy = time.perf_counter() - start
    return embeddings, busy, len(chunk), os.getpid()


def _run_processes(
    context: "EnumerationContext",
    units: list["WorkUnit"],
    num_workers: int,
    chunk_size: int,
) -> EnumerationOutcome:
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:
        # No fork on this platform: fall back to the thread backend, which
        # is always available and semantically identical.
        return _run_threads(context, units, num_workers)

    global _PROCESS_CONTEXT
    _PROCESS_CONTEXT = context
    chunks = [units[i : i + chunk_size] for i in range(0, len(units), chunk_size)]
    start = time.perf_counter()
    stats_by_pid: dict[int, WorkerStats] = {}
    embeddings: list["Embedding"] = []
    try:
        if not chunks:
            return EnumerationOutcome([], [], 0.0)
        with ctx.Pool(processes=num_workers) as pool:
            for produced, busy, nunits, pid in pool.imap_unordered(_process_chunk, chunks):
                embeddings.extend(produced)
                st = stats_by_pid.setdefault(pid, WorkerStats(worker_id=pid))
                st.units_processed += nunits
                st.embeddings_found += len(produced)
                st.busy_seconds += busy
    finally:
        _PROCESS_CONTEXT = None
    wall = time.perf_counter() - start
    return EnumerationOutcome(embeddings, list(stats_by_pid.values()), wall)


# ---------------------------------------------------------------------- dispatcher
def run_enumeration(
    context: "EnumerationContext",
    units: Iterable["WorkUnit"],
    config: ParallelConfig,
) -> EnumerationOutcome:
    """Enumerate every unit using the configured backend."""
    unit_list = list(units)
    if not unit_list:
        return EnumerationOutcome([], [], 0.0)
    if config.backend == "serial" or config.num_workers == 1:
        return _run_serial(context, unit_list)
    if config.backend == "thread":
        return _run_threads(context, unit_list, config.num_workers)
    return _run_processes(context, unit_list, config.num_workers, config.chunk_size)
