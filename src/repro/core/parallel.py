"""Parallel enumeration backends.

Embedding enumeration is embarrassingly parallel across work units
(Section VI), so Mnemonic distributes units to workers with a pull-based
scheme: fine-grained units + dynamic pulling give good load balance on
power-law graphs where a few units dominate.

Three backends are provided:

``serial``
    Run units in order on the calling thread (baseline, deterministic).

``thread``
    A pool of Python threads pulling units from a shared queue.  This is
    the faithful reproduction of the paper's OpenMP dynamic scheduling,
    but wall-clock speedup is bounded by the GIL for this pure-Python
    enumerator; the per-worker busy-time statistics (Figure 7) remain
    meaningful because they measure scheduling balance, not the GIL.

``process``
    A *persistent* pool of worker processes over a shared-memory
    snapshot.  The pool is spawned once per engine lifetime; before each
    batch the engine publishes the graph (as flat CSR arrays) and DEBI
    (as raw bit buffers) into a ``multiprocessing.shared_memory``
    segment, and only compact work-unit descriptors and packed embedding
    arrays cross the pipes.  This is the backend that shows real
    multi-core speedup in Python (Figure 13).  When shared memory is
    unavailable the engine falls back to per-batch forked workers, and
    failing that to the thread backend (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import os
import queue
import signal as signal_module
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.shared_snapshot import (
    SharedSnapshotWriter,
    SnapshotAttachment,
    disable_shm_resource_tracking,
    shared_memory_available,
)
from repro.utils import faults as fault_injection
from repro.utils.validation import ConfigurationError, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.enumeration import EnumerationContext, QueryState, WorkUnit
    from repro.core.results import Embedding


@dataclass
class ParallelConfig:
    """How enumeration work units are executed.

    Attributes
    ----------
    backend:
        One of ``"serial"``, ``"thread"`` or ``"process"``.

        * ``"serial"`` (default) runs units in order on the calling
          thread — deterministic, zero overhead, the right choice for
          small batches and for debugging.
        * ``"thread"`` reproduces the paper's OpenMP dynamic scheduling
          with Python threads.  Its worker-balance statistics (Figure 7)
          are meaningful, but the GIL bounds wall-clock speedup near 1x
          for this pure-Python enumerator.
        * ``"process"`` uses the persistent shared-memory worker pool and
          is the only backend that turns extra cores into wall-clock
          speedup (Figure 13).  Worth it once per-batch enumeration time
          dominates the per-batch publication cost (roughly: thousands of
          work units or embeddings per batch).
    num_workers:
        Number of workers for the thread / process backends.  ``1``
        always degenerates to the serial path.  More workers than
        physical cores does not help the process backend.
    chunk_size:
        Work units per task message for the process backend.  Chunks are
        pulled dynamically, so smaller chunks improve load balance on
        skewed (power-law) unit costs while larger chunks amortise the
        per-message queue overhead; the default suits batches of a few
        hundred to a few thousand units.  Ignored by the serial and
        thread backends (threads pull single units).
    """

    backend: str = "serial"
    num_workers: int = 1
    #: units per task for the process backend (amortises IPC overhead)
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "thread", "process"):
            raise ConfigurationError(
                f"backend must be 'serial', 'thread' or 'process', got {self.backend!r}"
            )
        check_positive(self.num_workers, "num_workers")
        check_positive(self.chunk_size, "chunk_size")


@dataclass
class WorkerStats:
    """Per-worker accounting used for Figures 7 and 13."""

    worker_id: int
    units_processed: int = 0
    embeddings_found: int = 0
    busy_seconds: float = 0.0
    #: (start, end) wall-clock intervals during which the worker was busy
    busy_intervals: list[tuple[float, float]] = field(default_factory=list)
    #: which pool generation produced these stats (0 before any respawn);
    #: lets aggregation distinguish worker 0 of the original pool from
    #: worker 0 of its replacement instead of silently merging them
    generation: int = 0

    def utilisation(self, wall_seconds: float) -> float:
        """Fraction of ``wall_seconds`` this worker spent processing units.

        A non-positive wall clock (clock resolution on a tiny batch)
        cannot show idle time: a worker that did any work counts as
        fully utilised, one that did nothing as idle, so the mean stays
        in [0, 1] instead of collapsing to 0 or dividing by zero.
        """
        if wall_seconds <= 0:
            return 1.0 if self.busy_seconds > 0 else 0.0
        return min(1.0, self.busy_seconds / wall_seconds)


@dataclass
class EnumerationOutcome:
    """Embeddings plus scheduling statistics for one parallel enumeration call.

    ``num_embeddings`` is authoritative: when the caller asked not to
    collect embeddings (count-only mode) the shared-memory pool ships
    bare counts back and ``embeddings`` stays empty.
    """

    embeddings: list
    worker_stats: list[WorkerStats]
    wall_seconds: float
    num_embeddings: int = -1

    def __post_init__(self) -> None:
        if self.num_embeddings < 0:
            self.num_embeddings = len(self.embeddings)

    def mean_utilisation(self) -> float:
        if not self.worker_stats:
            return 0.0
        return sum(w.utilisation(self.wall_seconds) for w in self.worker_stats) / len(
            self.worker_stats
        )


# ---------------------------------------------------------------------- serial backend
def _run_serial(
    context: "EnumerationContext", units: list["WorkUnit"], collect: bool = True
) -> EnumerationOutcome:
    from repro.core.enumeration import columnar_enumerate, columnar_supported

    stats = WorkerStats(worker_id=0)
    start = time.perf_counter()
    if columnar_supported(context):
        # The whole unit list runs through one batched kernel invocation;
        # per-unit busy intervals would be fiction, so the batch is one
        # interval and every unit counts as processed.
        embeddings, found = columnar_enumerate(context, units, collect=collect)
        wall = time.perf_counter() - start
        stats.units_processed = len(units)
        stats.embeddings_found = found
        stats.busy_seconds = wall
        if units:
            stats.busy_intervals.append((0.0, wall))
        return EnumerationOutcome(embeddings, [stats], wall, num_embeddings=found)
    embeddings = []
    for unit in units:
        unit_start = time.perf_counter()
        produced = list(context.match_def.enumerate(context, unit))
        unit_end = time.perf_counter()
        embeddings.extend(produced)
        stats.units_processed += 1
        stats.embeddings_found += len(produced)
        stats.busy_seconds += unit_end - unit_start
        stats.busy_intervals.append((unit_start - start, unit_end - start))
    wall = time.perf_counter() - start
    return EnumerationOutcome(embeddings, [stats], wall)


# ---------------------------------------------------------------------- thread backend
def _run_threads(
    context: "EnumerationContext",
    units: list["WorkUnit"],
    num_workers: int,
    collect: bool = True,
) -> EnumerationOutcome:
    from repro.core.enumeration import columnar_enumerate, columnar_supported

    if columnar_supported(context):
        # Worker threads cannot speed the kernel up — the GIL serialises
        # them — and measurably slow it down: the kernel's many short
        # numpy steps each release and reacquire the GIL, so two threads
        # convoy on the lock and the batch runs several times *slower*
        # than serial.  One whole-batch kernel call on the calling thread
        # is strictly better, so the thread backend degenerates to it.
        # The per-unit fault hook still fires on the same schedule, so
        # chaos plans targeting this backend behave unchanged.
        stats = WorkerStats(worker_id=0)
        start = time.perf_counter()
        for _ in units:
            fault_injection.thread_unit()
        embeddings, found = columnar_enumerate(context, units, collect=collect)
        wall = time.perf_counter() - start
        stats.units_processed = len(units)
        stats.embeddings_found = found
        stats.busy_seconds = wall
        if units:
            stats.busy_intervals.append((0.0, wall))
        return EnumerationOutcome(embeddings, [stats], wall, num_embeddings=found)

    work: "queue.SimpleQueue[WorkUnit | None]" = queue.SimpleQueue()
    for unit in units:
        work.put(unit)
    for _ in range(num_workers):
        work.put(None)

    results: list[list["Embedding"]] = [[] for _ in range(num_workers)]
    stats = [WorkerStats(worker_id=i) for i in range(num_workers)]
    failures: list[BaseException] = []
    start = time.perf_counter()

    def worker(worker_id: int) -> None:
        local = results[worker_id]
        st = stats[worker_id]
        while True:
            unit = work.get()
            if unit is None:
                return
            try:
                fault_injection.thread_unit()
                unit_start = time.perf_counter()
                produced = list(context.match_def.enumerate(context, unit))
                unit_end = time.perf_counter()
            except BaseException as exc:
                # A dying thread must not silently swallow its units: record
                # the failure so the caller can re-raise instead of
                # returning a partial (and wrong) result set.
                failures.append(exc)
                return
            local.extend(produced)
            st.units_processed += 1
            st.embeddings_found += len(produced)
            st.busy_seconds += unit_end - unit_start
            st.busy_intervals.append((unit_start - start, unit_end - start))

    threads = [threading.Thread(target=worker, args=(i,), daemon=True) for i in range(num_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]
    wall = time.perf_counter() - start
    embeddings = [e for bucket in results for e in bucket]
    return EnumerationOutcome(embeddings, stats, wall)


# ---------------------------------------------------------------------- legacy process backend
# Fallback used when the shared-memory pool is unavailable (no
# multiprocessing.shared_memory, failed spawn, or a context the pool
# cannot ship, e.g. one wired to the external edge store).  The forked
# children inherit this module-level slot; only picklable unit chunks
# travel through the task queue and only embeddings travel back.
_PROCESS_CONTEXT: "EnumerationContext | None" = None


def _process_chunk(chunk: list["WorkUnit"]):
    from repro.core.enumeration import enumerate_units

    assert _PROCESS_CONTEXT is not None, "process worker used before context installation"
    context = _PROCESS_CONTEXT
    start = time.perf_counter()
    embeddings = enumerate_units(context, chunk)
    busy = time.perf_counter() - start
    return embeddings, busy, len(chunk), os.getpid()


def _run_processes(
    context: "EnumerationContext",
    units: list["WorkUnit"],
    num_workers: int,
    chunk_size: int,
) -> EnumerationOutcome:
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:
        # No fork on this platform: fall back to the thread backend, which
        # is always available and semantically identical.
        return _run_threads(context, units, num_workers)

    global _PROCESS_CONTEXT
    _PROCESS_CONTEXT = context
    chunks = [units[i : i + chunk_size] for i in range(0, len(units), chunk_size)]
    start = time.perf_counter()
    stats_by_pid: dict[int, WorkerStats] = {}
    embeddings: list["Embedding"] = []
    try:
        if not chunks:
            return EnumerationOutcome([], [], 0.0)
        with ctx.Pool(processes=num_workers) as pool:
            for produced, busy, nunits, pid in pool.imap_unordered(_process_chunk, chunks):
                embeddings.extend(produced)
                st = stats_by_pid.setdefault(pid, WorkerStats(worker_id=pid))
                st.units_processed += nunits
                st.embeddings_found += len(produced)
                st.busy_seconds += busy
    finally:
        _PROCESS_CONTEXT = None
    wall = time.perf_counter() - start
    return EnumerationOutcome(embeddings, list(stats_by_pid.values()), wall)


# ---------------------------------------------------------------------- shared-memory pool
class PoolBrokenError(RuntimeError):
    """A pool worker died or misbehaved; the pool cannot be trusted further."""


class EpochDeadlineError(PoolBrokenError):
    """An epoch drain exceeded its deadline (likely a hung worker).

    Subclasses :class:`PoolBrokenError` because the remedy is the same —
    the pool cannot be trusted and the supervisor must replace it — but
    the distinct type lets callers count deadline expiries separately.
    """


class PoolOwnerMixin:
    """The shared pool-ownership dance for engines owning a worker pool.

    Both engines used to hand-roll the same lifecycle: drop the
    ``_pool`` reference *before* shutting it down (a failure while
    reaping workers must never leave a half-closed pool attached to the
    owner, where a retry or garbage collection would double-close it)
    and manage a ``weakref.finalize`` guard so collection of the owner
    closes a forgotten pool — but never one that was already replaced.
    This mixin is that dance, shared; it stores state on the plain
    ``_pool`` / ``_pool_finalizer`` attributes.
    """

    _pool: "SharedMemoryPool | None" = None
    _pool_finalizer = None

    def _adopt_pool(self, pool: "SharedMemoryPool | None") -> "SharedMemoryPool | None":
        """Track ``pool`` (may be None) and arm a close-on-GC finalizer."""
        import weakref

        self._pool = pool
        self._pool_finalizer = (
            weakref.finalize(self, SharedMemoryPool.close, pool)
            if pool is not None
            else None
        )
        return pool

    def _detach_pool(self) -> "SharedMemoryPool | None":
        """Detach and return the pool (not yet closed); the owner keeps no reference.

        The caller is responsible for closing the returned pool (after
        harvesting whatever it still needs, e.g. the publish count).
        Returns None when no pool was tracked.  Exception-safe by
        construction: the reference and finalizer are gone before the
        caller runs any teardown that might raise.
        """
        pool, self._pool = self._pool, None
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        return pool

    def _close_pool(self) -> None:
        """Detach and close the tracked pool (idempotent)."""
        pool = self._detach_pool()
        if pool is not None:
            pool.close()


@dataclass
class _InflightEpoch:
    """Parent-side accounting for one dispatched-but-undrained epoch."""

    epoch: int
    contexts: "dict[int, EnumerationContext]"
    collect: bool
    pending: int
    start: float
    stats: dict[tuple[int, int], WorkerStats] = field(default_factory=dict)
    embeddings: "dict[int, list[Embedding]]" = field(default_factory=dict)
    totals: dict[int, int] = field(default_factory=dict)
    scanned: dict[int, int] = field(default_factory=dict)
    #: unit chunks bounced back by the shard-ownership guard (sharded
    #: dispatch only): the worker's snapshot cannot answer a cross-shard
    #: read, so the router re-runs these with frontier forwarding
    escaped: dict[int, list] = field(default_factory=dict)
    failure: str | None = None


@dataclass(frozen=True)
class DispatchedEpoch:
    """Handle for a non-blocking :meth:`SharedMemoryPool.dispatch` call.

    Carries the published descriptor and the dispatched units so a
    caller can recover the exact frozen epoch (parent-side attach +
    serial re-enumeration) should the pool break before the drain — the
    live graph may have moved on by then.
    """

    epoch: int
    descriptor: dict
    units: "dict[int, list[WorkUnit]]"


@dataclass(frozen=True)
class DrainedEpoch:
    """Per-query outcomes of one fully drained epoch.

    ``escaped`` holds the work units (per query) that the workers could
    not finish shard-locally — present only for sharded dispatches whose
    descriptor carried a ``"shard"`` ownership spec.  The caller owns
    their re-execution (the shard router re-runs them with cross-shard
    frontier forwarding); their counters and embeddings are *not* part
    of ``outcomes``.
    """

    epoch: int
    outcomes: dict[int, EnumerationOutcome]
    escaped: "dict[int, list[WorkUnit]]" = field(default_factory=dict)


def _pack_embeddings(embeddings: list["Embedding"]) -> "np.ndarray":
    """Pack embeddings into one flat int64 array for cheap IPC.

    Layout per embedding:
    ``[start_edge, n_node_pairs, n_edge_pairs, (qnode, vertex)*, (qedge, eid)*]``.
    Pickling one numpy array is a single buffer copy, versus one object
    graph walk per embedding for lists of tuples.
    """
    import numpy as np

    flat: list[int] = []
    for e in embeddings:
        flat.append(e.start_edge)
        flat.append(len(e.node_map))
        flat.append(len(e.edge_map))
        for pair in e.node_map:
            flat.extend(pair)
        for pair in e.edge_map:
            flat.extend(pair)
    return np.array(flat, dtype=np.int64)


def _unpack_embeddings(packed, positive: bool) -> list["Embedding"]:
    """Rebuild :class:`Embedding` records from a packed int64 array."""
    from repro.core.results import Embedding

    data = packed.tolist()
    out: list["Embedding"] = []
    i = 0
    n = len(data)
    while i < n:
        start_edge = data[i]
        n_nodes = data[i + 1]
        n_edges = data[i + 2]
        i += 3
        node_map = tuple(
            (data[j], data[j + 1]) for j in range(i, i + 2 * n_nodes, 2)
        )
        i += 2 * n_nodes
        edge_map = tuple(
            (data[j], data[j + 1]) for j in range(i, i + 2 * n_edges, 2)
        )
        i += 2 * n_edges
        out.append(
            Embedding(node_map=node_map, edge_map=edge_map, start_edge=start_edge,
                      positive=positive)
        )
    return out


def _pool_worker_main(
    worker_id: int, query_states: "dict[int, QueryState]", task_queue, result_queue
):
    """Entry point of one persistent pool worker.

    Loops pulling ``(epoch, descriptor, query_id, unit_chunk, collect)``
    tasks from the shared queue (dynamic load balancing), attaching to
    the published snapshot once per epoch, and answering each chunk with
    either a packed embedding array or a bare count, tagged with the
    query id for parent-side routing.  Contexts are built lazily per
    (epoch, query) and all queries of an epoch share one candidate-pool
    cache, so a pool scanned for one query is reused by the others.
    ``None`` is the shutdown sentinel.
    """
    disable_shm_resource_tracking()
    from repro.core.enumeration import (
        EmbeddingArena,
        WorkUnit,
        columnar_enumerate,
        columnar_enumerate_packed,
        columnar_supported,
    )
    from repro.core.sharding import CrossShardAccess, ShardGuardView

    attachment = SnapshotAttachment()
    trees = {qid: qs.tree for qid, qs in query_states.items()}
    contexts: dict[int, "EnumerationContext"] = {}
    # Arenas persist across epochs (contexts do not): steady-state
    # streaming reuses the same preallocated blocks batch after batch.
    arenas: dict[int, "EmbeddingArena"] = {}
    # Cross-query sharing only: a single-query pool keeps the per-column
    # memo alone, so its candidates_scanned matches the serial backend
    # exactly (the shared cache is keyed without the DEBI column and
    # would under-count steps that share an anchor pool across columns).
    multi_query = len(query_states) > 1
    shared_cache: dict | None = {} if multi_query else None
    # Keyed by (segment name, epoch), not epoch alone: a supervisor may
    # redispatch a *retired* pool's frozen epoch to this pool (the
    # segment names are globally unique, so attaching by name works
    # across pool generations), and the retired writer's epoch numbers
    # can collide with our own writer's.
    current_epoch: tuple[str, int] | None = None
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            epoch, descriptor, query_id, chunk, collect = task
            try:
                epoch_key = (descriptor["name"], descriptor["epoch"])
                if epoch_key != current_epoch:
                    contexts = {}
                    shared_cache = {} if multi_query else None
                    current_epoch = epoch_key
                context = contexts.get(query_id)
                if context is None:
                    graph_view, debis, batch_edge_ids = attachment.views(descriptor, trees)
                    shard_spec = descriptor.get("shard")
                    if shard_spec is not None:
                        # Sharded dispatch: this snapshot holds one shard's
                        # edges only.  Adjacency is complete only at owned
                        # vertices; the guard turns any foreign read into a
                        # CrossShardAccess escape instead of a silent
                        # partial frontier.
                        graph_view = ShardGuardView(
                            graph_view,
                            shard_spec["strategy"],
                            shard_spec["num_shards"],
                            shard_spec["shard"],
                        )
                    context = query_states[query_id].make_context(
                        graph_view,
                        debis[query_id],
                        batch_edge_ids,
                        descriptor["positive"],
                        shared_pool_cache=shared_cache,
                    )
                    contexts[query_id] = context
                scanned_before = context.candidates_scanned
                chunk_start = time.perf_counter()
                if columnar_supported(context):
                    # The kernel emits the packed IPC layout straight from
                    # the arena — the tuple path's separate pack step is
                    # gone.  Fault injection still fires per unit so chaos
                    # tests exercise the same schedule points.
                    units = []
                    for edge_id, start_edge in chunk.tolist():
                        fault_injection.worker_unit(worker_id)
                        units.append(WorkUnit(edge_id, start_edge))
                    arena = arenas.get(query_id)
                    if arena is None:
                        arena = arenas[query_id] = EmbeddingArena()
                    if collect:
                        payload, n_found = columnar_enumerate_packed(
                            context, units, arena=arena
                        )
                    else:
                        payload = None
                        _, n_found = columnar_enumerate(
                            context, units, collect=False, arena=arena
                        )
                    chunk_end = time.perf_counter()
                else:
                    embeddings: list["Embedding"] = []
                    for edge_id, start_edge in chunk.tolist():
                        fault_injection.worker_unit(worker_id)
                        embeddings.extend(
                            context.match_def.enumerate(context, WorkUnit(edge_id, start_edge))
                        )
                    chunk_end = time.perf_counter()
                    n_found = len(embeddings)
                    payload = _pack_embeddings(embeddings) if collect else None
                result_queue.put(fault_injection.worker_message((
                    "ok",
                    epoch,
                    worker_id,
                    query_id,
                    len(chunk),
                    n_found,
                    payload,
                    chunk_start,
                    chunk_end,
                    context.candidates_scanned - scanned_before,
                )))
            except CrossShardAccess:
                # The chunk needs another shard's adjacency; bounce it back
                # whole.  Partial counter deltas are dropped on purpose —
                # the router's scatter-gather re-run charges them cleanly.
                result_queue.put(
                    ("escaped", epoch, worker_id, query_id, len(chunk), chunk)
                )
            except Exception:  # pragma: no cover - surfaced parent-side as PoolBrokenError
                result_queue.put(
                    ("err", epoch, worker_id, query_id, len(chunk), traceback.format_exc())
                )
    finally:
        attachment.detach()


class SharedMemoryPool:
    """A persistent worker pool enumerating over a shared-memory snapshot.

    One instance lives per :class:`~repro.core.engine.MnemonicEngine`
    with the ``process`` backend: workers are spawned once, the engine
    publishes a fresh snapshot before each batch, and chunks of work
    units are pulled dynamically from a shared queue.  Compare with the
    legacy per-batch fork path (:func:`_run_processes`), which this
    design replaces: no repeated worker start-up, no pickling of the
    graph or of per-embedding object graphs.
    """

    #: seconds between liveness checks while waiting for results
    _POLL_SECONDS = 1.0

    def __init__(
        self, query_states: "dict[int, QueryState]", num_workers: int, chunk_size: int
    ) -> None:
        import multiprocessing as mp

        self.num_workers = num_workers
        self.chunk_size = chunk_size
        #: stamped by the supervisor; tags WorkerStats across respawns
        self.generation = 0
        #: epoch drains aborted by a deadline (folded into supervisor stats)
        self.deadline_expiries = 0
        self._writer = SharedSnapshotWriter(num_slots=2)
        self._inflight: dict[int, _InflightEpoch] = {}
        self._adopted_ids = 0
        self._broken = False
        self._closed = False
        self._terminated = False
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = mp.get_context("spawn")
        # Freeze any armed fault-injection state *before* forking so the
        # children inherit this generation's faults (no-op in production).
        fault_injection.pool_spawning()
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=_pool_worker_main,
                args=(i, query_states, self._task_queue, self._result_queue),
                daemon=True,
                name=f"mnemonic-pool-{i}",
            )
            for i in range(num_workers)
        ]
        started: list = []
        try:
            for proc in self._workers:
                proc.start()
                started.append(proc)
        except Exception:
            # Partial spawn (e.g. EAGAIN near the process limit): reap the
            # workers that did start before the caller falls back, or they
            # would block on the task queue forever.
            for proc in started:
                proc.terminate()
            for proc in started:
                proc.join(timeout=1.0)
            for q in (self._task_queue, self._result_queue):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:  # pragma: no cover - queue already torn down
                    pass
            raise

    @classmethod
    def create(
        cls, query_state: "QueryState", config: ParallelConfig
    ) -> "SharedMemoryPool | None":
        """Spawn a single-query pool (query id 0), or return None when unsupported."""
        return cls.create_multi({0: query_state}, config)

    @classmethod
    def create_multi(
        cls, query_states: "dict[int, QueryState]", config: ParallelConfig
    ) -> "SharedMemoryPool | None":
        """Spawn a pool serving every query in ``query_states``, or None.

        Returns None (caller falls back to the legacy fork-per-batch or
        serial path) when shared memory is missing or the workers cannot
        be spawned — e.g. an unpicklable match definition under the
        spawn start method.
        """
        if config.backend != "process" or config.num_workers <= 1:
            return None
        if not query_states or not shared_memory_available():
            return None
        try:
            return cls(query_states, config.num_workers, config.chunk_size)
        except Exception:
            warnings.warn(
                "shared-memory pool spawn failed; the process backend will use "
                f"per-batch forked workers instead:\n{traceback.format_exc()}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    @property
    def usable(self) -> bool:
        return not self._broken and not self._closed

    @property
    def publish_count(self) -> int:
        """How many snapshot exports this pool has performed (one per publish)."""
        return self._writer.epoch

    @property
    def publish_stats(self) -> dict:
        """Publication regime split: dirty-slice vs full-copy counts + wall time."""
        return {
            "publish_count": self._writer.epoch,
            "dirty_publishes": self._writer.dirty_publishes,
            "full_publishes": self._writer.full_publishes,
            "publish_seconds": self._writer.publish_seconds,
        }

    # ------------------------------------------------------------------ execution
    def run(
        self,
        context: "EnumerationContext",
        units: list["WorkUnit"],
        collect: bool = True,
    ) -> EnumerationOutcome:
        """Publish the context's snapshot and enumerate ``units`` on the pool."""
        return self.run_multi({0: context}, {0: units}, collect=collect)[0]

    def run_multi(
        self,
        contexts: "dict[int, EnumerationContext]",
        units: "dict[int, list[WorkUnit]]",
        collect: bool = True,
    ) -> dict[int, EnumerationOutcome]:
        """Enumerate every query's units over one shared snapshot publication.

        All contexts must wrap the same graph and batch (the multi-query
        engine guarantees this); the graph is exported **once** and each
        query contributes only its DEBI buffers.  Work-unit chunks are
        tagged with their query id, pulled dynamically by the workers
        from one shared queue, and the packed embeddings coming back are
        routed to per-query outcomes.  Blocking convenience on top of
        :meth:`dispatch` + :meth:`drain`.
        """
        return self.drain(self.dispatch(contexts, units, collect=collect)).outcomes

    # ------------------------------------------------------------------ epoch pipeline
    @property
    def epochs_in_flight(self) -> int:
        return len(self._inflight)

    @property
    def max_epochs_in_flight(self) -> int:
        """How many epochs may be dispatched before one must be drained.

        Bounded by the writer's slot count: publishing epoch ``e``
        overwrites the segment of epoch ``e - num_slots``, so that epoch
        must be fully drained first.
        """
        return self._writer.num_slots

    def dispatch(
        self,
        contexts: "dict[int, EnumerationContext]",
        units: "dict[int, list[WorkUnit]]",
        collect: bool = True,
        descriptor_extra: dict | None = None,
    ) -> "DispatchedEpoch":
        """Publish a snapshot and enqueue every query's units — without waiting.

        The returned handle identifies the new epoch; pass it to
        :meth:`drain` to join on the results.  Non-blocking by design:
        the coordinator of the pipelined batch loop dispatches batch
        ``k``'s enumeration, then mutates the live graph for batch
        ``k + 1`` while the workers chew — the workers only ever read the
        published (frozen) shared-memory epoch, never the live graph.
        At most :attr:`max_epochs_in_flight` epochs may be outstanding
        (the writer's double buffer bounds it); dispatching beyond that
        raises :class:`PoolBrokenError` rather than corrupting a slot a
        worker may still be reading.
        """
        import numpy as np

        if not self.usable:
            raise PoolBrokenError("pool is closed or broken")
        if len(self._inflight) >= self.max_epochs_in_flight:
            raise PoolBrokenError(
                f"{len(self._inflight)} epochs already in flight; drain one "
                f"before dispatching (writer has {self._writer.num_slots} slots)"
            )
        reference = next(iter(contexts.values()))
        try:
            descriptor = self._writer.publish(
                reference.graph,
                {qid: ctx.debi for qid, ctx in contexts.items()},
                reference.batch_edge_ids,
                reference.positive,
            )
        except Exception as exc:
            self._broken = True
            raise PoolBrokenError(f"snapshot publication failed: {exc}") from exc

        if descriptor_extra:
            # Side-channel for the shard router: the ownership spec rides
            # in the descriptor (plain queue payload, not shared memory).
            descriptor = {**descriptor, **descriptor_extra}
        epoch = descriptor["epoch"]
        self._enqueue_epoch(epoch, descriptor, contexts, units, collect)
        return DispatchedEpoch(epoch=epoch, descriptor=descriptor, units=units)

    def adopt(
        self,
        handle: "DispatchedEpoch",
        contexts: "dict[int, EnumerationContext]",
        collect: bool = True,
    ) -> int:
        """Re-enqueue a *retired* pool's in-flight epoch on this pool.

        ``handle`` carries the retired pool's frozen descriptor and the
        exact work units it dispatched; the segment names inside the
        descriptor are globally unique and the retired pool's writer is
        still alive (terminated pools keep their segments), so this
        pool's workers can attach to the frozen snapshot by name and
        re-run the same units — bit-identical redispatch.  Returns an
        epoch id to pass to :meth:`drain`; ids are negative so they can
        never collide with this pool's own writer epochs.
        """
        if not self.usable:
            raise PoolBrokenError("pool is closed or broken")
        self._adopted_ids += 1
        epoch_id = -self._adopted_ids
        self._enqueue_epoch(epoch_id, handle.descriptor, contexts, handle.units, collect)
        return epoch_id

    def _enqueue_epoch(
        self,
        epoch_id: int,
        descriptor: dict,
        contexts: "dict[int, EnumerationContext]",
        units: "dict[int, list[WorkUnit]]",
        collect: bool,
    ) -> None:
        """Register in-flight state for ``epoch_id`` and enqueue its chunks.

        ``epoch_id`` is a parent-side routing key echoed back by the
        workers; the workers identify the snapshot itself purely through
        the descriptor's (segment name, epoch) pair.
        """
        import numpy as np

        tasks: list[tuple] = []
        for qid, unit_list in units.items():
            unit_array = np.array(
                [(u.edge_id, u.start_edge) for u in unit_list], dtype=np.int64
            ).reshape(len(unit_list), 2)
            for i in range(0, len(unit_array), self.chunk_size):
                tasks.append((qid, unit_array[i : i + self.chunk_size]))
        state = _InflightEpoch(
            epoch=epoch_id,
            contexts=contexts,
            collect=collect,
            pending=len(tasks),
            start=time.perf_counter(),
            embeddings={qid: [] for qid in contexts},
            totals={qid: 0 for qid in contexts},
            scanned={qid: 0 for qid in contexts},
        )
        self._inflight[epoch_id] = state
        for qid, chunk in tasks:
            self._task_queue.put((epoch_id, descriptor, qid, chunk, collect))

    def drain(
        self,
        handle: "DispatchedEpoch | int",
        deadline_seconds: float | None = None,
    ) -> "DrainedEpoch":
        """Join on one dispatched epoch and return its per-query outcomes.

        Results of *other* in-flight epochs arriving meanwhile are
        buffered into their own epoch state, so epochs may be drained in
        any order (the pipeline drains them oldest-first).

        ``deadline_seconds`` bounds the epoch's total wall clock,
        measured from its dispatch: when it expires with results still
        missing (a wedged worker never crashes, so the liveness poll
        alone cannot catch it) the pool is declared broken and
        :class:`EpochDeadlineError` is raised instead of waiting forever.
        """
        epoch = handle.epoch if isinstance(handle, DispatchedEpoch) else handle
        state = self._inflight.get(epoch)
        if state is None:
            raise PoolBrokenError(f"epoch {epoch} is not in flight")
        deadline = None if deadline_seconds is None else state.start + deadline_seconds
        while state.pending:
            self._route_result(self._next_result(deadline))
        del self._inflight[epoch]
        wall = time.perf_counter() - state.start
        if state.failure is not None:
            self._broken = True
            raise PoolBrokenError(f"pool worker failed:\n{state.failure}")
        outcomes: dict[int, EnumerationOutcome] = {}
        for qid, context in state.contexts.items():
            # Mirror the serial path's context-side counters so traversal
            # metrics stay comparable across backends.
            context.candidates_scanned += state.scanned[qid]
            context.embeddings_found += state.totals[qid]
            outcomes[qid] = EnumerationOutcome(
                state.embeddings[qid],
                [st for (owner, _), st in state.stats.items() if owner == qid],
                wall,
                num_embeddings=state.totals[qid],
            )
        from repro.core.enumeration import WorkUnit

        escaped: dict[int, list["WorkUnit"]] = {}
        for qid, chunks in state.escaped.items():
            escaped[qid] = [
                WorkUnit(int(edge_id), int(start_edge))
                for chunk in chunks
                for edge_id, start_edge in chunk.tolist()
            ]
        return DrainedEpoch(epoch=epoch, outcomes=outcomes, escaped=escaped)

    def _route_result(self, message) -> None:
        """Book one worker message into its epoch's in-flight state.

        A malformed (torn) message — a worker died mid-``put`` or the
        pipe delivered garbage — must break the pool like a crash does,
        not raise an arbitrary unpack error into the drain loop.
        """
        try:
            kind, epoch = message[0], message[1]
            state = self._inflight.get(epoch)
            if state is None:  # pragma: no cover - defensive: unknown epoch
                return
            if kind == "err":
                state.pending -= 1
                state.failure = message[5]
                return
            if kind == "escaped":
                state.pending -= 1
                state.escaped.setdefault(message[3], []).append(message[5])
                return
            (_, _, worker_id, qid, n_units, n_found, payload, chunk_start,
             chunk_end, scanned) = message
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            self._broken = True
            raise PoolBrokenError(
                f"malformed result message from a pool worker (torn write?): "
                f"{message!r}"
            ) from exc
        state.pending -= 1
        state.totals[qid] += n_found
        state.scanned[qid] += scanned
        if state.collect and payload is not None:
            state.embeddings[qid].extend(
                _unpack_embeddings(payload, state.contexts[qid].positive)
            )
        st = state.stats.setdefault(
            (qid, worker_id),
            WorkerStats(worker_id=worker_id, generation=self.generation),
        )
        st.units_processed += n_units
        st.embeddings_found += n_found
        st.busy_seconds += chunk_end - chunk_start
        st.busy_intervals.append((chunk_start - state.start, chunk_end - state.start))

    @staticmethod
    def _describe_death(proc) -> str:
        """One dead worker's obituary: name, pid, signal name or exit code."""
        code = proc.exitcode
        if code is not None and code < 0:
            try:
                cause = f"killed by {signal_module.Signals(-code).name}"
            except ValueError:  # pragma: no cover - unknown signal number
                cause = f"killed by signal {-code}"
        else:
            cause = f"exited with code {code}"
        return f"{proc.name} (pid {proc.pid}) {cause}"

    def _dead_workers_detail(self) -> str:
        """Describe every dead worker, for the PoolBrokenError message."""
        return "; ".join(
            self._describe_death(proc)
            for proc in self._workers
            if not proc.is_alive()
        )

    def _next_result(self, deadline: float | None = None):
        """Fetch one result, polling worker liveness so a crash cannot deadlock.

        ``deadline`` is an absolute ``time.perf_counter()`` instant; past
        it, an empty queue raises :class:`EpochDeadlineError` (the hung-
        worker case liveness polling cannot catch).
        """
        while True:
            timeout = self._POLL_SECONDS
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    # One last non-blocking look: results that arrived right
                    # at the wire still count.
                    try:
                        return self._result_queue.get_nowait()
                    except queue.Empty:
                        self._broken = True
                        self.deadline_expiries += 1
                        raise EpochDeadlineError(
                            "epoch drain exceeded its deadline; a worker is "
                            "likely hung"
                        ) from None
                timeout = min(timeout, remaining)
            try:
                return self._result_queue.get(timeout=timeout)
            except queue.Empty:
                dead = self._dead_workers_detail()
                if dead:
                    self._broken = True
                    raise PoolBrokenError(
                        f"pool worker died while processing a batch: {dead}"
                    )

    # ------------------------------------------------------------------ lifecycle
    def terminate(self, join_timeout: float = 2.0) -> None:
        """Kill the workers but keep the shared-memory segments alive.

        This is the supervisor's retirement path: the frozen epochs this
        pool published must stay attachable (for redispatch on a
        replacement pool or parent-side recovery), so only the processes
        and queues are torn down here.  :meth:`close` later unlinks the
        segments.  Idempotent.
        """
        if self._terminated or self._closed:
            return
        self._terminated = True
        self._broken = True
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()
        for proc in self._workers:
            proc.join(timeout=join_timeout)
        for q in (self._task_queue, self._result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - queue already torn down
                pass

    def close(self, join_timeout: float = 2.0) -> None:
        """Shut the workers down and unlink the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if not self._terminated:
            for _ in self._workers:
                try:
                    self._task_queue.put(None)
                except Exception:  # pragma: no cover - queue already torn down
                    break
            for proc in self._workers:
                proc.join(timeout=join_timeout)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=join_timeout)
            for q in (self._task_queue, self._result_queue):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:  # pragma: no cover - queue already torn down
                    pass
        self._writer.close()


# ---------------------------------------------------------------------- dispatcher
def run_enumeration(
    context: "EnumerationContext",
    units: Iterable["WorkUnit"],
    config: ParallelConfig,
    pool: "SharedMemoryPool | None" = None,
    collect: bool = True,
) -> EnumerationOutcome:
    """Enumerate every unit using the configured backend.

    ``pool`` is the engine's persistent shared-memory pool (``process``
    backend only); when it is missing, broken, or the context cannot be
    shipped (external-store callbacks), the legacy per-batch fork path
    runs instead.  ``collect=False`` lets the pool return bare counts.
    Batches too small to amortise a snapshot publication run serially —
    for a handful of units the O(V + E) export would dominate.
    """
    unit_list = list(units)
    if not unit_list:
        return EnumerationOutcome([], [], 0.0)
    if config.backend == "serial" or config.num_workers == 1:
        return _run_serial(context, unit_list, collect=collect)
    if config.backend == "thread":
        return _run_threads(context, unit_list, config.num_workers, collect=collect)
    if pool is not None and pool.usable and context.on_spilled_access is None:
        # Publication is O(V + E) (parent export + per-worker view build),
        # one unit enumerates in roughly the time ~1000 placeholders take
        # to export, so a batch must carry enough units per worker AND
        # enough units relative to the graph size to amortise a publish.
        placeholders = getattr(context.graph, "num_placeholders", 0)
        if (
            len(unit_list) < 2 * config.num_workers
            or len(unit_list) * 1000 < placeholders
        ):
            return _run_serial(context, unit_list, collect=collect)
        try:
            return pool.run(context, unit_list, collect=collect)
        except PoolBrokenError as exc:
            # Shut the survivors down: leftover chunks of the failed batch
            # must not keep burning cores behind the fallback's back.
            pool.close()
            warnings.warn(
                f"shared-memory pool failed mid-run ({exc}); falling back to "
                "per-batch forked workers for the rest of this engine's lifetime",
                RuntimeWarning,
                stacklevel=2,
            )
    return _run_processes(context, unit_list, config.num_workers, config.chunk_size)
