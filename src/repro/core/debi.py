"""DEBI — the Data-graph Edge-centric Binary Index (Section IV-A).

For a query tree with ``k`` non-root nodes, DEBI keeps a ``k``-bit
bitmap per data edge id: bit ``c`` records whether the data edge is
currently a candidate match for the query-tree edge owned by column
``c`` (i.e. by the non-root query node with that column).  A separate
bit-vector ``roots`` over data vertices records the candidate matches of
the root query node.

All operations on a single (edge, column) pair are O(1); rows are
cleared when an edge id is deleted/recycled, which is what makes the
index size non-monotonic.

The columnar ingest path adds bulk variants (:meth:`set_edges`,
:meth:`clear_edges`, :meth:`rows`) that update whole id arrays with one
vectorized write per call, and the writer-facing dirty ledger
(:meth:`consume_publish_dirty`) that lets the shared-snapshot writer
copy only the row/root words touched since its last publish into a slot.
"""

from __future__ import annotations

import numpy as np

from repro.query.query_tree import QueryTree
from repro.utils.bitset import _WORD_BITS, BitMatrix, BitVector

#: once this many distinct rows are dirty the per-row ledger stops paying
#: for itself; fall back to "everything dirty" (one range) instead
_DIRTY_ROW_CAP = 65536


class DEBI:
    """Bitmap candidate index addressed by data edge id and query-tree column."""

    def __init__(self, tree: QueryTree, initial_edges: int = 1024, initial_vertices: int = 1024) -> None:
        self.tree = tree
        # A single-node query has no tree edges; keep a 1-column matrix so the
        # data structure stays well-formed (the column is simply never used).
        self._bits = BitMatrix(width=max(tree.num_columns, 1), initial_rows=initial_edges)
        self._roots = BitVector(initial_capacity=initial_vertices)
        self._init_dirty()

    # ------------------------------------------------------------------ dirty ledger
    def _init_dirty(self) -> None:
        # start all-dirty: the first publish after construction / restore /
        # attach must copy everything regardless of what was touched since
        self._dirty_rows: set[int] = set()
        self._dirty_root_words: set[int] = set()
        self._all_dirty = True

    def _mark_row(self, edge_id: int) -> None:
        if self._all_dirty:
            return
        self._dirty_rows.add(edge_id)
        if len(self._dirty_rows) > _DIRTY_ROW_CAP:
            self._all_dirty = True
            self._dirty_rows.clear()
            self._dirty_root_words.clear()

    def _mark_rows(self, edge_ids) -> None:
        if self._all_dirty:
            return
        self._dirty_rows.update(
            edge_ids.tolist() if isinstance(edge_ids, np.ndarray) else edge_ids
        )
        if len(self._dirty_rows) > _DIRTY_ROW_CAP:
            self._all_dirty = True
            self._dirty_rows.clear()
            self._dirty_root_words.clear()

    def _mark_root(self, vertex: int) -> None:
        if not self._all_dirty:
            self._dirty_root_words.add(vertex // _WORD_BITS)

    def mark_all_dirty(self) -> None:
        """Poison the ledger: the next publish copies every word."""
        self._all_dirty = True
        self._dirty_rows.clear()
        self._dirty_root_words.clear()

    def consume_publish_dirty(self):
        """Return ``(row_ranges, root_word_ranges)`` touched since last call.

        Each element is a list of half-open ``(start, stop)`` runs over the
        exported row words / root words, or ``None`` meaning "treat the
        whole array as dirty".  Calling this resets the ledger, so it must
        be invoked exactly once per publish (the writer owns that cadence).
        The ranges are a superset of actual changes — conservative is
        always safe for the dirty-slice copy.
        """
        if self._all_dirty:
            rows, roots = None, None
        else:
            rows = _coalesce(self._dirty_rows)
            roots = _coalesce(self._dirty_root_words)
        self._dirty_rows = set()
        self._dirty_root_words = set()
        self._all_dirty = False
        return rows, roots

    # ------------------------------------------------------------------ edge bits
    def set(self, edge_id: int, column: int) -> None:
        """Mark the data edge as a candidate for the query-tree edge of ``column``."""
        self._bits.set(edge_id, column)
        self._mark_row(edge_id)

    def clear(self, edge_id: int, column: int) -> None:
        self._bits.clear(edge_id, column)
        self._mark_row(edge_id)

    def get(self, edge_id: int, column: int) -> bool:
        return self._bits.get(edge_id, column)

    def row(self, edge_id: int) -> int:
        """The full bitmap of ``edge_id`` as an integer mask."""
        return self._bits.get_row(edge_id)

    def clear_edge(self, edge_id: int) -> None:
        """Drop every candidate bit of ``edge_id`` (edge deleted / id recycled)."""
        self._bits.clear_row(edge_id)
        self._mark_row(edge_id)

    # ------------------------------------------------------------------ bulk edge bits
    def set_edges(self, edge_ids, column: int) -> None:
        """Set ``column`` for a whole id array — one vectorized write.

        The columnar counterpart of calling :meth:`set` per edge; the
        final bit state is identical (OR is idempotent and duplicate ids
        are allowed).
        """
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return
        self._bits.set_rows_col(ids, column)
        self._mark_rows(ids)

    def clear_edges(self, edge_ids) -> None:
        """Clear the full bitmap of every id in the array (bulk clear_edge)."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return
        self._bits.clear_rows(ids)
        self._mark_rows(ids)

    def rows(self, edge_ids) -> list[int]:
        """Gather the full bitmaps for an id array (bulk :meth:`row`)."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        return self._bits.get_rows(ids).tolist()

    def filter_candidates(self, edge_ids, column: int) -> list[int]:
        """Return the subset of ``edge_ids`` whose bit at ``column`` is set.

        Vectorized over the whole adjacency list — this is what
        ``getCandidates`` calls on every extension step.
        """
        return self._bits.filter_rows_with_column(edge_ids, column)

    def column_mask(self, edge_ids, column: int):
        """Vectorized bit test: bool mask over an int64 array of edge ids.

        The array half of :meth:`filter_candidates`; the enumeration hot
        path uses it to filter a whole adjacency partition and gather the
        surviving endpoints in one fused step.
        """
        return self._bits.column_mask(edge_ids, column)

    def candidates_for_column(self, column: int):
        """All edge ids currently marked for ``column`` (numpy array)."""
        return self._bits.rows_with_column(column)

    def column_cardinality(self, column: int) -> int:
        """Number of candidate edges for ``column``."""
        return self._bits.column_count(column)

    # ------------------------------------------------------------------ roots
    def set_root(self, vertex: int) -> None:
        self._roots.set(vertex)
        self._mark_root(vertex)

    def clear_root(self, vertex: int) -> None:
        self._roots.clear(vertex)
        self._mark_root(vertex)

    def is_root(self, vertex: int) -> bool:
        return self._roots.get(vertex)

    def roots_mask(self, vertices):
        """Vectorized root test: bool mask over an int64 array of vertices.

        The columnar enumeration kernel's counterpart of :meth:`is_root`,
        answering the root-candidacy of a whole candidate column in one
        word gather.
        """
        return self._roots.get_many(vertices)

    def root_count(self) -> int:
        return self._roots.count()

    # ------------------------------------------------------------------ buffer export / attach
    def export_buffers(self) -> dict:
        """Export the index as raw word buffers plus their geometry.

        The returned arrays alias this DEBI's storage (no copy); the
        shared-memory layer copies them into a segment and worker processes
        rebuild a read-only DEBI with :meth:`attach_buffers`.
        """
        rows, num_rows = self._bits.export_words()
        roots, root_bits = self._roots.export_words()
        return {
            "rows": rows,
            "num_rows": num_rows,
            "width": self._bits.width,
            "roots": roots,
            "root_bits": root_bits,
        }

    @classmethod
    def attach_buffers(
        cls,
        tree: QueryTree,
        rows,
        num_rows: int,
        width: int,
        roots,
        root_bits: int,
    ) -> "DEBI":
        """Rebuild a read-only DEBI over exported word buffers (zero-copy)."""
        debi = cls.__new__(cls)
        debi.tree = tree
        debi._bits = BitMatrix.from_words(rows, width=width, nrows=num_rows)
        debi._roots = BitVector.from_words(roots, nbits=root_bits)
        debi._init_dirty()
        return debi

    # ------------------------------------------------------------------ durability
    def enable_spill(self, directory, hot_rows: int, segment_rows: int = 4096):
        """Swap the row matrix for a tiered hot/cold store rooted at ``directory``.

        The replacement happens in place (``self._bits`` is reassigned),
        so every holder of this DEBI — ``IndexManager``, enumeration
        contexts, the snapshot writer — keeps working through the same
        BitMatrix interface.  Existing content is carried over.
        """
        from repro.storage.spill import TieredBitMatrix

        tiered = TieredBitMatrix(
            width=self._bits.width, directory=directory,
            hot_rows=hot_rows, segment_rows=segment_rows,
        )
        rows, num_rows = self._bits.export_words()
        if num_rows:
            tiered.load_words(rows, num_rows)
        self._bits = tiered
        self.mark_all_dirty()
        return tiered

    def restore_buffers(self, rows, num_rows: int, width: int, roots, root_bits: int) -> None:
        """Overwrite the index content from checkpointed word buffers, in place.

        The inverse of :meth:`export_buffers` for recovery: unlike
        :meth:`attach_buffers` this mutates the existing matrix/vector so
        references held by the index manager stay valid and writable.
        """
        if width != self._bits.width:
            raise ValueError(
                f"checkpointed DEBI width {width} != live width {self._bits.width}"
            )
        self._bits.load_words(rows, num_rows)
        self._roots.load_words(roots, root_bits)
        self.mark_all_dirty()

    def spill_stats(self) -> dict | None:
        """Cold-tier counters, or None when the index is fully in memory."""
        from repro.storage.spill import TieredBitMatrix

        if not isinstance(self._bits, TieredBitMatrix):
            return None
        return {
            "spilled_rows": self._bits.spilled_rows,
            "debi_disk_bytes": self._bits.disk_bytes,
            "debi_hot_bytes": self._bits.nbytes(),
            "cold_reads": self._bits.cold_reads,
            "cold_writes": self._bits.cold_writes,
        }

    # ------------------------------------------------------------------ bulk
    def reset(self) -> None:
        """Periodic reset: drop every bit (the paper's index rebuild point)."""
        self._bits.clear_all()
        self._roots.clear_all()
        self.mark_all_dirty()

    def total_bits_set(self) -> int:
        return self._bits.count() + self._roots.count()

    def nbytes(self) -> int:
        """Approximate memory footprint of the index in bytes."""
        return self._bits.nbytes() + (len(self._roots) + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DEBI(columns={self.tree.num_columns}, rows={len(self._bits)})"


def _coalesce(indices: set[int]) -> list[tuple[int, int]]:
    """Turn a set of indexes into sorted half-open ``(start, stop)`` runs."""
    if not indices:
        return []
    ordered = sorted(indices)
    runs: list[tuple[int, int]] = []
    start = prev = ordered[0]
    for value in ordered[1:]:
        if value == prev + 1:
            prev = value
            continue
        runs.append((start, prev + 1))
        start = prev = value
    runs.append((start, prev + 1))
    return runs
