"""Standing-query registry: many concurrent queries over one dynamic graph.

The paper's engine answers a single continuous query per stream.  A
matching *service*, however, evaluates many standing queries against the
same evolving graph, and running one :class:`~repro.core.engine.MnemonicEngine`
per query multiplies every per-batch cost by the number of queries: the
graph is mutated N times, N CSR snapshots are exported for the worker
pools, and the same adjacency pools are re-scanned once per query.

This module factors the per-query half of the engine out into a
:class:`QueryRuntime` (tree, matching orders, masks, DEBI, index
manager) and builds a multi-query engine on top of it:

* :class:`QueryRegistry` tracks the standing queries — each with its own
  :class:`~repro.core.api.MatchDefinition`, matching order and result
  sink — registered against one shared :class:`~repro.graph.adjacency.DynamicGraph`.
* :class:`MultiQueryEngine` drives the paper's Algorithm 1 loop once per
  batch for *all* registered queries: one graph mutation pass, one DEBI
  update sweep (each query's index is refreshed from the same already-
  applied edge list), and — with the ``process`` backend — exactly one
  shared-memory snapshot export per enumeration phase, shared by every
  query's work units (see :meth:`~repro.core.parallel.SharedMemoryPool.run_multi`).
* Candidate scans are shared across queries: every enumeration context
  of a batch hands the same *shared pool cache* to
  :meth:`~repro.core.enumeration.EnumerationContext.get_candidates_with_endpoints`,
  so an adjacency partition fetched for one query is reused (and its
  ``candidates_scanned`` cost not re-charged) by every other query that
  anchors at the same ``(vertex, direction, edge label)``.

Per-query results are byte-identical to what N independent engines
would produce: DEBI filtering, duplicate elimination and acceptance all
stay per-query; only the raw adjacency fetch is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.debi import DEBI
from repro.core.enumeration import EmbeddingArena, EnumerationContext, QueryState
from repro.core.filtering import IndexManager
from repro.core.parallel import (
    EnumerationOutcome,
    PoolOwnerMixin,
    SharedMemoryPool,
)
from repro.core.supervisor import PoolSupervisor
from repro.graph.adjacency import DynamicGraph
from repro.query.masking import MaskTable
from repro.query.matching_order import MatchingOrder, build_matching_orders
from repro.query.query_graph import QueryGraph
from repro.query.query_tree import QueryTree
from repro.streams.broker import producing
from repro.streams.events import StreamEvent
from repro.streams.generator import Snapshot, SnapshotGenerator
from repro.streams.sources import ListSource, StreamSource
from repro.utils.validation import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import EngineConfig, RunResult, SnapshotResult
    from repro.core.pipeline import BatchPipeline, CompletedBatch

#: a result sink: called with ``(query_id, SnapshotResult)`` after every snapshot
ResultSink = Callable[[int, "SnapshotResult"], None]


# ---------------------------------------------------------------------- per-query runtime
@dataclass
class QueryRuntime:
    """The per-query half of an engine: precomputation plus index state.

    Built once per (query, match definition) pair by
    :func:`build_query_runtime`; owned either by a single
    :class:`~repro.core.engine.MnemonicEngine` or by one registry slot of
    a :class:`MultiQueryEngine`.
    """

    query: QueryGraph
    match_def: MatchDefinition
    tree: QueryTree
    orders: dict[int, MatchingOrder]
    masks: MaskTable
    debi: DEBI
    index_manager: IndexManager
    query_state: QueryState
    use_degree_filter: bool = True
    kernel: str = "columnar"
    #: reusable embedding arena for the columnar kernel's serial path
    arena: "EmbeddingArena | None" = None

    def make_context(
        self,
        graph: DynamicGraph,
        batch_edge_ids: set[int],
        positive: bool,
        shared_pool_cache: dict | None = None,
        spilled_edge_ids: set[int] | None = None,
        on_spilled_access: Callable[[int], None] | None = None,
    ) -> EnumerationContext:
        """Build an enumeration context over the live graph for one batch."""
        # The f2/f3 label-degree rules require distinct data edges per query
        # edge, which only holds under injective matching; for homomorphism a
        # single data edge may witness several query edges, so the filter
        # would wrongly prune valid embeddings.
        use_degree = self.use_degree_filter and self.match_def.injective
        degree_filter = self.index_manager.degree_ok if use_degree else None
        return EnumerationContext(
            query=self.query,
            tree=self.tree,
            graph=graph,
            debi=self.debi,
            orders=self.orders,
            masks=self.masks,
            match_def=self.match_def,
            batch_edge_ids=batch_edge_ids,
            positive=positive,
            degree_filter=degree_filter,
            spilled_edge_ids=spilled_edge_ids,
            on_spilled_access=on_spilled_access,
            shared_pool_cache=shared_pool_cache,
            kernel=self.kernel,
            arena=self.arena,
        )


def build_query_runtime(
    query: QueryGraph,
    match_def: MatchDefinition | None,
    graph: DynamicGraph,
    use_degree_filter: bool = True,
    root: int | None = None,
    rebuild_index: bool = True,
    kernel: str = "columnar",
) -> QueryRuntime:
    """InitializeIndex for one query over ``graph`` (tree, orders, masks, DEBI).

    When the graph is non-empty the index is rebuilt immediately, so a
    query registered mid-stream starts consistent with the live graph.
    ``rebuild_index=False`` skips that pass; checkpoint recovery uses it
    because the DEBI content is about to be overwritten from the
    checkpointed word buffers anyway.
    """
    query.validate()
    match_def = match_def or DefaultMatchDefinition()
    data_label_freq: dict[int, int] = {}
    for vertex in graph.vertices():
        label = graph.vertex_label(vertex)
        data_label_freq[label] = data_label_freq.get(label, 0) + 1
    tree = QueryTree(query, root=root, data_label_frequencies=data_label_freq or None)
    orders = build_matching_orders(query, tree)
    masks = MaskTable(query, tree)
    debi = DEBI(tree)
    index_manager = IndexManager(
        query, tree, graph, debi, match_def, use_degree_filter=use_degree_filter
    )
    if rebuild_index and graph.num_edges:
        index_manager.rebuild()
    query_state = QueryState.build(
        query=query,
        tree=tree,
        orders=orders,
        masks=masks,
        match_def=match_def,
        use_degree_filter=use_degree_filter,
        kernel=kernel,
    )
    return QueryRuntime(
        query=query,
        match_def=match_def,
        tree=tree,
        orders=orders,
        masks=masks,
        debi=debi,
        index_manager=index_manager,
        query_state=query_state,
        use_degree_filter=use_degree_filter,
        kernel=kernel,
        arena=EmbeddingArena() if kernel == "columnar" else None,
    )


# ---------------------------------------------------------------------- registry
@dataclass
class RegisteredQuery:
    """One standing query: its runtime, sink, and accumulated results."""

    query_id: int
    name: str
    runtime: QueryRuntime
    sink: ResultSink | None
    run_result: "RunResult"


def resolve_deletions(graph: DynamicGraph, events: Sequence[StreamEvent]) -> list[int]:
    """Resolve deletion events to concrete live edge ids.

    Among parallel edges the instance with the event's timestamp is
    preferred (sliding windows expire the oldest instance); otherwise the
    latest one wins.  Shared by :class:`~repro.core.engine.MnemonicEngine`
    and :class:`MultiQueryEngine` so the two engines can never diverge on
    which edge a deletion hits.
    """
    doomed_ids: list[int] = []
    doomed_set: set[int] = set()
    for event in events:
        ids = [
            i for i in graph.find_edges(event.src, event.dst, event.label)
            if i not in doomed_set
        ]
        if not ids:
            raise ConfigurationError(
                f"deletion of ({event.src}, {event.dst}, {event.label}) "
                "does not match a live edge"
            )
        preferred = [i for i in ids if graph.edge(i).timestamp == event.timestamp]
        chosen = preferred[0] if preferred else ids[-1]
        doomed_ids.append(chosen)
        doomed_set.add(chosen)
    return doomed_ids


class QueryRegistry:
    """The set of standing queries registered against one shared graph.

    Registration order is preserved (it fixes the deterministic order in
    which shared candidate scans are charged on the serial path; pool
    workers each pay for their own first touch instead).  ``version``
    increments on every membership change so pool owners know when their
    worker-side query states are stale.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        use_degree_filter: bool = True,
        kernel: str = "columnar",
    ) -> None:
        self.graph = graph
        self.use_degree_filter = use_degree_filter
        self.kernel = kernel
        self._queries: dict[int, RegisteredQuery] = {}
        self._next_id = 0
        #: bumped on register/unregister; consumed by the pool owner
        self.version = 0

    def register(
        self,
        query: QueryGraph,
        match_def: MatchDefinition | None = None,
        name: str | None = None,
        root: int | None = None,
        sink: ResultSink | None = None,
        rebuild_index: bool = True,
    ) -> int:
        """Add a standing query; returns its query id."""
        from repro.core.engine import RunResult

        runtime = build_query_runtime(
            query, match_def, self.graph,
            use_degree_filter=self.use_degree_filter, root=root,
            rebuild_index=rebuild_index, kernel=self.kernel,
        )
        query_id = self._next_id
        self._next_id += 1
        self._queries[query_id] = RegisteredQuery(
            query_id=query_id,
            name=name or f"q{query_id}",
            runtime=runtime,
            sink=sink,
            run_result=RunResult(),
        )
        self.version += 1
        return query_id

    def unregister(self, query_id: int) -> "RunResult":
        """Remove a standing query; returns everything it produced while registered."""
        try:
            registered = self._queries.pop(query_id)
        except KeyError:
            raise ConfigurationError(f"unknown query id {query_id}") from None
        self.version += 1
        return registered.run_result

    # ------------------------------------------------------------------ lookup
    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._queries

    def ids(self) -> list[int]:
        return list(self._queries)

    def get(self, query_id: int) -> RegisteredQuery:
        try:
            return self._queries[query_id]
        except KeyError:
            raise ConfigurationError(f"unknown query id {query_id}") from None

    def items(self) -> Iterator[tuple[int, RegisteredQuery]]:
        return iter(list(self._queries.items()))

    def query_states(self) -> dict[int, QueryState]:
        """The picklable per-query state shipped to pool workers at spawn."""
        return {qid: rq.runtime.query_state for qid, rq in self._queries.items()}


# ---------------------------------------------------------------------- result shapes
@dataclass
class MultiSnapshotResult:
    """What the multi-query engine produced for one snapshot, per query."""

    number: int
    num_insertions: int
    num_deletions: int
    #: shared graph-mutation time for the batch (paid once, not per query)
    graph_update_seconds: float = 0.0
    #: shared enumeration wall-clock for the batch; the per-query
    #: ``enumerate_seconds`` carry attributable busy time instead, so they
    #: do not sum to N times the wall on the pool backend
    enumerate_wall_seconds: float = 0.0
    #: end-to-end latency (stream clock): first event arrival -> results
    #: available for *all* queries (broker-fed streams only)
    ingest_latency_seconds: float | None = None
    per_query: dict[int, "SnapshotResult"] = field(default_factory=dict)

    @property
    def candidates_scanned(self) -> int:
        return sum(r.candidates_scanned for r in self.per_query.values())

    @property
    def total_embeddings(self) -> int:
        return sum(r.total_embeddings for r in self.per_query.values())


@dataclass
class MultiRunResult:
    """Aggregated output of one multi-query streaming run."""

    snapshots: list[MultiSnapshotResult] = field(default_factory=list)
    per_query: dict[int, "RunResult"] = field(default_factory=dict)

    def add(self, snapshot: MultiSnapshotResult) -> None:
        from repro.core.engine import RunResult

        self.snapshots.append(snapshot)
        for qid, result in snapshot.per_query.items():
            self.per_query.setdefault(qid, RunResult()).add(result)

    @property
    def total_candidates_scanned(self) -> int:
        return sum(s.candidates_scanned for s in self.snapshots)

    def snapshot_latencies(self) -> list[float]:
        """Per-snapshot ingest-to-result latencies, where known (stream order)."""
        return [
            s.ingest_latency_seconds
            for s in self.snapshots
            if s.ingest_latency_seconds is not None
        ]

    def latency_summary(self) -> dict[str, float] | None:
        """count/mean/p50/p95/p99/max rollup over the snapshot latencies."""
        from repro.utils.stats import latency_summary

        return latency_summary(self.snapshot_latencies())

    @property
    def total_positive(self) -> int:
        return sum(r.num_positive for s in self.snapshots for r in s.per_query.values())

    @property
    def total_negative(self) -> int:
        return sum(r.num_negative for s in self.snapshots for r in s.per_query.values())


# ---------------------------------------------------------------------- the engine
class MultiQueryEngine(PoolOwnerMixin):
    """A shared-everything engine evaluating many standing queries per batch.

    Compared with one :class:`~repro.core.engine.MnemonicEngine` per
    query, a batch costs:

    * **one** graph mutation pass instead of N,
    * **one** DEBI update sweep (per-query index refresh over the same
      already-applied edge batch — no repeated graph work),
    * **one** shared-memory snapshot export instead of N (``process``
      backend; all queries' work units are scheduled onto one worker
      pool with per-query result routing),
    * shared candidate scans: adjacency pools fetched once per batch and
      reused by every query anchoring at the same vertex/label.

    Use :meth:`register` / :meth:`unregister` at any point, including
    mid-stream; a freshly registered query is indexed against the live
    graph before its first batch.  The engine is a context manager, like
    the single-query engine.
    """

    def __init__(
        self,
        config: "EngineConfig | None" = None,
        graph: DynamicGraph | None = None,
        _recovered=None,
    ) -> None:
        from repro.core.engine import EngineConfig
        from repro.core.pipeline import BatchPipeline
        from repro.storage.runtime import EngineStorage

        self.config = config or EngineConfig()
        if self.config.stream.in_memory_window is not None:
            raise ConfigurationError(
                "the multi-query engine does not support the external edge store; "
                "use a dedicated MnemonicEngine for spilling workloads"
            )
        self.graph = graph or DynamicGraph(recycle_edge_ids=self.config.recycle_edge_ids)
        self.registry = QueryRegistry(
            self.graph, use_degree_filter=self.config.use_degree_filter,
            kernel=self.config.kernel,
        )
        self._storage = None
        self.recovery_info: dict | None = None
        if self.config.storage is not None:
            if _recovered is not None:
                self._storage = _recovered.storage
            else:
                self._storage = EngineStorage.create(self.config.storage, kind="multi")
        self._snapshot_counter = 0
        self._adopt_pool(None)
        self._pool_version = -1
        self._exports_before_pool = 0
        self._closed = False
        # Fault supervision: the factory respawns a pool over the *current*
        # registry membership (respawn after a fault serves the same queries
        # the broken pool did — membership changes go through _ensure_pool).
        self._supervisor = PoolSupervisor(
            self.config.fault,
            lambda: SharedMemoryPool.create_multi(
                self.registry.query_states(), self.config.parallel
            ),
        )
        #: per-batch footprints captured at mutation time (see engine hook)
        self._footprints: dict[int, tuple[int, int, dict[int, int]]] = {}
        self._pipeline = BatchPipeline(
            self, mode=self.config.pipeline, fallback="simple"
        )
        # A fresh durable engine writes "checkpoint 0" (empty registry);
        # REGISTER/UNREGISTER journal records track membership from there.
        if self._storage is not None and _recovered is None:
            self._storage.checkpoint_now(self._checkpoint_state)

    # ------------------------------------------------------------------ pipeline counters
    @property
    def enumeration_phases_with_units(self) -> int:
        """Enumeration phases (insert or delete half of a batch) with >= 1 unit."""
        return self._pipeline.enumeration_phases_with_units

    @property
    def pool_enumeration_phases(self) -> int:
        """Phases dispatched to the shared pool — each publishes exactly one
        snapshot, which is what the perf_smoke sharing gate checks."""
        return self._pipeline.pool_enumeration_phases

    # ------------------------------------------------------------------ registration
    def register(
        self,
        query: QueryGraph,
        match_def: MatchDefinition | None = None,
        name: str | None = None,
        root: int | None = None,
        sink: ResultSink | None = None,
    ) -> int:
        """Register a standing query against the live graph; returns its id."""
        query_id = self.registry.register(
            query, match_def=match_def, name=name, root=root, sink=sink
        )
        self._attach_storage_to_query(query_id)
        if self._storage is not None:
            registered = self.registry.get(query_id)
            self._storage.append_register(query_id, {
                "query_id": query_id,
                "name": registered.name,
                "query": query,
                "match_def": registered.runtime.match_def,
                # the *resolved* root, so a replayed registration builds the
                # identical query tree regardless of label frequencies
                "root": registered.runtime.tree.root,
            })
        return query_id

    def _attach_storage_to_query(self, query_id: int) -> None:
        """Move a freshly built runtime's DEBI onto the cold tier if configured."""
        if self._storage is None or self.config.storage.debi_hot_rows is None:
            return
        runtime = self.registry.get(query_id).runtime
        runtime.debi.enable_spill(
            self._storage.debi_directory(query_id),
            hot_rows=self.config.storage.debi_hot_rows,
            segment_rows=self.config.storage.debi_segment_rows,
        )

    def unregister(self, query_id: int) -> "RunResult":
        """Drop a standing query; returns its accumulated results."""
        result = self.registry.unregister(query_id)
        if self._storage is not None:
            self._storage.append_unregister(query_id)
        return result

    def attach_sink(self, query_id: int, sink: ResultSink | None) -> None:
        """(Re)attach a result sink — sinks are not persisted across recovery."""
        self.registry.get(query_id).sink = sink

    # ------------------------------------------------------------------ lifecycle
    @property
    def snapshot_exports(self) -> int:
        """Total shared-memory snapshot publications over the engine lifetime.

        Includes pools the supervisor retired after faults, so the count
        stays monotonic across respawns.
        """
        current = self._pool.publish_count if self._pool is not None else 0
        return (
            self._exports_before_pool
            + self._supervisor.retired_publish_count
            + current
        )

    def close(self) -> None:
        """Release the worker pool (exception-safe and idempotent)."""
        self._closed = True
        if self._pool is not None and self._pool.usable:
            # A run abandoned mid-stream may still have dispatched epochs;
            # join them before the segments are unlinked.
            self._pipeline.flush()
        self._release_pool()
        if self._storage is not None:
            self._storage.close()

    def _release_pool(self) -> None:
        pool = self._detach_pool()
        if pool is not None:
            self._exports_before_pool += pool.publish_count
            pool.close()
        self._exports_before_pool += self._supervisor.release_retired()

    def __enter__(self) -> "MultiQueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except Exception:
            # A teardown failure must not mask the in-flight exception.
            if exc_type is None:
                raise

    def _ensure_pool(self) -> SharedMemoryPool | None:
        """(Re)spawn the shared pool when the registry changed since the last batch.

        Workers receive every query's :class:`QueryState` at spawn, so a
        register/unregister makes the running pool stale; it is closed
        and replaced before the next enumeration phase.
        """
        parallel = self.config.parallel
        if self._closed or parallel.backend != "process" or parallel.num_workers <= 1:
            return None
        if len(self.registry) == 0:
            return None
        if self._supervisor.degraded_backend() is not None:
            # Fault-degraded engines stay off the process backend even
            # across registry churn; the ladder is one-way per engine.
            return None
        if self._pool_version == self.registry.version:
            # Same membership as the last attempt: reuse the pool, or stay on
            # the fallback path if that attempt failed or the pool broke —
            # retrying the full worker spawn every phase would pay the spawn
            # cost (and emit the failure warning) once per batch.
            pool = self._pool
            if pool is not None and not pool.usable:
                self._release_pool()
                return None
            return pool
        self._release_pool()
        pool = self._supervisor.note_spawn(
            SharedMemoryPool.create_multi(self.registry.query_states(), parallel)
        )
        self._adopt_pool(pool)
        self._pool_version = self.registry.version
        return pool

    # ------------------------------------------------------------------ stream API
    def initialize_stream(self, source: StreamSource | Sequence[StreamEvent]) -> SnapshotGenerator:
        """Wrap ``source`` in a snapshot generator using the engine's stream config."""
        if isinstance(source, (list, tuple)):
            source = ListSource(source)
        return SnapshotGenerator(source, self.config.stream)

    def load_initial(self, events: Iterable[StreamEvent | tuple]) -> int:
        """Load an initial graph (insertions only) and index every query for it."""
        from repro.core.engine import MnemonicEngine

        coerced = [MnemonicEngine._coerce_insert(event) for event in events]
        if coerced and self.config.ingest == "columnar" and hasattr(
            self.graph, "apply_insert_columns"
        ):
            from repro.streams.events import EventColumns, EventKind

            columns = EventColumns.from_events(EventKind.INSERT, coerced)
            new_ids = self.graph.apply_insert_columns(
                columns.src, columns.dst, columns.label, columns.timestamp,
                columns.src_label, columns.dst_label,
            )
            for _, registered in self.registry.items():
                registered.runtime.index_manager.handle_insert_columns(
                    new_ids, columns.src, columns.dst, columns.label
                )
        else:
            new_ids = [
                self.graph.add_edge(
                    event.src, event.dst, event.label, event.timestamp,
                    src_label=event.src_label, dst_label=event.dst_label,
                )
                for event in coerced
            ]
            for _, registered in self.registry.items():
                registered.runtime.index_manager.handle_insertions(new_ids)
        if self._storage is not None:
            self._storage.note_initial(coerced)
        return len(new_ids)

    def run(self, source: StreamSource | Sequence[StreamEvent]) -> MultiRunResult:
        """Process the whole stream for every registered query (Algorithm 1, shared).

        With ``config.pipeline == "pipelined"`` the shared
        :class:`~repro.core.pipeline.BatchPipeline` overlaps batch k+1's
        mutation/DEBI/publish work with batch k's pool enumeration;
        per-query results are identical to the serial mode either way.

        A :class:`~repro.streams.broker.StreamBroker` source is driven
        end to end, exactly as in
        :meth:`~repro.core.engine.MnemonicEngine.run`: its producer
        thread is started so arrival overlaps processing, snapshots are
        stamped with ingest-to-result latency, and an abandoned run
        stops the producer.
        """
        generator = self.initialize_stream(source)
        with producing(source):
            result = MultiRunResult()
            for batch in self._pipeline.run_stream(generator):
                result.add(self._deliver(self._result_from_batch(batch)))
            return result

    def process_snapshot(self, snapshot: Snapshot) -> MultiSnapshotResult:
        """Apply one snapshot for all queries: insert batch first, then delete batch."""
        batch = self._pipeline.process_batch(
            snapshot.number, snapshot.insertions, snapshot.deletions
        )
        self.pipeline_batch_applied(batch)
        return self._deliver(self._result_from_batch(batch))

    def batch_inserts(self, events: Iterable[StreamEvent | tuple]) -> MultiSnapshotResult:
        """Insert a batch of edges; returns the newly formed embeddings per query."""
        from repro.core.engine import MnemonicEngine

        events = [MnemonicEngine._coerce_insert(e) for e in events]
        batch = self._pipeline.process_batch(self._snapshot_counter, events, [])
        self.pipeline_batch_applied(batch)
        return self._deliver(self._result_from_batch(batch))

    def batch_deletes(self, events: Iterable[StreamEvent | tuple]) -> MultiSnapshotResult:
        """Delete a batch of edges; returns the destroyed embeddings per query."""
        coerced = [
            e if isinstance(e, StreamEvent) else StreamEvent.delete(*e) for e in events
        ]
        batch = self._pipeline.process_batch(self._snapshot_counter, [], coerced)
        self.pipeline_batch_applied(batch)
        return self._deliver(self._result_from_batch(batch))

    # ------------------------------------------------------------------ pipeline host hooks
    def pipeline_slots(self) -> dict[int, QueryRuntime]:
        return {qid: registered.runtime for qid, registered in self.registry.items()}

    def pipeline_acquire_pool(self, pipeline: "BatchPipeline") -> SharedMemoryPool | None:
        if self._pool is not None and self._pool_version != self.registry.version:
            # The registry changed: the running pool is about to be replaced.
            # Its in-flight epochs must finish before _ensure_pool closes it.
            pipeline.flush()
        return self._ensure_pool()

    def pipeline_pool_broken(self) -> SharedMemoryPool | None:
        # Retire the broken pool (workers killed, frozen segments kept for
        # redispatch) and respawn under the supervisor's budget.  The pool
        # version is left alone: on respawn the replacement serves the same
        # membership; on budget exhaustion the stale version plus the
        # degraded level keep _ensure_pool from a respawn storm.
        replacement = self._supervisor.replace(self._detach_pool())
        return self._adopt_pool(replacement)

    def pipeline_degraded_backend(self) -> str | None:
        return self._supervisor.degraded_backend()

    def pipeline_recovery_finished(self, redispatched: int, recovered: int) -> None:
        self._supervisor.note_recovery(redispatched, recovered)
        self._exports_before_pool += self._supervisor.release_retired()

    def pipeline_thread_backend_failed(self) -> None:
        self._supervisor.thread_backend_failed()

    def fault_stats(self) -> dict[str, object]:
        """Supervision counters: faults, respawns, degradations, level."""
        stats = self._supervisor.stats.as_dict()
        stats["level"] = self._supervisor.level
        return stats

    def pipeline_make_context(
        self,
        runtime: QueryRuntime,
        batch_edge_ids: set[int],
        positive: bool,
        shared_pool_cache: dict | None,
    ) -> EnumerationContext:
        return runtime.make_context(
            self.graph, batch_edge_ids, positive, shared_pool_cache=shared_pool_cache
        )

    def pipeline_edge_inserted(self, edge_id: int) -> None:
        pass

    def pipeline_edges_inserted(self, edge_ids) -> None:
        pass

    def pipeline_edge_deleted(self, edge_id: int) -> None:
        pass

    def pipeline_batch_applied(self, batch: "CompletedBatch") -> None:
        """All of a batch's mutations are applied (enumeration may still run).

        End-of-batch footprints (graph size, per-query DEBI bits) are
        captured here, at mutation time: a pipelined batch completes
        only after later batches' mutations, so reading the live state
        at delivery time would misreport.
        """
        self._footprints[batch.number] = (
            self.graph.num_edges,
            self.graph.num_placeholders,
            {
                qid: registered.runtime.debi.total_bits_set()
                for qid, registered in self.registry.items()
            },
        )
        self.graph.stats.sample_snapshot(
            batch.number, self.graph.num_placeholders, self.graph.num_edges
        )
        self._snapshot_counter += 1
        if self._storage is not None:
            self._storage.note_applied()

    # ------------------------------------------------------------------ result assembly
    def _result_from_batch(self, batch: "CompletedBatch") -> MultiSnapshotResult:
        """Map a completed pipeline batch onto the multi-query result shape."""
        from repro.core.engine import SnapshotResult

        from repro.core.pipeline import ingest_latency

        multi = MultiSnapshotResult(
            number=batch.number,
            num_insertions=batch.num_insertions,
            num_deletions=batch.num_deletions,
            ingest_latency_seconds=ingest_latency(batch),
        )
        footprint = self._footprints.pop(batch.number, None)
        # Row membership is decided at *batch* time, not delivery time: in
        # pipelined mode a query registered by a sink while this batch was
        # in flight must not receive a spurious empty row for it.  The
        # footprint's DEBI-bits map records exactly the queries registered
        # when the batch's mutations were applied.
        qids = set(footprint[2]) if footprint is not None else set(self.registry.ids())
        for phase in batch.phases():
            qids.update(phase.per_query)
        for qid in sorted(qids):
            multi.per_query[qid] = SnapshotResult(
                number=batch.number,
                num_insertions=batch.num_insertions,
                num_deletions=batch.num_deletions,
                ingest_latency_seconds=multi.ingest_latency_seconds,
            )
        collect = self.config.collect_embeddings
        for phase in batch.phases():
            multi.graph_update_seconds += phase.graph_update_seconds
            multi.enumerate_wall_seconds += phase.enumerate_wall_seconds
            for qid, query_phase in phase.per_query.items():
                result = multi.per_query[qid]
                outcome = query_phase.outcome
                result.filter_seconds += query_phase.filter_seconds
                result.filter_traversals += query_phase.filter_traversals
                result.work_units += query_phase.work_units
                result.candidates_scanned += query_phase.candidates_scanned
                result.enumerate_seconds += self._attributable_seconds(outcome)
                result.enumeration_outcomes.append(outcome)
                self._supervisor.record_outcome(outcome)
                if phase.positive:
                    result.num_positive += outcome.num_embeddings
                    if collect:
                        result.positive_embeddings.extend(outcome.embeddings)
                else:
                    result.num_negative += outcome.num_embeddings
                    if collect:
                        result.negative_embeddings.extend(outcome.embeddings)
        if footprint is not None:
            live_edges, placeholders, debi_bits = footprint
            for qid, result in multi.per_query.items():
                result.live_edges = live_edges
                result.edge_placeholders = placeholders
                result.debi_bits = debi_bits.get(qid, 0)
        if self._storage is not None:
            # Seal at delivery, in stream order (see MnemonicEngine).
            self._storage.seal_epoch(
                batch.number,
                batch.insert_columns or batch.insert_events,
                batch.delete_columns or batch.delete_events,
                self._checkpoint_state,
            )
        return multi

    def _deliver(self, multi: MultiSnapshotResult) -> MultiSnapshotResult:
        """Record per-query results and fire sinks (still-registered queries only)."""
        for qid, result in multi.per_query.items():
            if qid not in self.registry:  # unregistered by a sink mid-batch
                continue
            registered = self.registry.get(qid)
            registered.run_result.add(result)
            if registered.sink is not None:
                registered.sink(qid, result)
        return multi

    @staticmethod
    def _attributable_seconds(outcome: EnumerationOutcome) -> float:
        """Per-query enumeration time: worker busy time, not the shared wall.

        On the pool backend every query's outcome shares one phase wall;
        charging it to each query would make the per-query timings sum to
        N times the actual elapsed time.  Busy time is attributable on
        every backend (for serial outcomes it is the per-unit time sum).
        """
        return sum(stats.busy_seconds for stats in outcome.worker_stats)

    # ------------------------------------------------------------------ durability
    @classmethod
    def open(cls, directory, config: "EngineConfig | None" = None) -> "MultiQueryEngine":
        """Recover a durable multi-query engine from ``directory``.

        Registered queries are rebuilt from the checkpoint with their
        original query ids; REGISTER/UNREGISTER journal records replay
        membership changes made after the checkpoint.  Result sinks are
        *not* persisted — reattach them with :meth:`attach_sink`.
        """
        from dataclasses import replace

        from repro.core.engine import EngineConfig
        from repro.storage.config import StorageConfig
        from repro.storage.runtime import EngineStorage

        config = config or EngineConfig()
        storage_cfg = config.storage or StorageConfig(directory=directory)
        config = replace(config, storage=replace(storage_cfg, directory=directory))
        recovered = EngineStorage.open_existing(config.storage, kind="multi")
        # open_existing may fold persisted cold-tier geometry into the config.
        config = replace(config, storage=recovered.storage.config)
        state = recovered.checkpoint_state
        engine = cls(config=config, graph=state["graph"], _recovered=recovered)
        for entry in state["queries"]:
            engine._restore_query(entry)
        engine.registry._next_id = state["next_id"]
        engine._snapshot_counter = state["snapshot_counter"]
        engine._replay_journal(recovered)
        recovered.storage.finish_recovery(recovered.info["journal_valid_bytes"])
        # Re-checkpoint the recovered state so the next restart starts here.
        recovered.storage.checkpoint_now(engine._checkpoint_state)
        engine.recovery_info = recovered.info
        return engine

    def _restore_query(self, entry: dict) -> None:
        """Re-register one checkpointed query under its original id."""
        self.registry._next_id = entry["query_id"]
        query_id = self.registry.register(
            entry["query"], match_def=entry["match_def"], name=entry["name"],
            root=entry["root"], rebuild_index=False,
        )
        assert query_id == entry["query_id"]
        self._attach_storage_to_query(query_id)
        self.registry.get(query_id).runtime.debi.restore_buffers(**entry["debi"])

    def _replay_journal(self, recovered) -> None:
        from repro.storage.journal import RecordKind
        from repro.storage.recovery import (
            events_from_tuples,
            replay_epoch,
            replay_insertions,
        )

        for record in recovered.records:
            slots = {qid: rq.runtime for qid, rq in self.registry.items()}
            if record.kind is RecordKind.INITIAL:
                replay_insertions(self.graph, slots, events_from_tuples(record.data()))
            elif record.kind is RecordKind.EPOCH:
                inserts, deletes = record.data()
                replay_epoch(
                    self.graph, slots,
                    events_from_tuples(inserts), events_from_tuples(deletes),
                )
            elif record.kind is RecordKind.REGISTER:
                entry = record.data()
                # A replayed registration rebuilds its index against the
                # replayed graph — the same state the original saw (the
                # incremental-equals-rebuild invariant covers any batches
                # sealed after the registration).
                self.registry._next_id = entry["query_id"]
                query_id = self.register(
                    entry["query"], match_def=entry["match_def"],
                    name=entry["name"], root=entry["root"],
                )
                assert query_id == entry["query_id"]
            elif record.kind is RecordKind.UNREGISTER:
                self.registry.unregister(record.data())

    def _checkpoint_state(self) -> dict:
        """Snapshot graph + registry metadata + every query's DEBI buffers."""
        import numpy as np

        queries = []
        for query_id, registered in self.registry.items():
            buffers = registered.runtime.debi.export_buffers()
            queries.append({
                "query_id": query_id,
                "name": registered.name,
                "query": registered.runtime.query,
                "match_def": registered.runtime.match_def,
                "root": registered.runtime.tree.root,
                "debi": {
                    "rows": np.array(buffers["rows"], copy=True),
                    "num_rows": buffers["num_rows"],
                    "width": buffers["width"],
                    "roots": np.array(buffers["roots"], copy=True),
                    "root_bits": buffers["root_bits"],
                },
            })
        return {
            "kind": "multi",
            "graph": self.graph,
            "next_id": self.registry._next_id,
            "snapshot_counter": self._snapshot_counter,
            "queries": queries,
        }

    def checkpoint(self) -> None:
        """Force a checkpoint now (requires a quiescent engine)."""
        if self._storage is None:
            raise ConfigurationError("engine has no storage attached")
        self._pipeline.flush()
        if not self._storage.quiescent():
            raise ConfigurationError(
                "checkpoint requires a quiescent engine (every applied batch "
                "delivered); mid-run checkpoints are taken automatically at "
                "sealed epoch boundaries"
            )
        self._storage.checkpoint_now(self._checkpoint_state)

    def storage_counters(self) -> dict:
        """Journal/checkpoint counters plus per-engine spill totals."""
        if self._storage is None:
            return {}
        counters = self._storage.counters()
        spilled_rows = disk_bytes = hot_bytes = cold_reads = cold_writes = 0
        any_spill = False
        for _, registered in self.registry.items():
            spill = registered.runtime.debi.spill_stats()
            if spill is None:
                continue
            any_spill = True
            spilled_rows += spill["spilled_rows"]
            disk_bytes += spill["debi_disk_bytes"]
            hot_bytes += spill["debi_hot_bytes"]
            cold_reads += spill["cold_reads"]
            cold_writes += spill["cold_writes"]
        if any_spill:
            counters.update({
                "spilled_rows": spilled_rows,
                "debi_disk_bytes": disk_bytes,
                "debi_hot_bytes": hot_bytes,
                "cold_reads": cold_reads,
                "cold_writes": cold_writes,
            })
        return counters
