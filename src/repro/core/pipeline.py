"""The shared batch-execution pipeline: one loop body for every engine.

Historically :class:`~repro.core.engine.MnemonicEngine` and
:class:`~repro.core.registry.MultiQueryEngine` each carried their own
copy of the per-batch loop (apply insertions → update DEBI → enumerate;
resolve deletions → enumerate the doomed embeddings → apply deletions →
update DEBI).  This module is now the only implementation; the engines
supply primitive hooks (graph mutators, context construction, pool
lifecycle) through the :class:`PipelineHost` protocol and consume
:class:`CompletedBatch` records.

Two execution modes
-------------------
``serial`` (default)
    Today's behaviour: every phase runs to completion before the next
    graph mutation.  Bit-identical to the historical engines.

``pipelined``
    The overlap mode motivating the refactor.  Pool workers only ever
    read the *published* shared-memory epoch, never the live graph, so
    once a phase's snapshot is published and its work units dispatched
    (:meth:`~repro.core.parallel.SharedMemoryPool.dispatch`), the
    coordinator is free to apply batch ``k + 1``'s mutations, update
    DEBI and stage the next snapshot while the workers are still
    enumerating batch ``k``.  Results are joined lazily
    (:meth:`~repro.core.parallel.SharedMemoryPool.drain`), oldest epoch
    first; the double-buffered snapshot writer bounds the look-ahead to
    two epochs in flight.

    Deletion semantics are preserved exactly: a delete phase publishes
    its snapshot *before* the edges are removed and DEBI rows cleared,
    so the workers enumerate the doomed embeddings against the
    pre-delete epoch — the same state the serial mode sees — and the
    result sets stay bit-identical.

    Phases that cannot go through the pool (no pool, too small to
    amortise a publication, spill callbacks) run inline at their stream
    position, which trivially preserves ordering.

If the pool breaks mid-pipeline the already-dispatched epochs are
recovered from their *frozen* published segments, which outlive the
broken pool (the supervisor terminates it without unlinking them).
Preferably the host's supervisor provides a replacement pool and the
epochs are **redispatched**: the new workers attach to the frozen
segments by name and re-run exactly the same units.  When no
replacement is available (retry budget exhausted, or supervision is
off) the coordinator attaches to the segments itself and re-enumerates
the dispatched units serially.  Either way the live graph — which may
already carry later batches' mutations — is never touched, so the
results stay bit-identical to a fault-free run.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, Sequence

import numpy as np

from repro.core.parallel import (
    DispatchedEpoch,
    EnumerationOutcome,
    PoolBrokenError,
    SharedMemoryPool,
    _run_serial,
    _run_threads,
    run_enumeration,
)
from repro.core.shared_snapshot import SnapshotAttachment
from repro.utils.validation import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import EngineConfig
    from repro.core.enumeration import EnumerationContext, WorkUnit
    from repro.core.registry import QueryRuntime
    from repro.graph.adjacency import DynamicGraph
    from repro.streams.events import StreamEvent
    from repro.streams.generator import Snapshot

#: the supported execution modes of :class:`BatchPipeline`
PIPELINE_MODES = ("serial", "pipelined")


class PipelineHost(Protocol):
    """What an engine must provide for :class:`BatchPipeline` to drive it.

    The pipeline owns the batch-loop *sequencing*; the host supplies the
    engine-specific primitives (which never contain loop logic of their
    own).
    """

    graph: "DynamicGraph"
    config: "EngineConfig"

    def pipeline_slots(self) -> "dict[int, QueryRuntime]":
        """The per-query runtimes to evaluate this batch (id -> runtime)."""
        ...

    def pipeline_acquire_pool(self, pipeline: "BatchPipeline") -> "SharedMemoryPool | None":
        """The shared-memory pool to enumerate on, or None for the fallbacks.

        A host that may *replace* its pool (multi-query registry churn)
        must call ``pipeline.flush()`` before closing the old pool, so
        no in-flight epoch is orphaned.
        """
        ...

    def pipeline_pool_broken(self) -> "SharedMemoryPool | None":
        """The pool failed: retire it and return a replacement, or None.

        Hosts with a :class:`~repro.core.supervisor.PoolSupervisor` route
        this to :meth:`~repro.core.supervisor.PoolSupervisor.replace`,
        which terminates the broken pool (keeping its frozen segments
        alive for redispatch) and respawns under the retry budget.
        Returning None means no replacement: the pipeline recovers the
        in-flight epochs parent-side and stops using the pool.
        """
        ...

    def pipeline_degraded_backend(self) -> str | None:
        """None while healthy, else the degradation-ladder rung to run on
        (``"thread"`` or ``"serial"``)."""
        ...

    def pipeline_recovery_finished(self, redispatched: int, recovered: int) -> None:
        """Recovery accounting: epochs redispatched to a replacement pool
        vs recovered parent-side."""
        ...

    def pipeline_thread_backend_failed(self) -> None:
        """The degraded thread backend also faulted; the host should step
        down to serial."""
        ...

    def pipeline_make_context(
        self,
        runtime: "QueryRuntime",
        batch_edge_ids: set[int],
        positive: bool,
        shared_pool_cache: dict | None,
    ) -> "EnumerationContext":
        """Build one query's enumeration context over the live graph."""
        ...

    def pipeline_edge_inserted(self, edge_id: int) -> None:
        """Post-insert bookkeeping hook (e.g. external-store insertion order)."""
        ...

    def pipeline_edges_inserted(self, edge_ids) -> None:
        """Bulk :meth:`pipeline_edge_inserted` for the columnar path."""
        for edge_id in edge_ids:
            self.pipeline_edge_inserted(edge_id)

    def pipeline_edge_deleted(self, edge_id: int) -> None:
        """Post-delete bookkeeping hook (e.g. spilled-id set maintenance)."""
        ...

    def pipeline_batch_applied(self, batch: "CompletedBatch") -> None:
        """A batch's mutations are fully applied (enumeration may still be in flight).

        Called by :meth:`BatchPipeline.run_stream` in stream order, at
        mutation time — the hook where end-of-batch footprints must be
        captured, because in pipelined mode the batch *completes* only
        after later batches have already mutated the graph.
        """
        ...


# ---------------------------------------------------------------------- results
@dataclass
class QueryPhaseOutcome:
    """One query's share of one enumeration phase."""

    filter_seconds: float = 0.0
    filter_traversals: int = 0
    work_units: int = 0
    candidates_scanned: int = 0
    outcome: EnumerationOutcome | None = None


@dataclass
class PhaseOutcome:
    """One phase (the insert or delete half) of one batch, across queries."""

    positive: bool
    num_events: int
    #: shared mutation time: applying inserts, or resolving + applying deletes
    graph_update_seconds: float = 0.0
    #: wall clock from enumeration start (or dispatch) to completion (or drain)
    enumerate_wall_seconds: float = 0.0
    per_query: dict[int, QueryPhaseOutcome] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return all(q.outcome is not None for q in self.per_query.values())


@dataclass
class CompletedBatch:
    """Everything the pipeline produced for one snapshot, once fully drained."""

    number: int
    num_insertions: int
    num_deletions: int
    insert_phase: PhaseOutcome | None = None
    delete_phase: PhaseOutcome | None = None
    #: ingest stamp copied from the snapshot (broker-fed streams only)
    first_arrival: float | None = None
    #: stream-clock time at which the batch's results became available
    completed_at: float | None = None
    #: the batch's raw events, kept so durable engines can journal the
    #: epoch at delivery time (sealing happens in stream order)
    insert_events: "Sequence[StreamEvent]" = ()
    delete_events: "Sequence[StreamEvent]" = ()
    #: the columnar decodes of the same events (when the batch ran through
    #: the columnar ingest path) — durable engines seal the journal epoch
    #: straight from these, skipping the per-event tuple walk
    insert_columns: "object | None" = None
    delete_columns: "object | None" = None

    def phases(self) -> Iterator[PhaseOutcome]:
        if self.insert_phase is not None:
            yield self.insert_phase
        if self.delete_phase is not None:
            yield self.delete_phase

    @property
    def complete(self) -> bool:
        return all(p.complete for p in self.phases())


def ingest_latency(batch: CompletedBatch) -> float | None:
    """End-to-end latency of one batch: first event arrival -> results available.

    None unless the stream carried arrival stamps *and* the run had a
    stream clock to stamp completion with (i.e. broker-fed runs).
    """
    if batch.completed_at is None or batch.first_arrival is None:
        return None
    return max(batch.completed_at - batch.first_arrival, 0.0)


@dataclass
class _PendingPhase:
    """A dispatched-but-undrained phase: everything needed to drain or recover."""

    phase: PhaseOutcome
    contexts: "dict[int, EnumerationContext]"
    units: "dict[int, list[WorkUnit]]"
    pool: SharedMemoryPool
    handle: DispatchedEpoch
    slots: "dict[int, QueryRuntime]"
    dispatched_at: float


# ---------------------------------------------------------------------- the pipeline
class BatchPipeline:
    """The single implementation of the per-batch execution loop.

    ``mode`` picks serial (default) or pipelined execution for streamed
    runs; one-shot entry points (:meth:`process_batch`) always run
    serially — there is no next batch to overlap with.  ``fallback``
    selects what a phase does when the shared-memory pool is absent:
    ``"fork"`` preserves the single-query engine's legacy per-batch
    forked workers, ``"simple"`` the multi-query engine's thread/serial
    degradation.
    """

    def __init__(
        self,
        host: PipelineHost,
        mode: str = "serial",
        fallback: str = "simple",
    ) -> None:
        if mode not in PIPELINE_MODES:
            raise ConfigurationError(
                f"pipeline mode must be one of {PIPELINE_MODES}, got {mode!r}"
            )
        if fallback not in ("fork", "simple"):
            raise ConfigurationError(
                f"pipeline fallback must be 'fork' or 'simple', got {fallback!r}"
            )
        self.host = host
        self.mode = mode
        self._fallback = fallback
        #: enumeration phases (insert or delete half of a batch) with >= 1 unit
        self.enumeration_phases_with_units = 0
        #: phases that went through the shared pool (inline or dispatched) —
        #: each publishes exactly one epoch, which the parity gates check
        self.pool_enumeration_phases = 0
        self._pending: deque[_PendingPhase] = deque()

    # ------------------------------------------------------------------ entry points
    def process_batch(
        self,
        number: int,
        insertions: Sequence["StreamEvent"],
        deletions: Sequence["StreamEvent"],
    ) -> CompletedBatch:
        """Run one batch serially (the one-shot / serial-mode entry point)."""
        batch = CompletedBatch(
            number=number,
            num_insertions=len(insertions),
            num_deletions=len(deletions),
            insert_events=tuple(insertions),
            delete_events=tuple(deletions),
        )
        batch.insert_columns = self._decode_columns(True, insertions)
        batch.delete_columns = self._decode_columns(False, deletions)
        if insertions:
            batch.insert_phase = self._run_insert_phase(
                insertions, overlap=False, columns=batch.insert_columns
            )
        if deletions:
            batch.delete_phase = self._run_delete_phase(
                deletions, overlap=False, columns=batch.delete_columns
            )
        return batch

    def run_stream(self, snapshots: Iterable["Snapshot"]) -> Iterator[CompletedBatch]:
        """Process a stream of snapshots, yielding completed batches in order.

        When the snapshot iterator exposes a ``clock`` (broker-fed
        generators do), every yielded batch is stamped with the
        stream-clock time its results became available, closing the
        ingest-to-result latency loop opened by the snapshots' arrival
        stamps.
        """
        clock = getattr(snapshots, "clock", None)
        if self.mode != "pipelined":
            for snapshot in snapshots:
                batch = self.process_batch(
                    snapshot.number, snapshot.insertions, snapshot.deletions
                )
                self.host.pipeline_batch_applied(batch)
                yield self._stamp_completed(batch, snapshot, clock)
            return
        inflight: deque[CompletedBatch] = deque()
        for snapshot in snapshots:
            batch = CompletedBatch(
                number=snapshot.number,
                num_insertions=len(snapshot.insertions),
                num_deletions=len(snapshot.deletions),
                first_arrival=snapshot.first_arrival,
                insert_events=tuple(snapshot.insertions),
                delete_events=tuple(snapshot.deletions),
            )
            # Sealed snapshots cache their own decode — reuse it so an
            # ingest tier that already decoded (fan-out, journal) shares
            # the arrays with the engine.
            if self._columnar_enabled():
                batch.insert_columns = snapshot.insert_columns()
                batch.delete_columns = snapshot.delete_columns()
            if snapshot.insertions:
                batch.insert_phase = self._run_insert_phase(
                    snapshot.insertions, overlap=True, columns=batch.insert_columns
                )
            if snapshot.deletions:
                batch.delete_phase = self._run_delete_phase(
                    snapshot.deletions, overlap=True, columns=batch.delete_columns
                )
            self.host.pipeline_batch_applied(batch)
            inflight.append(batch)
            while inflight and inflight[0].complete:
                yield self._stamp_completed(inflight.popleft(), None, clock)
        self.flush()
        while inflight:
            yield self._stamp_completed(inflight.popleft(), None, clock)

    @staticmethod
    def _stamp_completed(
        batch: CompletedBatch, snapshot: "Snapshot | None", clock
    ) -> CompletedBatch:
        """Copy the ingest stamp (serial path) and record the completion time."""
        if snapshot is not None:
            batch.first_arrival = snapshot.first_arrival
        if clock is not None and batch.first_arrival is not None:
            batch.completed_at = clock.now()
        return batch

    def flush(self) -> None:
        """Drain every dispatched epoch (oldest first); phases become complete."""
        while self._pending:
            self._drain_oldest()

    # ------------------------------------------------------------------ columnar ingest
    def _columnar_enabled(self) -> bool:
        """Does the host want (and its graph support) the columnar ingest path?"""
        graph = self.host.graph
        return (
            getattr(self.host.config, "ingest", "columnar") == "columnar"
            and hasattr(graph, "apply_insert_columns")
            and hasattr(graph, "apply_delete_columns")
        )

    def _decode_columns(self, positive: bool, events: Sequence["StreamEvent"]):
        """Decode one phase's events into :class:`EventColumns`, or None.

        None means the phase runs on the per-edge reference path (columnar
        ingest disabled, no events, or an unsupported graph).  The decode
        happens once per batch; the graph apply, the DEBI/index update and
        the journal seal all reuse the same arrays.
        """
        if not events or not self._columnar_enabled():
            return None
        from repro.streams.events import EventColumns, EventKind

        kind = EventKind.INSERT if positive else EventKind.DELETE
        return EventColumns.from_events(kind, events)

    # ------------------------------------------------------------------ insert phase
    def _run_insert_phase(
        self, events: Sequence["StreamEvent"], overlap: bool, columns=None
    ) -> PhaseOutcome:
        host = self.host
        graph = host.graph
        slots = host.pipeline_slots()
        phase = PhaseOutcome(positive=True, num_events=len(events))

        update_start = time.perf_counter()
        if columns is not None:
            new_ids = graph.apply_insert_columns(
                columns.src, columns.dst, columns.label, columns.timestamp,
                columns.src_label, columns.dst_label,
            )
            host.pipeline_edges_inserted(new_ids)
        else:
            new_ids = []
            for event in events:
                edge_id = graph.add_edge(
                    event.src, event.dst, event.label, event.timestamp,
                    src_label=event.src_label, dst_label=event.dst_label,
                )
                host.pipeline_edge_inserted(edge_id)
                new_ids.append(edge_id)
        phase.graph_update_seconds += time.perf_counter() - update_start

        if columns is not None and all(
            hasattr(rt.index_manager, "handle_insert_columns")
            for rt in slots.values()
        ):
            ids_arr = np.asarray(new_ids, dtype=np.int64)
            index = lambda runtime: runtime.index_manager.handle_insert_columns(
                ids_arr, columns.src, columns.dst, columns.label
            )
        else:
            index = lambda runtime: runtime.index_manager.handle_insertions(new_ids)
        batch_ids = set(new_ids)
        contexts, units = self._index_and_decompose(
            slots, phase, batch_ids, new_ids, positive=True, index=index,
        )
        self._enumerate_phase(phase, slots, contexts, units, overlap=overlap)
        return phase

    # ------------------------------------------------------------------ delete phase
    def _run_delete_phase(
        self, events: Sequence["StreamEvent"], overlap: bool, columns=None
    ) -> PhaseOutcome:
        from repro.core.registry import resolve_deletions

        host = self.host
        graph = host.graph
        slots = host.pipeline_slots()
        phase = PhaseOutcome(positive=False, num_events=len(events))

        resolve_start = time.perf_counter()
        doomed_ids = resolve_deletions(graph, events)
        phase.graph_update_seconds += time.perf_counter() - resolve_start

        # Enumerate (or dispatch) the embeddings about to be destroyed
        # before mutating anything: an inline run finishes right here; a
        # dispatched run reads the snapshot published by the dispatch,
        # which freezes the pre-delete graph and DEBI.  No index callback:
        # DEBI is refreshed *after* the deletions are applied below.
        contexts, units = self._index_and_decompose(
            slots, phase, set(doomed_ids), doomed_ids, positive=False
        )
        self._enumerate_phase(phase, slots, contexts, units, overlap=overlap)

        # One mutation pass: capture every query's row mask, delete the
        # edge once, clear every query's DEBI row.  In pipelined mode
        # this runs while the workers are still enumerating the epoch
        # published above — they read the frozen pre-delete snapshot.
        apply_start = time.perf_counter()
        deleted: list[tuple] = []
        if (
            columns is not None
            and doomed_ids
            and all(hasattr(rt.debi, "rows") for rt in slots.values())
        ):
            # Columnar variant: gather every query's row masks in one
            # vectorized pass (reads are unaffected by the graph deletes),
            # apply the deletes in event order (free-list parity), then
            # clear all DEBI rows with one bulk write per query.
            mask_lists = {
                qid: runtime.debi.rows(doomed_ids) for qid, runtime in slots.items()
            }
            records = graph.apply_delete_columns(doomed_ids)
            ids_arr = np.asarray(doomed_ids, dtype=np.int64)
            for runtime in slots.values():
                runtime.debi.clear_edges(ids_arr)
            for edge_id in doomed_ids:
                host.pipeline_edge_deleted(edge_id)
            deleted = [
                (record, {qid: masks[i] for qid, masks in mask_lists.items()})
                for i, record in enumerate(records)
            ]
        else:
            for edge_id in doomed_ids:
                row_masks = {
                    qid: runtime.debi.row(edge_id) for qid, runtime in slots.items()
                }
                record = graph.delete_edge(edge_id)
                for runtime in slots.values():
                    runtime.debi.clear_edge(edge_id)
                host.pipeline_edge_deleted(edge_id)
                deleted.append((record, row_masks))
        phase.graph_update_seconds += time.perf_counter() - apply_start

        for qid, runtime in slots.items():
            query_phase = phase.per_query[qid]
            filter_start = time.perf_counter()
            frontier = runtime.index_manager.handle_deletions(
                [(record, masks[qid]) for record, masks in deleted]
            )
            query_phase.filter_seconds += time.perf_counter() - filter_start
            query_phase.filter_traversals += frontier.traversed_edges
        return phase

    # ------------------------------------------------------------------ shared plumbing
    def _index_and_decompose(
        self,
        slots,
        phase: PhaseOutcome,
        batch_ids: set[int],
        ordered_ids,
        positive,
        index=None,
    ):
        """Per query: refresh the index (optional), build a context, decompose units.

        ``index`` is the per-runtime DEBI refresh for insert phases;
        delete phases pass None because their index update happens only
        after the doomed embeddings are enumerated.
        """
        from repro.core.enumeration import decompose_batch

        host = self.host
        contexts: dict[int, "EnumerationContext"] = {}
        units: dict[int, list] = {}
        shared_cache: dict | None = {} if len(slots) > 1 else None
        for qid, runtime in slots.items():
            query_phase = phase.per_query.setdefault(qid, QueryPhaseOutcome())
            if index is not None:
                filter_start = time.perf_counter()
                frontier = index(runtime)
                query_phase.filter_seconds += time.perf_counter() - filter_start
                query_phase.filter_traversals += frontier.traversed_edges
            context = host.pipeline_make_context(
                runtime, batch_ids, positive=positive, shared_pool_cache=shared_cache
            )
            contexts[qid] = context
            units[qid] = decompose_batch(context, ordered_ids)
            query_phase.work_units += len(units[qid])
        return contexts, units

    def _amortized(self, total_units: int) -> bool:
        """Is the phase big enough to amortise one O(V + E) snapshot export?

        Publication is O(V + E) (parent export + per-worker view build);
        one unit enumerates in roughly the time ~1000 placeholders take
        to export, so a phase must carry enough units per worker AND
        enough units relative to the graph size, or the serial path wins.
        """
        placeholders = getattr(self.host.graph, "num_placeholders", 0)
        workers = self.host.config.parallel.num_workers
        return total_units >= 2 * workers and total_units * 1000 >= placeholders

    def _enumerate_phase(
        self,
        phase: PhaseOutcome,
        slots,
        contexts: "dict[int, EnumerationContext]",
        units: "dict[int, list[WorkUnit]]",
        overlap: bool,
    ) -> None:
        """Run or dispatch one phase's enumeration; fill outcomes when inline."""
        total_units = sum(len(u) for u in units.values())
        if total_units == 0:
            self._complete_phase(phase, contexts, {
                qid: EnumerationOutcome([], [], 0.0) for qid in contexts
            }, wall=0.0)
            return
        self.enumeration_phases_with_units += 1

        collect = self.host.config.collect_embeddings
        pool = self.host.pipeline_acquire_pool(self)
        pool_ok = pool is not None and pool.usable and all(
            ctx.on_spilled_access is None for ctx in contexts.values()
        )
        if pool_ok and self._amortized(total_units):
            if self._pending and self._pending[0].pool is not pool:
                # The host swapped pools under us (registry churn):
                # epochs of the old pool must finish before it goes away.
                self.flush()
            while (
                self._pending
                and pool.usable
                and pool.epochs_in_flight >= pool.max_epochs_in_flight
            ):
                self._drain_oldest()
            # _drain_oldest (or the flush above) may have hit a broken pool
            # and already recovered + warned; don't dispatch on the corpse
            # and report the same failure a second time.
            if pool.usable:
                try:
                    dispatched_at = time.perf_counter()
                    handle = pool.dispatch(contexts, units, collect=collect)
                    self.pool_enumeration_phases += 1
                    self._pending.append(
                        _PendingPhase(
                            phase=phase,
                            contexts=contexts,
                            units=units,
                            pool=pool,
                            handle=handle,
                            slots=dict(slots),
                            dispatched_at=dispatched_at,
                        )
                    )
                    if overlap:
                        return
                    # Inline (serial-mode) execution goes through the same
                    # dispatch/drain pair as the overlap path so a pool
                    # fault here benefits from the identical
                    # redispatch-from-frozen-segments recovery.
                    while not phase.complete and self._pending:
                        self._drain_oldest()
                    return
                except PoolBrokenError as exc:
                    self._handle_pool_broken(exc)
                    if phase.complete:
                        return
        elif pool_ok:
            # A healthy pool but a phase too small to amortise a snapshot
            # publication: run serially, as both engines always have — the
            # legacy per-batch fork fallback is for *absent* pools only
            # (forking workers for a handful of units would cost far more
            # than the enumeration itself).
            start = time.perf_counter()
            outcomes = {
                qid: _run_serial(contexts[qid], units[qid], collect=collect)
                for qid in contexts
            }
            self._complete_phase(
                phase, contexts, outcomes, wall=time.perf_counter() - start
            )
            return
        start = time.perf_counter()
        outcomes = self._enumerate_fallback(contexts, units)
        self._complete_phase(phase, contexts, outcomes, wall=time.perf_counter() - start)

    def _enumerate_fallback(
        self,
        contexts: "dict[int, EnumerationContext]",
        units: "dict[int, list[WorkUnit]]",
    ) -> dict[int, EnumerationOutcome]:
        """Run a phase without the shared pool (serial/thread/legacy fork).

        A host that degraded down the supervision ladder pins the
        backend: ``"thread"`` after the pool respawn budget ran out,
        ``"serial"`` after the thread backend faulted too.  Otherwise the
        host's configured fallback applies.
        """
        parallel = self.host.config.parallel
        collect = self.host.config.collect_embeddings
        degraded = getattr(self.host, "pipeline_degraded_backend", lambda: None)()
        outcomes: dict[int, EnumerationOutcome] = {}
        for qid, context in contexts.items():
            if degraded == "serial":
                outcomes[qid] = _run_serial(context, units[qid], collect=collect)
            elif degraded == "thread":
                outcomes[qid] = self._run_threads_guarded(
                    context, units[qid], max(parallel.num_workers, 2), collect=collect
                )
            elif self._fallback == "fork":
                outcomes[qid] = run_enumeration(
                    context, units[qid], parallel, pool=None, collect=collect
                )
            elif parallel.backend == "thread" and parallel.num_workers > 1:
                outcomes[qid] = self._run_threads_guarded(
                    context, units[qid], parallel.num_workers, collect=collect
                )
            else:
                outcomes[qid] = _run_serial(context, units[qid], collect=collect)
        return outcomes

    def _run_threads_guarded(
        self,
        context: "EnumerationContext",
        units: "list[WorkUnit]",
        num_workers: int,
        collect: bool = True,
    ) -> EnumerationOutcome:
        """Thread-backend enumeration that degrades to serial on a fault.

        The context-side counters mutate as units enumerate, so a failed
        thread run must roll them back before the serial re-run — else
        the surviving threads' partial work would be double-counted.
        """
        scanned_before = context.candidates_scanned
        found_before = context.embeddings_found
        try:
            return _run_threads(context, units, num_workers, collect=collect)
        except Exception as exc:
            context.candidates_scanned = scanned_before
            context.embeddings_found = found_before
            notify = getattr(self.host, "pipeline_thread_backend_failed", None)
            if notify is not None:
                notify()
            warnings.warn(
                f"thread-backend enumeration failed ({exc}); this phase "
                "re-ran serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return _run_serial(context, units, collect=collect)

    def _complete_phase(
        self,
        phase: PhaseOutcome,
        contexts: "dict[int, EnumerationContext]",
        outcomes: dict[int, EnumerationOutcome],
        wall: float,
    ) -> None:
        phase.enumerate_wall_seconds += wall
        for qid, outcome in outcomes.items():
            query_phase = phase.per_query.setdefault(qid, QueryPhaseOutcome())
            query_phase.outcome = outcome
            query_phase.candidates_scanned = contexts[qid].candidates_scanned

    # ------------------------------------------------------------------ draining & recovery
    def _epoch_deadline(self) -> float | None:
        """Per-epoch drain deadline from the host's fault policy, if any."""
        policy = getattr(self.host.config, "fault", None)
        return None if policy is None else policy.epoch_deadline_seconds

    def _drain_oldest(self) -> None:
        pending = self._pending.popleft()
        try:
            drained = pending.pool.drain(
                pending.handle, deadline_seconds=self._epoch_deadline()
            )
            outcomes = drained.outcomes
        except PoolBrokenError as exc:
            self._pending.appendleft(pending)
            self._handle_pool_broken(exc)
            return
        self._complete_phase(
            pending.phase,
            pending.contexts,
            outcomes,
            wall=time.perf_counter() - pending.dispatched_at,
        )

    def _handle_pool_broken(self, exc: PoolBrokenError) -> None:
        """Recover every dispatched epoch, preferring redispatch over serial.

        The live graph may already carry later batches' mutations, so
        the in-flight phases are re-enumerated against their *published*
        epochs, whose frozen segments outlive the broken pool.  The host
        is asked for a replacement pool (supervised hosts respawn under
        their retry budget); epochs are redispatched onto it by adopting
        their frozen descriptors.  Phases left without a replacement are
        recovered parent-side: the coordinator attaches to the segments
        itself and runs the dispatched units serially.  Both paths are
        bit-identical to what the dead workers would have produced.
        """
        collect = self.host.config.collect_embeddings
        pending, self._pending = list(self._pending), deque()
        redispatched = 0
        recovered = 0
        replacement = self.host.pipeline_pool_broken()
        while pending and replacement is not None:
            item = pending[0]
            try:
                epoch_id = replacement.adopt(item.handle, item.contexts, collect=collect)
                drained = replacement.drain(
                    epoch_id, deadline_seconds=self._epoch_deadline()
                )
            except PoolBrokenError as follow_up:
                # The replacement broke too (crash loop): retire it and
                # ask for another; the budget bounds how long this lasts.
                exc = follow_up
                replacement = self.host.pipeline_pool_broken()
                continue
            pending.pop(0)
            redispatched += 1
            self._complete_phase(
                item.phase,
                item.contexts,
                drained.outcomes,
                wall=time.perf_counter() - item.dispatched_at,
            )
        for item in pending:
            outcomes = self._recover_phase(item)
            recovered += 1
            self._complete_phase(
                item.phase,
                item.contexts,
                outcomes,
                wall=time.perf_counter() - item.dispatched_at,
            )
        notify = getattr(self.host, "pipeline_recovery_finished", None)
        if notify is not None:
            notify(redispatched, recovered)
        if replacement is None:
            warnings.warn(
                f"shared-memory pool failed mid-run ({exc}); in-flight epochs "
                "were recovered from their published snapshots and enumeration "
                "falls back to the non-pool path",
                RuntimeWarning,
                stacklevel=3,
            )

    def _recover_phase(self, pending: _PendingPhase) -> dict[int, EnumerationOutcome]:
        """Serially re-enumerate one dispatched epoch from its frozen snapshot."""
        # This runs in the pool's parent, which owns the segment it is
        # about to attach to.  No tracker suppression is needed (or safe)
        # here: the attach-time re-register is an idempotent set-add in
        # the resource tracker's cache, balanced by the writer's real
        # unlink when the pool closes.
        attachment = SnapshotAttachment()
        descriptor = pending.handle.descriptor
        try:
            trees = {qid: rt.query_state.tree for qid, rt in pending.slots.items()}
            graph_view, debis, batch_ids = attachment.views(descriptor, trees)
            shared_cache: dict | None = {} if len(pending.slots) > 1 else None
            outcomes: dict[int, EnumerationOutcome] = {}
            for qid, unit_list in pending.handle.units.items():
                context = pending.slots[qid].query_state.make_context(
                    graph_view,
                    debis[qid],
                    batch_ids,
                    descriptor["positive"],
                    shared_pool_cache=shared_cache,
                )
                outcome = _run_serial(context, unit_list)
                original = pending.contexts[qid]
                original.candidates_scanned += context.candidates_scanned
                original.embeddings_found += outcome.num_embeddings
                outcomes[qid] = outcome
            return outcomes
        finally:
            attachment.detach()
