"""The service facade: push events in, pull matched embeddings out.

:class:`~repro.core.engine.MnemonicEngine` and
:class:`~repro.core.registry.MultiQueryEngine` are *stream runners*:
they consume a whole source in one blocking ``run()`` call.  A live
service is shaped differently — application threads hand events over as
they happen and periodically collect whatever results became ready.
:class:`MnemonicService` is that shape, built from the same parts the
streaming path uses (so semantics can never diverge):

* :meth:`submit` stamps events through a bounded
  :class:`~repro.streams.broker.StreamBroker` (push mode), giving the
  service backpressure and arrival times for free;
* a :class:`~repro.streams.generator.SnapshotBatcher` applies the
  engine's :class:`~repro.streams.StreamConfig` — including adaptive
  ``max_batch_delay`` batching — to decide when a snapshot is sealed;
* :meth:`poll` pumps arrived events through the batcher, processes any
  sealed snapshots on the engine, and returns their results, each
  stamped with ingest-to-result latency on the service's clock;
* :meth:`drain` additionally flushes the open partial batch, so every
  submitted event's outcome is accounted for.

The facade is deliberately *caller-pumped* (no background consumer
thread): results are produced on the thread that calls ``poll``/
``drain``, which keeps engine access single-threaded — the engines are
not thread-safe — and makes service behaviour deterministic under a
:class:`~repro.streams.clock.VirtualClock` in tests.  ``import`` it
from :mod:`repro.core.api` (the lazy facade) or :mod:`repro` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Union

from repro.streams.broker import POLL_TIMEOUT, StreamBroker
from repro.streams.clock import Clock
from repro.streams.config import StreamType
from repro.streams.events import StreamEvent
from repro.streams.generator import SnapshotBatcher
from repro.utils.validation import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import MnemonicEngine, SnapshotResult
    from repro.core.registry import MultiQueryEngine, MultiSnapshotResult

    ServiceResult = Union[SnapshotResult, MultiSnapshotResult]


class MnemonicService:
    """submit()/poll()/drain() over a single- or multi-query engine.

    Parameters
    ----------
    engine:
        A constructed :class:`~repro.core.engine.MnemonicEngine` or
        :class:`~repro.core.registry.MultiQueryEngine`.  Its
        ``config.stream`` decides batching (``batch_size`` cap and
        optional adaptive ``max_batch_delay``); sliding-window configs
        are rejected — windows need a totally ordered replay, not a
        live ingest path.  The service does not own the engine: closing
        the service leaves the engine (and its worker pool) usable.
    capacity:
        Broker bound: :meth:`submit` blocks once this many events are
        waiting unprocessed (backpressure instead of unbounded memory).
    clock:
        Arrival/latency time source; defaults to the wall clock, tests
        pass a :class:`~repro.streams.clock.VirtualClock`.
    overload:
        The broker's full-buffer policy: ``"block"`` (default,
        backpressure), ``"shed-oldest"`` (drop the stalest buffered
        event) or ``"reject"`` (refuse the submit with
        :class:`~repro.streams.broker.BrokerOverloadError`).  Shed and
        reject counts surface through :meth:`stats`.
    """

    def __init__(
        self,
        engine: "MnemonicEngine | MultiQueryEngine",
        capacity: int = 8192,
        clock: Clock | None = None,
        overload: str = "block",
    ) -> None:
        stream_config = engine.config.stream
        if stream_config.stream_type is StreamType.SLIDING_WINDOW:
            raise ConfigurationError(
                "MnemonicService supports insert_only / insert_delete streams; "
                "sliding-window replay should go through engine.run()"
            )
        self.engine = engine
        self.broker = StreamBroker(capacity=capacity, clock=clock, overload=overload)
        self.clock: Clock = self.broker.clock
        self._batcher = SnapshotBatcher(stream_config, self._next_number)
        self._number = 0
        self._submitted = 0
        #: events pumped out of the broker into the batcher so far
        self._offered = 0
        self._closed = False

    # ------------------------------------------------------------------ durability
    @classmethod
    def open(
        cls,
        directory,
        config=None,
        capacity: int = 8192,
        clock: Clock | None = None,
    ) -> "MnemonicService":
        """Recover a durable engine from ``directory`` and wrap it in a service.

        Dispatches on the engine kind recorded in the state directory's
        ``meta.json`` (single- vs multi-query).  The recovered engine is
        owned by the caller, exactly as with the normal constructor —
        reach it as ``service.engine`` (its ``recovery_info`` says where
        to resume the upstream feed: refeed everything after
        ``last_sealed_number``).  Snapshot numbering continues from the
        last sealed epoch so refed batches journal under fresh numbers.
        """
        from repro.core.engine import MnemonicEngine
        from repro.core.registry import MultiQueryEngine
        from repro.storage.runtime import EngineStorage

        kind = EngineStorage.peek_kind(directory)
        if kind == "single":
            engine = MnemonicEngine.open(directory, config=config)
        else:
            engine = MultiQueryEngine.open(directory, config=config)
        service = cls(engine, capacity=capacity, clock=clock)
        last = (engine.recovery_info or {}).get("last_sealed_number")
        if last is not None:
            service._number = last + 1
        return service

    # ------------------------------------------------------------------ ingest
    def submit(
        self,
        events: StreamEvent | tuple | Iterable[StreamEvent | tuple],
        timeout: float | None = None,
    ) -> int:
        """Enqueue one event or an iterable of them; returns how many were accepted.

        Tuples are coerced to insertion events
        (``(src, dst[, label, timestamp, src_label, dst_label])``).
        Blocks (up to ``timeout`` clock-seconds per event) while the
        broker is full — overload surfaces as backpressure here, not as
        unbounded queueing.  Submission alone never processes anything;
        call :meth:`poll` or :meth:`drain` to turn events into results.
        """
        if self._closed:
            raise ConfigurationError("cannot submit to a closed MnemonicService")
        if isinstance(events, StreamEvent):
            events = [events]
        elif isinstance(events, tuple) and not any(
            isinstance(field, StreamEvent) for field in events
        ):
            # A bare field tuple is one insertion; a tuple *of events* is
            # a sequence (coercing it would silently nest StreamEvents
            # into the src/dst fields of a corrupt event).
            events = [events]
        accepted = 0
        for event in events:
            if not isinstance(event, StreamEvent):
                event = StreamEvent.insert(*event)
            self.broker.put(event, timeout=timeout)
            accepted += 1
        self._submitted += accepted
        return accepted

    # ------------------------------------------------------------------ results
    def poll(self) -> "list[ServiceResult]":
        """Process every sealed batch and return its results (possibly none).

        Pumps all currently arrived events through the batcher; a batch
        seals when it hits ``batch_size`` or (with ``max_batch_delay``)
        when its first event has been pending longer than the delay —
        including while the stream is idle, so latency stays bounded
        under trickle load.  Events still inside an unsealed batch stay
        pending; :meth:`drain` forces them through.
        """
        results: "list[ServiceResult]" = []
        while True:
            item = self.broker.poll(0.0)
            if item is None or item is POLL_TIMEOUT:
                break
            event, arrival = item
            self._offered += 1
            for snapshot in self._batcher.offer(event, arrival):
                results.append(self._process(snapshot))
        if self._batcher.deadline_expired(self.clock.now()):
            snapshot = self._batcher.flush(sealed_at=self.clock.now())
            if snapshot is not None:
                results.append(self._process(snapshot))
        return results

    def drain(self) -> "list[ServiceResult]":
        """Like :meth:`poll`, but also flush the open partial batch.

        After ``drain`` returns, every event submitted so far is
        reflected in some returned (or previously returned) result —
        except insert/delete pairs elided within one batch, which are
        net no-ops the engine never sees.  The service stays usable for
        further submissions.
        """
        results = self.poll()
        snapshot = self._batcher.flush(sealed_at=self.clock.now())
        if snapshot is not None:
            results.append(self._process(snapshot))
        return results

    def _process(self, snapshot) -> "ServiceResult":
        result = self.engine.process_snapshot(snapshot)
        latency = None
        if snapshot.first_arrival is not None:
            latency = max(self.clock.now() - snapshot.first_arrival, 0.0)
        result.ingest_latency_seconds = latency
        per_query = getattr(result, "per_query", None)
        if per_query is not None:  # multi-query: stamp each query's row too
            for query_result in per_query.values():
                query_result.ingest_latency_seconds = latency
        return result

    def _next_number(self) -> int:
        number = self._number
        self._number += 1
        return number

    # ------------------------------------------------------------------ introspection
    @property
    def pending(self) -> int:
        """Events still awaiting processing: queued in the broker or in the open batch.

        An insert/delete pair elided *inside* one batch (a net no-op the
        engine never sees) counts as resolved the moment the delete
        cancels the insert, not as forever-pending.
        """
        return (self._submitted - self._offered) + self._batcher.pending_events

    @property
    def watermark(self) -> float:
        """Largest event timestamp submitted so far (-inf before the first)."""
        return self.broker.watermark

    def stats(self) -> dict[str, float]:
        """Broker ingest counters plus batcher and fault-supervision state.

        Fault counters (``fault_*``) come from the engine's pool
        supervisor: respawns, degradation-ladder level, recovered and
        redispatched epochs — the dashboard view of self-healing.
        """
        stats = self.broker.stats()
        stats["open_batch_events"] = self._batcher.pending_events
        stats["snapshots_processed"] = self._number
        fault_stats = getattr(self.engine, "fault_stats", None)
        if fault_stats is not None:
            for key, value in fault_stats().items():
                if key == "degradations":
                    stats["fault_degradations"] = len(value)  # type: ignore[arg-type]
                else:
                    stats[f"fault_{key}"] = value  # type: ignore[assignment]
        return stats

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> "list[ServiceResult]":
        """Drain everything, then refuse further submissions.

        Returns the final results.  The engine is left open — it belongs
        to the caller (close it separately, or construct it in a ``with``
        block that outlives the service).
        """
        if self._closed:
            return []
        results = self.drain()
        self._closed = True
        self.broker.close()
        return results

    def __enter__(self) -> "MnemonicService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Unwinding: drop the ingest queue without processing more.
            self._closed = True
            self.broker.stop()
