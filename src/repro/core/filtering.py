"""Incremental DEBI maintenance: batched top-down / bottom-up filtering.

This module implements Section V of the paper.  The DEBI bit of a data
edge ``e = (v_p, v)`` at the column owned by query node ``u`` is kept
equal to

``edge_matcher(tree_edge(parent(u), u), e)  AND  down(v, u)``

where ``down(v, u)`` holds when, for every child ``u_c`` of ``u`` in the
query tree, some data edge leaving ``v`` in the right direction has its
bit set at ``u_c``'s column.  The ``roots`` bit of a data vertex ``v``
is maintained analogously for the root query node.

*Insertions* can only turn bits on; *deletions* can only turn bits off.
Both are propagated bottom-up along the query tree using the
:class:`repro.core.frontier.UnifiedFrontier`, so that every affected
(edge, column) pair is evaluated once per batch regardless of how many
updated edges share the same affected region.  The paper's ``f2/f3``
label-degree rules are applied as an optional cheap local pre-filter.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import MatchDefinition
from repro.core.debi import DEBI
from repro.core.enumeration import degree_requirements_ok
from repro.core.frontier import UnifiedFrontier
from repro.graph.adjacency import DynamicGraph
from repro.graph.edge import EdgeRecord
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.query.query_tree import QueryTree, TreeEdge


class IndexManager:
    """Maintains DEBI across batches of insertions and deletions."""

    def __init__(
        self,
        query: QueryGraph,
        tree: QueryTree,
        graph: DynamicGraph,
        debi: DEBI,
        match_def: MatchDefinition,
        use_degree_filter: bool = True,
    ) -> None:
        self.query = query
        self.tree = tree
        self.graph = graph
        self.debi = debi
        self.match_def = match_def
        self.use_degree_filter = use_degree_filter
        #: cumulative number of (edge, column) evaluations across all batches
        self.total_traversals = 0
        #: evaluations performed by the most recent batch
        self.last_batch_traversals = 0
        # Columns sorted so that deeper query nodes are processed first
        # (bottom-up); contributions always flow towards the root.
        self._columns_bottom_up: list[TreeEdge] = sorted(
            tree.tree_edges, key=lambda te: -tree.depth[te.child]
        )
        # Label-degree requirements of each query node (f2/f3 pre-filter).
        self._out_req = {u: query.out_label_requirement(u) for u in query.nodes()}
        self._in_req = {u: query.in_label_requirement(u) for u in query.nodes()}
        # Candidate scans may restrict to the tree edge's label partition
        # when the matcher guarantees label equality: a DEBI bit can only
        # be (or become) set on a label-matching edge, so edges outside
        # the partition evaluate to 0 anyway.
        self._label_partitioned = getattr(match_def, "label_partitioned", True)

    # ------------------------------------------------------------------ geometry helpers
    @staticmethod
    def child_endpoint(record: EdgeRecord, tree_edge: TreeEdge) -> int:
        """The data vertex that plays the role of ``tree_edge.child``."""
        return record.src if tree_edge.query_edge.src == tree_edge.child else record.dst

    @staticmethod
    def parent_endpoint(record: EdgeRecord, tree_edge: TreeEdge) -> int:
        """The data vertex that plays the role of ``tree_edge.parent``."""
        return record.dst if tree_edge.query_edge.src == tree_edge.child else record.src

    def edges_with_child_at(self, vertex: int, tree_edge: TreeEdge):
        """Data edges that could map ``tree_edge`` with child endpoint ``vertex``."""
        return self._candidate_scan(vertex, tree_edge.query_edge.src == tree_edge.child, tree_edge)

    def edges_with_parent_at(self, vertex: int, tree_edge: TreeEdge):
        """Data edges that could map ``tree_edge`` with parent endpoint ``vertex``."""
        return self._candidate_scan(vertex, tree_edge.query_edge.src == tree_edge.parent, tree_edge)

    def _candidate_scan(self, vertex: int, out: bool, tree_edge: TreeEdge):
        """The adjacency pool a filtering pass must evaluate for ``tree_edge``.

        Restricted to the edge-label partition when the matcher implies
        label equality — edges with a different label can never hold (or
        gain) the column's bit, so skipping them changes no bit.
        """
        label = tree_edge.query_edge.label
        if not self._label_partitioned or label == WILDCARD_LABEL:
            label = None
        pool = self.graph.candidate_pool(vertex, out, label)
        return pool if isinstance(pool, list) else pool.tolist()

    def _pool_array(self, vertex: int, out: bool, tree_edge: TreeEdge) -> np.ndarray:
        """:meth:`_candidate_scan` as an int64 array (no list round-trip)."""
        label = tree_edge.query_edge.label
        if not self._label_partitioned or label == WILDCARD_LABEL:
            label = None
        pool = self.graph.candidate_pool(vertex, out, label)
        if isinstance(pool, np.ndarray):
            return pool
        return np.asarray(pool, dtype=np.int64)

    # ------------------------------------------------------------------ consistency predicates
    def down_ok(self, vertex: int, query_node: int) -> bool:
        """Does ``vertex`` have supported candidate edges for every child of ``query_node``?"""
        for child in self.tree.children[query_node]:
            child_te = self.tree.tree_edge_by_child[child]
            column = child_te.column
            supported = False
            for eid in self.edges_with_parent_at(vertex, child_te):
                if self.debi.get(eid, column):
                    supported = True
                    break
            if not supported:
                return False
        return True

    def degree_ok(self, vertex: int, query_node: int) -> bool:
        """The paper's f2/f3 check: per-label degree of the data vertex must cover the query node's."""
        if not self.use_degree_filter:
            return True
        return degree_requirements_ok(
            self.graph, self._out_req, self._in_req, vertex, query_node
        )

    def _bit_should_be_set(self, record: EdgeRecord, tree_edge: TreeEdge) -> bool:
        """Evaluate the DEBI definition for one (edge, column) pair.

        Note that the label-degree rules (``degree_ok``) are *not* part of
        the bit definition: they depend on vertex degrees, whose growth is
        not tracked by the frontier, so folding them into the index could
        leave stale zero bits behind (missed embeddings).  They are applied
        as an enumeration-time pruning check instead, where the current
        degree is always available.
        """
        if not self.match_def.edge_matcher(self.query, self.graph, tree_edge.query_edge, record):
            return False
        child_vertex = self.child_endpoint(record, tree_edge)
        return self.down_ok(child_vertex, tree_edge.child)

    # ------------------------------------------------------------------ insertions
    def handle_insertions(self, new_edge_ids: list[int]) -> UnifiedFrontier:
        """Set DEBI bits for a batch of already-inserted edges and propagate upward."""
        frontier = UnifiedFrontier()
        # Seed: each new edge is scheduled at every column it label-matches.
        for eid in new_edge_ids:
            record = self.graph.edge(eid)
            for tree_edge in self.tree.tree_edges:
                if self.match_def.edge_matcher(self.query, self.graph, tree_edge.query_edge, record):
                    frontier.seed_edge(tree_edge.column, eid)

        for tree_edge in self._columns_bottom_up:
            parts = [frontier.edges_for(tree_edge.column)]
            # Edges whose child endpoint just gained downward support.
            for vertex in frontier.vertices_for(tree_edge.child).tolist():
                pool = self.edges_with_child_at(vertex, tree_edge)
                if pool:
                    parts.append(np.asarray(pool, dtype=np.int64))
            candidates = (
                np.unique(np.concatenate(parts)) if len(parts) > 1 else parts[0]
            )
            for eid in candidates.tolist():
                frontier.count_traversal()
                if self.debi.get(eid, tree_edge.column):
                    continue
                record = self.graph.edge(eid)
                if not self._bit_should_be_set(record, tree_edge):
                    continue
                self.debi.set(eid, tree_edge.column)
                parent_vertex = self.parent_endpoint(record, tree_edge)
                frontier.seed_vertex(tree_edge.parent, parent_vertex)

        self._refresh_roots_after_insert(frontier)
        self.total_traversals += frontier.traversed_edges
        self.last_batch_traversals = frontier.traversed_edges
        return frontier

    def handle_insert_columns(self, new_edge_ids, src, dst, label) -> UnifiedFrontier:
        """Columnar :meth:`handle_insertions`: same final DEBI state and counters.

        ``src``/``dst``/``label`` are the decoded int64 event columns
        aligned with ``new_edge_ids``.  For the default (label-equality)
        matcher the seed step becomes one boolean mask per query-tree
        column instead of ``|batch| x |columns|`` Python matcher calls,
        and the propagation step evaluates whole candidate arrays with a
        vectorized skip mask, a vectorized label matcher and a per-column
        ``down_ok`` memo.  The memo is parity-safe because ``down_ok`` of
        a column's child reads only strictly deeper columns, which are
        final before the column's pass starts.  Custom matchers fall back
        to per-edge evaluation (identical to :meth:`handle_insertions`).
        """
        frontier = UnifiedFrontier()
        ids = np.asarray(new_edge_ids, dtype=np.int64)
        n = int(ids.shape[0])
        default_matcher = (
            type(self.match_def).edge_matcher is MatchDefinition.edge_matcher
        )
        vertex_label = self.graph.vertex_label

        # -- seed: schedule each new edge at every column it matches
        if n and default_matcher:
            src_arr = np.asarray(src, dtype=np.int64)
            dst_arr = np.asarray(dst, dtype=np.int64)
            label_arr = np.asarray(label, dtype=np.int64)
            # vertex labels must come from the graph, not the event columns:
            # an event carrying label 0 keeps a vertex's existing label
            uniq, inverse = np.unique(
                np.concatenate([src_arr, dst_arr]), return_inverse=True
            )
            uniq_labels = np.fromiter(
                (vertex_label(v) for v in uniq.tolist()),
                dtype=np.int64, count=int(uniq.shape[0]),
            )
            endpoint_labels = uniq_labels[inverse]
            src_vlab = endpoint_labels[:n]
            dst_vlab = endpoint_labels[n:]
            for tree_edge in self.tree.tree_edges:
                q_edge = tree_edge.query_edge
                mask = np.ones(n, dtype=bool)
                q_src_label = self.query.node_label(q_edge.src)
                q_dst_label = self.query.node_label(q_edge.dst)
                if q_src_label != WILDCARD_LABEL:
                    mask &= src_vlab == q_src_label
                if q_dst_label != WILDCARD_LABEL:
                    mask &= dst_vlab == q_dst_label
                if q_edge.label != WILDCARD_LABEL:
                    mask &= label_arr == q_edge.label
                matched = ids[mask]
                if matched.shape[0]:
                    frontier.seed_edges(tree_edge.column, matched)
        elif n:
            for eid in ids.tolist():
                record = self.graph.edge(eid)
                for tree_edge in self.tree.tree_edges:
                    if self.match_def.edge_matcher(
                        self.query, self.graph, tree_edge.query_edge, record
                    ):
                        frontier.seed_edge(tree_edge.column, eid)

        # -- propagate bottom-up, one batched pass per column
        debi = self.debi
        graph = self.graph
        for tree_edge in self._columns_bottom_up:
            parts = [frontier.edges_for(tree_edge.column)]
            for vertex in frontier.vertices_for(tree_edge.child).tolist():
                pool = self._pool_array(
                    vertex, tree_edge.query_edge.src == tree_edge.child, tree_edge
                )
                if pool.shape[0]:
                    parts.append(pool)
            candidates = (
                np.unique(np.concatenate(parts)) if len(parts) > 1 else parts[0]
            )
            num_candidates = int(candidates.shape[0])
            if num_candidates == 0:
                continue
            # one evaluation per candidate, exactly like the per-edge loop
            frontier.count_traversal(num_candidates)
            unset = candidates[~debi.column_mask(candidates, tree_edge.column)]
            if unset.shape[0] == 0:
                continue
            newly: list[int] = []
            down_memo: dict[int, bool] = {}
            if default_matcher:
                child_is_dst = tree_edge.query_edge.src != tree_edge.child
                e_src = graph.endpoint_array(unset, take_dst=False)
                e_dst = graph.endpoint_array(unset, take_dst=True)
                k = int(unset.shape[0])
                q_edge = tree_edge.query_edge
                mask = np.ones(k, dtype=bool)
                if q_edge.label != WILDCARD_LABEL:
                    mask &= graph.edge_labels(unset) == q_edge.label
                q_src_label = self.query.node_label(q_edge.src)
                q_dst_label = self.query.node_label(q_edge.dst)
                if q_src_label != WILDCARD_LABEL or q_dst_label != WILDCARD_LABEL:
                    uniq, inverse = np.unique(
                        np.concatenate([e_src, e_dst]), return_inverse=True
                    )
                    uniq_labels = np.fromiter(
                        (vertex_label(v) for v in uniq.tolist()),
                        dtype=np.int64, count=int(uniq.shape[0]),
                    )
                    endpoint_labels = uniq_labels[inverse]
                    if q_src_label != WILDCARD_LABEL:
                        mask &= endpoint_labels[:k] == q_src_label
                    if q_dst_label != WILDCARD_LABEL:
                        mask &= endpoint_labels[k:] == q_dst_label
                child_eps = (e_dst if child_is_dst else e_src).tolist()
                parent_eps = (e_src if child_is_dst else e_dst).tolist()
                unset_list = unset.tolist()
                seeded_parents: list[int] = []
                down_ok = self.down_ok
                child_node = tree_edge.child
                for i in np.nonzero(mask)[0].tolist():
                    child_vertex = child_eps[i]
                    ok = down_memo.get(child_vertex)
                    if ok is None:
                        ok = down_memo[child_vertex] = down_ok(
                            child_vertex, child_node
                        )
                    if not ok:
                        continue
                    newly.append(unset_list[i])
                    seeded_parents.append(parent_eps[i])
                if seeded_parents:
                    frontier.seed_vertices(tree_edge.parent, seeded_parents)
            else:
                for eid in unset.tolist():
                    record = graph.edge(eid)
                    if not self.match_def.edge_matcher(
                        self.query, graph, tree_edge.query_edge, record
                    ):
                        continue
                    child_vertex = self.child_endpoint(record, tree_edge)
                    ok = down_memo.get(child_vertex)
                    if ok is None:
                        ok = down_memo[child_vertex] = self.down_ok(
                            child_vertex, tree_edge.child
                        )
                    if not ok:
                        continue
                    newly.append(eid)
                    frontier.seed_vertex(
                        tree_edge.parent, self.parent_endpoint(record, tree_edge)
                    )
            if newly:
                debi.set_edges(np.asarray(newly, dtype=np.int64), tree_edge.column)

        self._refresh_roots_after_insert(frontier)
        self.total_traversals += frontier.traversed_edges
        self.last_batch_traversals = frontier.traversed_edges
        return frontier

    def _refresh_roots_after_insert(self, frontier: UnifiedFrontier) -> None:
        root = self.tree.root
        for vertex in frontier.vertices_for(root).tolist():
            frontier.count_traversal()
            if self.debi.is_root(vertex):
                continue
            if not self.match_def.root_matcher(self.query, self.graph, root, vertex):
                continue
            if self.down_ok(vertex, root):
                self.debi.set_root(vertex)

    # ------------------------------------------------------------------ deletions
    def handle_deletions(self, deleted: list[tuple[EdgeRecord, int]]) -> UnifiedFrontier:
        """Clear DEBI bits after a batch of deletions.

        ``deleted`` holds ``(record, debi_row_mask)`` pairs captured *before*
        the edges were removed from the graph; this method must be called
        *after* the graph mutation and after the rows were cleared.
        """
        frontier = UnifiedFrontier()
        for record, row_mask in deleted:
            for tree_edge in self.tree.tree_edges:
                if row_mask >> tree_edge.column & 1:
                    parent_vertex = self.parent_endpoint(record, tree_edge)
                    frontier.seed_vertex(tree_edge.parent, parent_vertex)

        # Re-check down-consistency from the deepest affected query node upward.
        nodes_bottom_up = sorted(self.tree.bfs_order, key=lambda u: -self.tree.depth[u])
        for node in nodes_bottom_up:
            vertices = frontier.vertices_for(node).tolist()
            if not vertices:
                continue
            if node == self.tree.root:
                for vertex in vertices:
                    frontier.count_traversal()
                    if self.debi.is_root(vertex) and not self.down_ok(vertex, node):
                        self.debi.clear_root(vertex)
                continue
            tree_edge = self.tree.tree_edge_by_child[node]
            for vertex in vertices:
                frontier.count_traversal()
                if self.down_ok(vertex, node):
                    continue
                for eid in self.edges_with_child_at(vertex, tree_edge):
                    frontier.count_traversal()
                    if self.debi.get(eid, tree_edge.column):
                        self.debi.clear(eid, tree_edge.column)
                        record = self.graph.edge(eid)
                        frontier.seed_vertex(tree_edge.parent, self.parent_endpoint(record, tree_edge))

        self.total_traversals += frontier.traversed_edges
        self.last_batch_traversals = frontier.traversed_edges
        return frontier

    # ------------------------------------------------------------------ bulk rebuild
    def rebuild(self) -> UnifiedFrontier:
        """Recompute DEBI from scratch over the current live graph.

        Used for the initial load and for the paper's "periodic reset"
        capability (discard the cumulative index and rebuild from the
        current snapshot).
        """
        self.debi.reset()
        live_edges = [record.edge_id for record in self.graph.edges()]
        return self.handle_insertions(live_edges)
