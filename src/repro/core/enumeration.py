"""Embedding enumeration: work decomposition and the backtracking driver.

Section VI of the paper.  After DEBI has been updated for a batch, every
(updated data edge, matching query edge) pair becomes a *work unit*: an
initial one-edge embedding that is extended to full embeddings by a
backtracking join over DEBI candidates.  Work units are independent, so
they are distributed over workers (see :mod:`repro.core.parallel`).

Duplicate elimination follows the masking rule described in
:mod:`repro.query.masking`: the unit starting at query-edge position
``p`` may not map any query edge at a position ``< p`` to an edge of the
current batch, and a unit starting at a *non-tree* position additionally
requires that the pinned constraint has no witness outside the batch.
Under this rule every newly formed (or destroyed) embedding is emitted
by exactly one work unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.api import MatchDefinition
from repro.core.debi import DEBI
from repro.core.results import Embedding
from repro.graph.adjacency import DynamicGraph
from repro.query.masking import Mask, MaskTable
from repro.query.matching_order import ExtensionStep, MatchingOrder
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.query.query_tree import QueryTree


@dataclass(frozen=True)
class WorkUnit:
    """One unit of enumeration work: a data edge pinned onto a query edge."""

    edge_id: int
    start_edge: int


#: below this pool size the scalar path beats numpy round-trips
_VECTOR_CUTOFF = 8

_EMPTY_CANDIDATES: tuple[list[int], list[int]] = ([], [])


class EnumerationContext:
    """Everything a work unit needs to enumerate embeddings.

    The context also exposes the three paper API calls used by custom
    enumerators: :meth:`get_candidates`, :meth:`verify_nte` and
    :meth:`save_embedding` (the latter simply builds the
    :class:`~repro.core.results.Embedding` record; collection is handled
    by the caller of the enumerator generator).
    """

    def __init__(
        self,
        query: QueryGraph,
        tree: QueryTree,
        graph: DynamicGraph,
        debi: DEBI,
        orders: dict[int, MatchingOrder],
        masks: MaskTable,
        match_def: MatchDefinition,
        batch_edge_ids: set[int],
        positive: bool = True,
        degree_filter: Callable[[int, int], bool] | None = None,
        spilled_edge_ids: set[int] | None = None,
        on_spilled_access: Callable[[int], None] | None = None,
        shared_pool_cache: dict | None = None,
    ) -> None:
        self.query = query
        self.tree = tree
        self.graph = graph
        self.debi = debi
        self.orders = orders
        self.masks = masks
        self.match_def = match_def
        self.batch_edge_ids = batch_edge_ids
        self.positive = positive
        self.degree_filter = degree_filter
        self.spilled_edge_ids = spilled_edge_ids or set()
        self.on_spilled_access = on_spilled_access
        #: number of candidate edges inspected (enumeration-side traversal metric)
        self.candidates_scanned = 0
        #: number of embeddings produced across all units run on this context
        self.embeddings_found = 0
        # Candidate pools may be narrowed to the query edge's label
        # partition only when the match definition promises its
        # edge_matcher implies label equality (see MatchDefinition).
        self._label_partitioned = getattr(match_def, "label_partitioned", True)
        # Per-batch memo of (anchor, direction, column, label) -> candidates.
        # Work units within a batch re-anchor at the same vertices heavily,
        # and the graph/DEBI are frozen for the context's lifetime, so the
        # pools are immutable.  Disabled with an external store: spill
        # notifications must fire on every pool scan, not once per batch.
        self._candidate_memo: dict | None = None if on_spilled_access is not None else {}
        # Cross-query raw-pool cache, shared by every context of a multi-query
        # batch: (anchor, direction, label) -> adjacency pool.  The first query
        # to touch a pool pays the scan (candidates_scanned); later queries
        # reuse it for free and only pay their own DEBI filtering.  Disabled
        # alongside the memo when spill notifications are in play.
        self._shared_pool_cache: dict | None = (
            None if on_spilled_access is not None else shared_pool_cache
        )

    # ------------------------------------------------------------------ paper API
    def get_candidates(self, step: ExtensionStep, anchor_vertex: int) -> list[int]:
        """DEBI-filtered candidate edges for ``step`` anchored at ``anchor_vertex``.

        Returns a fresh list (callers may mutate it); the memoised pair
        behind it is shared and must stay untouched.
        """
        return list(self.get_candidates_with_endpoints(step, anchor_vertex)[0])

    def get_candidates_with_endpoints(
        self, step: ExtensionStep, anchor_vertex: int
    ) -> tuple[list[int], list[int]]:
        """Fused candidate fetch: ``(edge_ids, new_vertices)`` for one step.

        Pulls the anchor's adjacency partition for the step's edge label
        (the whole list for wildcard steps), filters it against the
        step's DEBI column, and gathers the non-anchor endpoint of every
        survivor — one vectorized pass instead of a per-edge Python loop
        with an :class:`~repro.graph.edge.EdgeRecord` construction per
        candidate.  Results are memoised per batch.
        """
        label = step.edge_label
        if not self._label_partitioned or label == WILDCARD_LABEL:
            label = None
        memo = self._candidate_memo
        if memo is not None:
            key = (anchor_vertex, step.anchor_is_src, step.debi_column, label)
            cached = memo.get(key)
            if cached is not None:
                return cached
        graph = self.graph
        shared = self._shared_pool_cache
        if shared is not None:
            pool_key = (anchor_vertex, step.anchor_is_src, label)
            pool = shared.get(pool_key)
            if pool is None:
                pool = graph.candidate_pool(anchor_vertex, step.anchor_is_src, label)
                self.candidates_scanned += len(pool)
                shared[pool_key] = pool
        else:
            pool = graph.candidate_pool(anchor_vertex, step.anchor_is_src, label)
            self.candidates_scanned += len(pool)
        n = len(pool)
        column = step.debi_column
        if n == 0:
            result = _EMPTY_CANDIDATES
        elif n < _VECTOR_CUTOFF:
            pool_list = pool if isinstance(pool, list) else pool.tolist()
            if column is None:
                # Copy: the wildcard pool IS the live adjacency list, and
                # the result may be memoised / handed to callers.
                ids = list(pool_list)
            else:
                ids = self.debi.filter_candidates(pool_list, column)
            result = (ids, graph.endpoint_list(ids, step.anchor_is_src))
        else:
            arr = pool if isinstance(pool, np.ndarray) else np.asarray(pool, dtype=np.int64)
            hits = arr if column is None else arr[self.debi.column_mask(arr, column)]
            endpoints = graph.endpoint_array(hits, step.anchor_is_src)
            result = (hits.tolist(), endpoints.tolist())
        if self.on_spilled_access is not None and self.spilled_edge_ids:
            # Only spilled edges can need a fetch; intersect with the
            # (small) spill set instead of walking the whole pool.
            for eid in self.spilled_edge_ids.intersection(
                pool if isinstance(pool, list) else pool.tolist()
            ):
                self.on_spilled_access(eid)
        if memo is not None:
            memo[key] = result
        return result

    def verify_nte(
        self,
        query_edge_index: int,
        node_map: dict[int, int],
        mask: Mask,
        used_edges: set[int],
    ) -> list[int]:
        """Witness edges for a query edge whose endpoints are both bound.

        Respects the duplicate-elimination mask (masked positions may only
        use witnesses outside the current batch).  Returns at most one
        witness unless the match definition binds witnesses explicitly.
        """
        q_edge = self.query.edge(query_edge_index)
        v_src = node_map[q_edge.src]
        v_dst = node_map[q_edge.dst]
        masked = mask.is_masked(query_edge_index)
        witnesses: list[int] = []
        for eid in self.graph.find_edges(v_src, v_dst):
            self.candidates_scanned += 1
            self._note_access(eid)
            if masked and eid in self.batch_edge_ids:
                continue
            if self.match_def.injective and eid in used_edges:
                continue
            record = self.graph.edge(eid)
            if self.match_def.edge_matcher(self.query, self.graph, q_edge, record):
                witnesses.append(eid)
                if not self.match_def.bind_witnesses:
                    break
        return witnesses

    def save_embedding(
        self, node_map: dict[int, int], edge_map: dict[int, int], start_edge: int
    ) -> Embedding:
        """Materialise an embedding record (paper's ``saveEmbedding``)."""
        self.embeddings_found += 1
        return Embedding.build(node_map, edge_map, start_edge, positive=self.positive)

    # ------------------------------------------------------------------ helpers
    def has_non_batch_witness(self, query_edge_index: int, src_vertex: int, dst_vertex: int,
                              exclude_edge: int) -> bool:
        """Is the constraint already witnessed by an edge outside the batch?"""
        q_edge = self.query.edge(query_edge_index)
        for eid in self.graph.find_edges(src_vertex, dst_vertex):
            if eid == exclude_edge or eid in self.batch_edge_ids:
                continue
            if self.match_def.edge_matcher(self.query, self.graph, q_edge, self.graph.edge(eid)):
                return True
        return False

    def degree_ok(self, vertex: int, query_node: int) -> bool:
        if self.degree_filter is None:
            return True
        return self.degree_filter(vertex, query_node)

    def _note_access(self, edge_id: int) -> None:
        if self.on_spilled_access is not None and edge_id in self.spilled_edge_ids:
            self.on_spilled_access(edge_id)


def degree_requirements_ok(
    graph, out_requirements: dict, in_requirements: dict, vertex: int, query_node: int
) -> bool:
    """The paper's f2/f3 rule: the data vertex's per-label degrees must
    cover the query node's requirements.

    Shared by the live-graph path
    (:meth:`~repro.core.filtering.IndexManager.degree_ok`) and the
    worker-side :class:`ArrayDegreeFilter`, so both backends prune
    identically by construction.
    """
    for label, needed in out_requirements[query_node].items():
        if label == WILDCARD_LABEL:
            if graph.out_degree(vertex) < needed:
                return False
        elif graph.out_label_degree(vertex, label) < needed:
            return False
    for label, needed in in_requirements[query_node].items():
        if label == WILDCARD_LABEL:
            if graph.in_degree(vertex) < needed:
                return False
        elif graph.in_label_degree(vertex, label) < needed:
            return False
    return True


class ArrayDegreeFilter:
    """The f2/f3 label-degree check over an array-view graph, memoised.

    Worker processes cannot call the parent's
    :meth:`~repro.core.filtering.IndexManager.degree_ok` (it closes over
    live parent objects), so they rebuild the same predicate from the
    per-query-node label requirements and the attached
    :class:`~repro.graph.adjacency.CSRGraphView`.  The view computes
    label degrees by scanning an adjacency slice, so results are memoised
    per ``(vertex, query node)`` pair — candidate vertices repeat heavily
    within a batch.
    """

    def __init__(self, graph, out_requirements: dict, in_requirements: dict) -> None:
        self._graph = graph
        self._out_req = out_requirements
        self._in_req = in_requirements
        self._memo: dict[tuple[int, int], bool] = {}

    def __call__(self, vertex: int, query_node: int) -> bool:
        key = (vertex, query_node)
        cached = self._memo.get(key)
        if cached is None:
            cached = degree_requirements_ok(
                self._graph, self._out_req, self._in_req, vertex, query_node
            )
            self._memo[key] = cached
        return cached


@dataclass
class QueryState:
    """The picklable query-side half of an engine, shipped to pool workers once.

    Everything here is fixed for the engine's lifetime (the query and its
    precomputation), so the persistent pool sends it a single time at
    spawn; per-batch messages then carry only the shared-memory snapshot
    descriptor and work-unit arrays.  :meth:`make_context` is the
    worker-side factory that combines this state with the attached
    array views into a ready-to-enumerate :class:`EnumerationContext`.
    """

    query: QueryGraph
    tree: QueryTree
    orders: dict[int, MatchingOrder]
    masks: MaskTable
    match_def: MatchDefinition
    use_degree_filter: bool = True
    out_requirements: dict = field(default_factory=dict)
    in_requirements: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        query: QueryGraph,
        tree: QueryTree,
        orders: dict[int, MatchingOrder],
        masks: MaskTable,
        match_def: MatchDefinition,
        use_degree_filter: bool,
    ) -> "QueryState":
        return cls(
            query=query,
            tree=tree,
            orders=orders,
            masks=masks,
            match_def=match_def,
            use_degree_filter=use_degree_filter,
            out_requirements={u: query.out_label_requirement(u) for u in query.nodes()},
            in_requirements={u: query.in_label_requirement(u) for u in query.nodes()},
        )

    def make_context(
        self,
        graph,
        debi: DEBI,
        batch_edge_ids: set[int],
        positive: bool,
        shared_pool_cache: dict | None = None,
    ) -> EnumerationContext:
        """Build an array-view enumeration context for one published snapshot."""
        degree_filter = None
        if self.use_degree_filter and self.match_def.injective:
            degree_filter = ArrayDegreeFilter(
                graph, self.out_requirements, self.in_requirements
            )
        return EnumerationContext(
            query=self.query,
            tree=self.tree,
            graph=graph,
            debi=debi,
            orders=self.orders,
            masks=self.masks,
            match_def=self.match_def,
            batch_edge_ids=batch_edge_ids,
            positive=positive,
            degree_filter=degree_filter,
            shared_pool_cache=shared_pool_cache,
        )


# ---------------------------------------------------------------------- work decomposition
def decompose_batch(
    context: EnumerationContext,
    batch_edge_ids: Iterable[int],
) -> list[WorkUnit]:
    """Build the work units for a batch (Section VI, "Work decomposition").

    A unit is created for every (updated edge, query edge) pair whose
    labels match.  Tree-edge units additionally require the DEBI bit to be
    set — if it is not, the edge cannot participate in any embedding and
    the unit would do no work.
    """
    units: list[WorkUnit] = []
    query = context.query
    tree = context.tree
    for eid in batch_edge_ids:
        record = context.graph.edge(eid)
        for q_edge in query.edges():
            if not context.match_def.edge_matcher(query, context.graph, q_edge, record):
                continue
            if tree.is_tree_edge(q_edge.index):
                column = tree.tree_edge_for(q_edge.index).column
                if not context.debi.get(eid, column):
                    continue
            units.append(WorkUnit(edge_id=eid, start_edge=q_edge.index))
    return units


# ---------------------------------------------------------------------- backtracking enumerator
def backtracking_enumerate(context: EnumerationContext, unit: WorkUnit) -> Iterator[Embedding]:
    """The default enumerator (the paper's Figure 4, generalised).

    Pins ``unit.edge_id`` onto ``unit.start_edge``, then binds the
    remaining query nodes following the cached matching order, consulting
    DEBI for tree-edge candidates and verifying every other constraint
    between bound nodes.  Injectivity, witness binding and the final
    ``accept`` predicate come from the match definition.
    """
    query = context.query
    graph = context.graph
    match_def = context.match_def
    order = context.orders[unit.start_edge]
    mask = context.masks.mask_for(unit.start_edge)

    record = graph.edge(unit.edge_id)
    start_edge = query.edge(unit.start_edge)
    if not match_def.edge_matcher(query, graph, start_edge, record):
        return
    if match_def.injective and start_edge.src != start_edge.dst and record.src == record.dst:
        return
    if start_edge.src == start_edge.dst and record.src != record.dst:
        return

    # Duplicate elimination for non-tree starts: the pinned constraint must
    # not already be witnessed outside the batch (see repro.query.masking).
    if mask.require_no_old_witness and context.has_non_batch_witness(
        unit.start_edge, record.src, record.dst, exclude_edge=record.edge_id
    ):
        return

    node_map: dict[int, int] = {start_edge.src: record.src, start_edge.dst: record.dst}
    edge_map: dict[int, int] = {unit.start_edge: record.edge_id}

    if not context.degree_ok(record.src, start_edge.src):
        return
    if not context.degree_ok(record.dst, start_edge.dst):
        return

    def verify_chain(verify_edges: tuple[int, ...], position: int, continuation):
        if position == len(verify_edges):
            yield from continuation()
            return
        q_index = verify_edges[position]
        witnesses = context.verify_nte(q_index, node_map, mask, set(edge_map.values()))
        if not witnesses:
            return
        if match_def.bind_witnesses:
            for witness in witnesses:
                edge_map[q_index] = witness
                yield from verify_chain(verify_edges, position + 1, continuation)
                del edge_map[q_index]
        else:
            yield from verify_chain(verify_edges, position + 1, continuation)

    def extend(step_index: int):
        if step_index == len(order.steps):
            embedding = context.save_embedding(node_map, edge_map, unit.start_edge)
            if match_def.accept(context, embedding):
                yield embedding
            else:
                context.embeddings_found -= 1
            return
        step = order.steps[step_index]
        anchor_vertex = node_map[step.anchor]
        masked = mask.is_masked(step.tree_edge_index)
        used_edges = set(edge_map.values())
        cand_ids, cand_vertices = context.get_candidates_with_endpoints(step, anchor_vertex)
        for eid, new_vertex in zip(cand_ids, cand_vertices):
            if masked and eid in context.batch_edge_ids:
                continue
            if match_def.injective and eid in used_edges:
                continue
            if match_def.injective and new_vertex in node_map.values():
                continue
            if step.node == context.tree.root and not context.debi.is_root(new_vertex):
                continue
            if not context.degree_ok(new_vertex, step.node):
                continue
            node_map[step.node] = new_vertex
            edge_map[step.tree_edge_index] = eid
            yield from verify_chain(step.verify_edges, 0, lambda i=step_index: extend(i + 1))
            del node_map[step.node]
            del edge_map[step.tree_edge_index]

    yield from verify_chain(order.start_verify_edges, 0, lambda: extend(0))


def enumerate_units(context: EnumerationContext, units: Iterable[WorkUnit]) -> list[Embedding]:
    """Run every unit through the match definition's enumerator (serial helper)."""
    results: list[Embedding] = []
    for unit in units:
        results.extend(context.match_def.enumerate(context, unit))
    return results
