"""Embedding enumeration: work decomposition and the backtracking driver.

Section VI of the paper.  After DEBI has been updated for a batch, every
(updated data edge, matching query edge) pair becomes a *work unit*: an
initial one-edge embedding that is extended to full embeddings by a
backtracking join over DEBI candidates.  Work units are independent, so
they are distributed over workers (see :mod:`repro.core.parallel`).

Duplicate elimination follows the masking rule described in
:mod:`repro.query.masking`: the unit starting at query-edge position
``p`` may not map any query edge at a position ``< p`` to an edge of the
current batch, and a unit starting at a *non-tree* position additionally
requires that the pinned constraint has no witness outside the batch.
Under this rule every newly formed (or destroyed) embedding is emitted
by exactly one work unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.api import MatchDefinition
from repro.core.debi import DEBI
from repro.core.results import Embedding
from repro.graph.adjacency import DynamicGraph
from repro.query.masking import Mask, MaskTable
from repro.query.matching_order import ExtensionStep, MatchingOrder
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.query.query_tree import QueryTree
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WorkUnit:
    """One unit of enumeration work: a data edge pinned onto a query edge."""

    edge_id: int
    start_edge: int


#: below this pool size the scalar path beats numpy round-trips
_VECTOR_CUTOFF = 8

_EMPTY_CANDIDATES: tuple[list[int], list[int]] = ([], [])


class EnumerationContext:
    """Everything a work unit needs to enumerate embeddings.

    The context also exposes the three paper API calls used by custom
    enumerators: :meth:`get_candidates`, :meth:`verify_nte` and
    :meth:`save_embedding` (the latter simply builds the
    :class:`~repro.core.results.Embedding` record; collection is handled
    by the caller of the enumerator generator).
    """

    def __init__(
        self,
        query: QueryGraph,
        tree: QueryTree,
        graph: DynamicGraph,
        debi: DEBI,
        orders: dict[int, MatchingOrder],
        masks: MaskTable,
        match_def: MatchDefinition,
        batch_edge_ids: set[int],
        positive: bool = True,
        degree_filter: Callable[[int, int], bool] | None = None,
        spilled_edge_ids: set[int] | None = None,
        on_spilled_access: Callable[[int], None] | None = None,
        shared_pool_cache: dict | None = None,
        kernel: str = "columnar",
        arena: "EmbeddingArena | None" = None,
    ) -> None:
        self.query = query
        self.tree = tree
        self.graph = graph
        self.debi = debi
        self.orders = orders
        self.masks = masks
        self.match_def = match_def
        self.batch_edge_ids = batch_edge_ids
        self.positive = positive
        self.degree_filter = degree_filter
        self.spilled_edge_ids = spilled_edge_ids or set()
        self.on_spilled_access = on_spilled_access
        #: which enumeration kernel drives default match definitions:
        #: "columnar" (arena-backed batched kernel) or "python" (the
        #: per-tuple reference).  Custom enumerators always run as-is.
        self.kernel = kernel
        #: reusable column arena for the columnar kernel (None = transient)
        self.arena = arena
        #: number of candidate edges inspected (enumeration-side traversal metric)
        self.candidates_scanned = 0
        #: number of embeddings produced across all units run on this context
        self.embeddings_found = 0
        # Candidate pools may be narrowed to the query edge's label
        # partition only when the match definition promises its
        # edge_matcher implies label equality (see MatchDefinition).
        self._label_partitioned = getattr(match_def, "label_partitioned", True)
        # Per-batch memo of (anchor, direction, column, label) -> candidates.
        # Work units within a batch re-anchor at the same vertices heavily,
        # and the graph/DEBI are frozen for the context's lifetime, so the
        # pools are immutable.  Disabled with an external store: spill
        # notifications must fire on every pool scan, not once per batch.
        self._candidate_memo: dict | None = None if on_spilled_access is not None else {}
        # Cross-query raw-pool cache, shared by every context of a multi-query
        # batch: (anchor, direction, label) -> adjacency pool.  The first query
        # to touch a pool pays the scan (candidates_scanned); later queries
        # reuse it for free and only pay their own DEBI filtering.  Disabled
        # alongside the memo when spill notifications are in play.
        self._shared_pool_cache: dict | None = (
            None if on_spilled_access is not None else shared_pool_cache
        )
        # Columnar-kernel caches: int64 array forms of the memoised pools
        # and the batch id set (built lazily, only when the kernel runs).
        self._array_memo: dict = {}
        self._batch_ids_array: np.ndarray | None = None

    # ------------------------------------------------------------------ paper API
    def get_candidates(self, step: ExtensionStep, anchor_vertex: int) -> list[int]:
        """DEBI-filtered candidate edges for ``step`` anchored at ``anchor_vertex``.

        Returns a fresh list (callers may mutate it); the memoised pair
        behind it is shared and must stay untouched.
        """
        return list(self.get_candidates_with_endpoints(step, anchor_vertex)[0])

    def get_candidates_with_endpoints(
        self, step: ExtensionStep, anchor_vertex: int
    ) -> tuple[list[int], list[int]]:
        """Fused candidate fetch: ``(edge_ids, new_vertices)`` for one step.

        Pulls the anchor's adjacency partition for the step's edge label
        (the whole list for wildcard steps), filters it against the
        step's DEBI column, and gathers the non-anchor endpoint of every
        survivor — one vectorized pass instead of a per-edge Python loop
        with an :class:`~repro.graph.edge.EdgeRecord` construction per
        candidate.  Results are memoised per batch.
        """
        label = step.edge_label
        if not self._label_partitioned or label == WILDCARD_LABEL:
            label = None
        memo = self._candidate_memo
        if memo is not None:
            key = (anchor_vertex, step.anchor_is_src, step.debi_column, label)
            cached = memo.get(key)
            if cached is not None:
                return cached
        graph = self.graph
        shared = self._shared_pool_cache
        if shared is not None:
            pool_key = (anchor_vertex, step.anchor_is_src, label)
            pool = shared.get(pool_key)
            if pool is None:
                pool = graph.candidate_pool(anchor_vertex, step.anchor_is_src, label)
                self.candidates_scanned += len(pool)
                shared[pool_key] = pool
        else:
            pool = graph.candidate_pool(anchor_vertex, step.anchor_is_src, label)
            self.candidates_scanned += len(pool)
        n = len(pool)
        column = step.debi_column
        if n == 0:
            result = _EMPTY_CANDIDATES
        elif n < _VECTOR_CUTOFF:
            pool_list = pool if isinstance(pool, list) else pool.tolist()
            if column is None:
                # Copy: the wildcard pool IS the live adjacency list, and
                # the result may be memoised / handed to callers.
                ids = list(pool_list)
            else:
                ids = self.debi.filter_candidates(pool_list, column)
            result = (ids, graph.endpoint_list(ids, step.anchor_is_src))
        else:
            arr = pool if isinstance(pool, np.ndarray) else np.asarray(pool, dtype=np.int64)
            hits = arr if column is None else arr[self.debi.column_mask(arr, column)]
            endpoints = graph.endpoint_array(hits, step.anchor_is_src)
            result = (hits.tolist(), endpoints.tolist())
        if self.on_spilled_access is not None and self.spilled_edge_ids:
            # Only spilled edges can need a fetch; intersect with the
            # (small) spill set instead of walking the whole pool.
            for eid in self.spilled_edge_ids.intersection(
                pool if isinstance(pool, list) else pool.tolist()
            ):
                self.on_spilled_access(eid)
        if memo is not None:
            memo[key] = result
        return result

    def get_candidate_arrays(
        self, step: ExtensionStep, anchor_vertex: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array view of :meth:`get_candidates_with_endpoints` for the kernel.

        Delegates the fetch (and thus all ``candidates_scanned``
        accounting and memoisation) to the list-based path, then caches
        the int64 array conversion per memo key so hot anchors convert
        once per batch, not once per touching work unit.
        """
        label = step.edge_label
        if not self._label_partitioned or label == WILDCARD_LABEL:
            label = None
        key = (anchor_vertex, step.anchor_is_src, step.debi_column, label)
        cached = self._array_memo.get(key)
        if cached is not None:
            return cached
        ids, verts = self.get_candidates_with_endpoints(step, anchor_vertex)
        arrays = (
            np.asarray(ids, dtype=np.int64),
            np.asarray(verts, dtype=np.int64),
        )
        self._array_memo[key] = arrays
        return arrays

    def batch_ids_array(self) -> np.ndarray:
        """The batch's edge ids as a sorted int64 array (cached per context)."""
        arr = self._batch_ids_array
        if arr is None:
            arr = np.sort(np.fromiter(self.batch_edge_ids, dtype=np.int64,
                                      count=len(self.batch_edge_ids)))
            self._batch_ids_array = arr
        return arr

    def verify_nte(
        self,
        query_edge_index: int,
        node_map: dict[int, int],
        mask: Mask,
        used_edges: set[int],
    ) -> list[int]:
        """Witness edges for a query edge whose endpoints are both bound.

        Respects the duplicate-elimination mask (masked positions may only
        use witnesses outside the current batch).  Returns at most one
        witness unless the match definition binds witnesses explicitly.
        """
        q_edge = self.query.edge(query_edge_index)
        return self.verify_witnesses(
            q_edge, node_map[q_edge.src], node_map[q_edge.dst],
            mask.is_masked(query_edge_index), used_edges,
        )

    def verify_witnesses(
        self, q_edge, v_src: int, v_dst: int, masked: bool, used_edges: set[int]
    ) -> list[int]:
        """Endpoint-based core of :meth:`verify_nte`.

        Split out so the columnar kernel can verify a constraint for one
        arena row without materialising a ``node_map`` dict; scanning and
        counting are byte-identical to the tuple path by construction.
        """
        witnesses: list[int] = []
        for eid in self.graph.find_edges(v_src, v_dst):
            self.candidates_scanned += 1
            self._note_access(eid)
            if masked and eid in self.batch_edge_ids:
                continue
            if self.match_def.injective and eid in used_edges:
                continue
            record = self.graph.edge(eid)
            if self.match_def.edge_matcher(self.query, self.graph, q_edge, record):
                witnesses.append(eid)
                if not self.match_def.bind_witnesses:
                    break
        return witnesses

    def save_embedding(
        self, node_map: dict[int, int], edge_map: dict[int, int], start_edge: int
    ) -> Embedding:
        """Materialise an embedding record (paper's ``saveEmbedding``)."""
        self.embeddings_found += 1
        return Embedding.build(node_map, edge_map, start_edge, positive=self.positive)

    # ------------------------------------------------------------------ helpers
    def has_non_batch_witness(self, query_edge_index: int, src_vertex: int, dst_vertex: int,
                              exclude_edge: int) -> bool:
        """Is the constraint already witnessed by an edge outside the batch?"""
        q_edge = self.query.edge(query_edge_index)
        for eid in self.graph.find_edges(src_vertex, dst_vertex):
            if eid == exclude_edge or eid in self.batch_edge_ids:
                continue
            if self.match_def.edge_matcher(self.query, self.graph, q_edge, self.graph.edge(eid)):
                return True
        return False

    def degree_ok(self, vertex: int, query_node: int) -> bool:
        if self.degree_filter is None:
            return True
        return self.degree_filter(vertex, query_node)

    def _note_access(self, edge_id: int) -> None:
        if self.on_spilled_access is not None and edge_id in self.spilled_edge_ids:
            self.on_spilled_access(edge_id)


def degree_requirements_ok(
    graph, out_requirements: dict, in_requirements: dict, vertex: int, query_node: int
) -> bool:
    """The paper's f2/f3 rule: the data vertex's per-label degrees must
    cover the query node's requirements.

    Shared by the live-graph path
    (:meth:`~repro.core.filtering.IndexManager.degree_ok`) and the
    worker-side :class:`ArrayDegreeFilter`, so both backends prune
    identically by construction.
    """
    for label, needed in out_requirements[query_node].items():
        if label == WILDCARD_LABEL:
            if graph.out_degree(vertex) < needed:
                return False
        elif graph.out_label_degree(vertex, label) < needed:
            return False
    for label, needed in in_requirements[query_node].items():
        if label == WILDCARD_LABEL:
            if graph.in_degree(vertex) < needed:
                return False
        elif graph.in_label_degree(vertex, label) < needed:
            return False
    return True


class ArrayDegreeFilter:
    """The f2/f3 label-degree check over an array-view graph, memoised.

    Worker processes cannot call the parent's
    :meth:`~repro.core.filtering.IndexManager.degree_ok` (it closes over
    live parent objects), so they rebuild the same predicate from the
    per-query-node label requirements and the attached
    :class:`~repro.graph.adjacency.CSRGraphView`.  The view computes
    label degrees by scanning an adjacency slice, so results are memoised
    per ``(vertex, query node)`` pair — candidate vertices repeat heavily
    within a batch.
    """

    def __init__(self, graph, out_requirements: dict, in_requirements: dict) -> None:
        self._graph = graph
        self._out_req = out_requirements
        self._in_req = in_requirements
        self._memo: dict[tuple[int, int], bool] = {}

    def __call__(self, vertex: int, query_node: int) -> bool:
        key = (vertex, query_node)
        cached = self._memo.get(key)
        if cached is None:
            cached = degree_requirements_ok(
                self._graph, self._out_req, self._in_req, vertex, query_node
            )
            self._memo[key] = cached
        return cached


@dataclass
class QueryState:
    """The picklable query-side half of an engine, shipped to pool workers once.

    Everything here is fixed for the engine's lifetime (the query and its
    precomputation), so the persistent pool sends it a single time at
    spawn; per-batch messages then carry only the shared-memory snapshot
    descriptor and work-unit arrays.  :meth:`make_context` is the
    worker-side factory that combines this state with the attached
    array views into a ready-to-enumerate :class:`EnumerationContext`.
    """

    query: QueryGraph
    tree: QueryTree
    orders: dict[int, MatchingOrder]
    masks: MaskTable
    match_def: MatchDefinition
    use_degree_filter: bool = True
    out_requirements: dict = field(default_factory=dict)
    in_requirements: dict = field(default_factory=dict)
    kernel: str = "columnar"

    @classmethod
    def build(
        cls,
        query: QueryGraph,
        tree: QueryTree,
        orders: dict[int, MatchingOrder],
        masks: MaskTable,
        match_def: MatchDefinition,
        use_degree_filter: bool,
        kernel: str = "columnar",
    ) -> "QueryState":
        return cls(
            query=query,
            tree=tree,
            orders=orders,
            masks=masks,
            match_def=match_def,
            use_degree_filter=use_degree_filter,
            out_requirements={u: query.out_label_requirement(u) for u in query.nodes()},
            in_requirements={u: query.in_label_requirement(u) for u in query.nodes()},
            kernel=kernel,
        )

    def make_context(
        self,
        graph,
        debi: DEBI,
        batch_edge_ids: set[int],
        positive: bool,
        shared_pool_cache: dict | None = None,
        arena: "EmbeddingArena | None" = None,
    ) -> EnumerationContext:
        """Build an array-view enumeration context for one published snapshot."""
        degree_filter = None
        if self.use_degree_filter and self.match_def.injective:
            degree_filter = ArrayDegreeFilter(
                graph, self.out_requirements, self.in_requirements
            )
        return EnumerationContext(
            query=self.query,
            tree=self.tree,
            graph=graph,
            debi=debi,
            orders=self.orders,
            masks=self.masks,
            match_def=self.match_def,
            batch_edge_ids=batch_edge_ids,
            positive=positive,
            degree_filter=degree_filter,
            shared_pool_cache=shared_pool_cache,
            kernel=self.kernel,
            arena=arena,
        )


# ---------------------------------------------------------------------- work decomposition
def decompose_batch(
    context: EnumerationContext,
    batch_edge_ids: Iterable[int],
) -> list[WorkUnit]:
    """Build the work units for a batch (Section VI, "Work decomposition").

    A unit is created for every (updated edge, query edge) pair whose
    labels match.  Tree-edge units additionally require the DEBI bit to be
    set — if it is not, the edge cannot participate in any embedding and
    the unit would do no work.
    """
    units: list[WorkUnit] = []
    query = context.query
    tree = context.tree
    for eid in batch_edge_ids:
        record = context.graph.edge(eid)
        for q_edge in query.edges():
            if not context.match_def.edge_matcher(query, context.graph, q_edge, record):
                continue
            if tree.is_tree_edge(q_edge.index):
                column = tree.tree_edge_for(q_edge.index).column
                if not context.debi.get(eid, column):
                    continue
            units.append(WorkUnit(edge_id=eid, start_edge=q_edge.index))
    return units


# ---------------------------------------------------------------------- backtracking enumerator
def backtracking_enumerate(context: EnumerationContext, unit: WorkUnit) -> Iterator[Embedding]:
    """The default enumerator (the paper's Figure 4, generalised).

    Pins ``unit.edge_id`` onto ``unit.start_edge``, then binds the
    remaining query nodes following the cached matching order, consulting
    DEBI for tree-edge candidates and verifying every other constraint
    between bound nodes.  Injectivity, witness binding and the final
    ``accept`` predicate come from the match definition.
    """
    query = context.query
    graph = context.graph
    match_def = context.match_def
    order = context.orders[unit.start_edge]
    mask = context.masks.mask_for(unit.start_edge)

    record = graph.edge(unit.edge_id)
    start_edge = query.edge(unit.start_edge)
    if not match_def.edge_matcher(query, graph, start_edge, record):
        return
    if match_def.injective and start_edge.src != start_edge.dst and record.src == record.dst:
        return
    if start_edge.src == start_edge.dst and record.src != record.dst:
        return

    # Duplicate elimination for non-tree starts: the pinned constraint must
    # not already be witnessed outside the batch (see repro.query.masking).
    if mask.require_no_old_witness and context.has_non_batch_witness(
        unit.start_edge, record.src, record.dst, exclude_edge=record.edge_id
    ):
        return

    node_map: dict[int, int] = {start_edge.src: record.src, start_edge.dst: record.dst}
    edge_map: dict[int, int] = {unit.start_edge: record.edge_id}

    if not context.degree_ok(record.src, start_edge.src):
        return
    if not context.degree_ok(record.dst, start_edge.dst):
        return

    def verify_chain(verify_edges: tuple[int, ...], position: int, continuation):
        if position == len(verify_edges):
            yield from continuation()
            return
        q_index = verify_edges[position]
        witnesses = context.verify_nte(q_index, node_map, mask, set(edge_map.values()))
        if not witnesses:
            return
        if match_def.bind_witnesses:
            for witness in witnesses:
                edge_map[q_index] = witness
                yield from verify_chain(verify_edges, position + 1, continuation)
                del edge_map[q_index]
        else:
            yield from verify_chain(verify_edges, position + 1, continuation)

    def extend(step_index: int):
        if step_index == len(order.steps):
            embedding = context.save_embedding(node_map, edge_map, unit.start_edge)
            if match_def.accept(context, embedding):
                yield embedding
            else:
                context.embeddings_found -= 1
            return
        step = order.steps[step_index]
        anchor_vertex = node_map[step.anchor]
        masked = mask.is_masked(step.tree_edge_index)
        used_edges = set(edge_map.values())
        cand_ids, cand_vertices = context.get_candidates_with_endpoints(step, anchor_vertex)
        for eid, new_vertex in zip(cand_ids, cand_vertices):
            if masked and eid in context.batch_edge_ids:
                continue
            if match_def.injective and eid in used_edges:
                continue
            if match_def.injective and new_vertex in node_map.values():
                continue
            if step.node == context.tree.root and not context.debi.is_root(new_vertex):
                continue
            if not context.degree_ok(new_vertex, step.node):
                continue
            node_map[step.node] = new_vertex
            edge_map[step.tree_edge_index] = eid
            yield from verify_chain(step.verify_edges, 0, lambda i=step_index: extend(i + 1))
            del node_map[step.node]
            del edge_map[step.tree_edge_index]

    yield from verify_chain(order.start_verify_edges, 0, lambda: extend(0))


def enumerate_units(context: EnumerationContext, units: Iterable[WorkUnit]) -> list[Embedding]:
    """Run every unit through the configured kernel (serial helper)."""
    unit_list = list(units)
    if columnar_supported(context):
        return columnar_enumerate(context, unit_list)[0]
    results: list[Embedding] = []
    for unit in unit_list:
        results.extend(context.match_def.enumerate(context, unit))
    return results


# ---------------------------------------------------------------------- columnar kernel
class EmbeddingArena:
    """Preallocated, double-buffered int64 column blocks for partial embeddings.

    The columnar kernel represents the live frontier of partial
    embeddings as ``(depth, capacity)`` column blocks: row ``d`` of the
    node block holds the data vertex bound to the ``d``-th query node of
    the matching order, one column per live partial embedding.  Each
    expansion step reads the *front* block and scatters survivors into
    the *back* block (``np.take(..., out=...)`` — no per-step
    allocation), then the buffers swap.  Capacity grows geometrically
    and is kept across batches, so steady-state streaming does no
    allocation at all in the extend loop.
    """

    __slots__ = (
        "capacity", "grow_events", "batches_served", "high_water",
        "_caps", "_nodes", "_edges", "_back", "_node_rows", "_edge_rows",
    )

    def __init__(self, capacity: int = 1024) -> None:
        check_positive(capacity, "capacity")
        self.capacity = capacity
        #: geometric growths performed (property-test observability)
        self.grow_events = 0
        #: how many kernel invocations reused this arena
        self.batches_served = 0
        #: widest live block ever held
        self.high_water = 0
        self._caps = [capacity, capacity]
        self._nodes: list[np.ndarray | None] = [None, None]
        self._edges: list[np.ndarray | None] = [None, None]
        self._back = 0
        self._node_rows = 0
        self._edge_rows = 0

    def begin(self, node_rows: int, edge_rows: int) -> None:
        """Size the slot dimension for one start-edge group (rows = bound slots)."""
        self.batches_served += 1
        if node_rows > self._node_rows or edge_rows > self._edge_rows:
            self._node_rows = max(self._node_rows, node_rows)
            self._edge_rows = max(self._edge_rows, edge_rows)
            for i in (0, 1):
                self._nodes[i] = np.empty((self._node_rows, self._caps[i]), dtype=np.int64)
                self._edges[i] = np.empty((self._edge_rows, self._caps[i]), dtype=np.int64)

    def reserve(self, rows: int) -> None:
        """Grow the back buffer geometrically so it can hold ``rows`` columns."""
        self.high_water = max(self.high_water, rows)
        cap = self._caps[self._back]
        if rows <= cap and self._nodes[self._back] is not None:
            return
        while cap < rows:
            cap *= 2
        if cap > self._caps[self._back]:
            self.grow_events += 1
        self._caps[self._back] = cap
        self.capacity = max(self.capacity, cap)
        self._nodes[self._back] = np.empty((self._node_rows, cap), dtype=np.int64)
        self._edges[self._back] = np.empty((self._edge_rows, cap), dtype=np.int64)

    def back(self) -> tuple[np.ndarray, np.ndarray]:
        nodes = self._nodes[self._back]
        edges = self._edges[self._back]
        assert nodes is not None and edges is not None
        return nodes, edges

    def front(self) -> tuple[np.ndarray, np.ndarray]:
        nodes = self._nodes[1 - self._back]
        edges = self._edges[1 - self._back]
        assert nodes is not None and edges is not None
        return nodes, edges

    def swap(self) -> None:
        self._back = 1 - self._back


def columnar_supported(context: EnumerationContext) -> bool:
    """May the columnar kernel replace the tuple path for this context?

    The kernel reproduces exactly the *default* enumerate/accept
    semantics without witness binding; anything customised falls back to
    the reference path.  Spill-notification contexts are excluded too:
    their candidate fetches must fire per scan (the memo the kernel
    leans on is disabled there).
    """
    match_def = context.match_def
    return (
        context.kernel == "columnar"
        and type(match_def).enumerate is MatchDefinition.enumerate
        and type(match_def).accept is MatchDefinition.accept
        and not match_def.bind_witnesses
        and context.on_spilled_access is None
        and context._candidate_memo is not None
    )


def extend_intersect(
    inv: np.ndarray,
    order_idx: np.ndarray,
    group_counts: np.ndarray,
    pool_ids: list[np.ndarray],
    pool_verts: list[np.ndarray],
    pool_sizes: np.ndarray,
    bound_nodes: np.ndarray,
    bound_edges: np.ndarray,
    batch_ids: np.ndarray,
    masked: bool,
    injective: bool,
    root_mask_fn,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One batched extend/intersect step — the kernel seam.

    Cross-joins the live embedding block against the per-anchor candidate
    pools and applies every vectorizable predicate of the tuple path's
    extend loop, in the same order: batch masking, edge injectivity,
    vertex injectivity, root candidacy.  Contiguous arrays in, contiguous
    arrays out — this single function boundary is where a numba/Cython
    drop-in would slot, with only ``root_mask_fn`` (a word-gather over
    the DEBI roots bit-vector) to inline.

    Parameters are precomputed by the driver: ``inv`` maps each live
    column to its unique-anchor group, ``order_idx`` sorts columns by
    group, ``group_counts``/``pool_sizes`` describe the join shape, and
    ``bound_nodes``/``bound_edges`` are the already-bound slot rows of
    the front block (``(slots, n_live)``).

    Returns ``(parents, cand_ids, cand_verts)`` for the surviving
    extensions, where ``parents`` indexes columns of the front block.
    """
    # Parent column per joined row: columns sorted by anchor group, each
    # repeated by its group's pool size; candidates tile group-wise.
    parents = np.repeat(order_idx, pool_sizes[inv[order_idx]])
    if parents.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    id_parts: list[np.ndarray] = []
    vert_parts: list[np.ndarray] = []
    for j in range(len(pool_sizes)):
        if pool_sizes[j] and group_counts[j]:
            id_parts.append(np.tile(pool_ids[j], group_counts[j]))
            vert_parts.append(np.tile(pool_verts[j], group_counts[j]))
    cand_ids = np.concatenate(id_parts)
    cand_verts = np.concatenate(vert_parts)

    keep = np.ones(cand_ids.shape[0], dtype=bool)
    if masked and batch_ids.size:
        keep &= ~np.isin(cand_ids, batch_ids)
    if injective:
        for row in bound_edges:
            keep &= cand_ids != row[parents]
        for row in bound_nodes:
            keep &= cand_verts != row[parents]
    if root_mask_fn is not None:
        keep &= root_mask_fn(cand_verts)
    surv = np.nonzero(keep)[0]
    return parents[surv], cand_ids[surv], cand_verts[surv]


def _columnar_run(
    context: EnumerationContext,
    units: list[WorkUnit],
    emit,
    arena: "EmbeddingArena | None" = None,
) -> None:
    """Drive the columnar kernel over ``units``, calling ``emit`` per group.

    ``emit(start_edge, node_slots, edge_slots, nodes, edges, n)`` receives
    the completed embeddings of one start-edge group as arena views:
    ``nodes[i, :n]`` is the data vertex bound to query node
    ``node_slots[i]``, likewise for edges.  Semantics — predicate order,
    candidate fetches, verify scans, counter increments — mirror
    :func:`backtracking_enumerate` exactly; only the iteration order of
    the produced embeddings differs (breadth-first over the arena instead
    of depth-first recursion).
    """
    query = context.query
    graph = context.graph
    match_def = context.match_def
    injective = match_def.injective
    root = context.tree.root
    if arena is None:
        arena = context.arena if context.arena is not None else EmbeddingArena(capacity=256)
    batch_ids = context.batch_ids_array()

    groups: dict[int, list[int]] = {}
    for unit in units:
        groups.setdefault(unit.start_edge, []).append(unit.edge_id)

    for start_edge, edge_ids in groups.items():
        order = context.orders[start_edge]
        mask = context.masks.mask_for(start_edge)
        q_start = query.edge(start_edge)
        self_loop_query = q_start.src == q_start.dst

        # -- start pinning.  The shape predicate (self-loop agreement) is
        # evaluated as one vectorized mask over batched endpoint gathers,
        # and the f2/f3 degree checks run once per *unique* endpoint
        # instead of once per unit; both are chargeless predicates, so
        # reordering them around the equally chargeless edge_matcher /
        # has_non_batch_witness keeps the set of rows reaching each
        # charging verify_witnesses call — and with it every counter —
        # identical to the tuple path.
        eids_arr = np.asarray(edge_ids, dtype=np.int64)
        srcs_arr = graph.endpoint_array(eids_arr, False)
        dsts_arr = graph.endpoint_array(eids_arr, True)
        loops = srcs_arr == dsts_arr
        if self_loop_query:
            shape_ok = loops
        elif injective:
            shape_ok = ~loops
        else:
            shape_ok = np.ones(eids_arr.size, dtype=bool)
        src_list = srcs_arr.tolist()
        dst_list = dsts_arr.tolist()

        survivors: list[int] = []
        for i in np.nonzero(shape_ok)[0].tolist():
            eid = edge_ids[i]
            if not match_def.edge_matcher(query, graph, q_start, graph.edge(eid)):
                continue
            if mask.require_no_old_witness and context.has_non_batch_witness(
                start_edge, src_list[i], dst_list[i], exclude_edge=eid
            ):
                continue
            survivors.append(i)

        if survivors and context.degree_filter is not None:
            # Memoised per (vertex, query node); deduplicating first makes
            # the batch pay one predicate evaluation per distinct endpoint.
            src_allowed = {
                v: context.degree_ok(v, q_start.src)
                for v in {src_list[i] for i in survivors}
            }
            dst_allowed = {
                v: context.degree_ok(v, q_start.dst)
                for v in {dst_list[i] for i in survivors}
            }
            survivors = [
                i for i in survivors
                if src_allowed[src_list[i]] and dst_allowed[dst_list[i]]
            ]

        start_specs = [
            (
                query.edge(q_index),
                mask.is_masked(q_index),
                query.edge(q_index).src == q_start.src,
                query.edge(q_index).dst == q_start.src,
            )
            for q_index in order.start_verify_edges
        ]
        pinned_src: list[int] = []
        pinned_dst: list[int] = []
        pinned_eid: list[int] = []
        for i in survivors:
            eid = edge_ids[i]
            if start_specs:
                ok = True
                for q_edge, q_masked, src_is_start_src, dst_is_start_src in start_specs:
                    v_src = src_list[i] if src_is_start_src else dst_list[i]
                    v_dst = src_list[i] if dst_is_start_src else dst_list[i]
                    if not context.verify_witnesses(
                        q_edge, v_src, v_dst, q_masked, {eid}
                    ):
                        ok = False
                        break
                if not ok:
                    continue
            pinned_src.append(src_list[i])
            pinned_dst.append(dst_list[i])
            pinned_eid.append(eid)

        n_live = len(pinned_eid)
        if n_live == 0:
            continue

        node_slots = [q_start.src] if self_loop_query else [q_start.src, q_start.dst]
        edge_slots = [start_edge] + [st.tree_edge_index for st in order.steps]
        slot_of = {node: i for i, node in enumerate(node_slots)}
        total_node_slots = len(node_slots) + len(order.steps)

        arena.begin(total_node_slots, len(edge_slots))
        arena.reserve(n_live)
        nodes_b, edges_b = arena.back()
        nodes_b[0, :n_live] = pinned_src
        if not self_loop_query:
            nodes_b[1, :n_live] = pinned_dst
        edges_b[0, :n_live] = pinned_eid
        arena.swap()
        bound_nodes = len(node_slots)
        bound_edges = 1

        for step in order.steps:
            nodes_f, edges_f = arena.front()
            anchors = nodes_f[slot_of[step.anchor], :n_live]
            uniq, inv = np.unique(anchors, return_inverse=True)
            pool_ids: list[np.ndarray] = []
            pool_verts: list[np.ndarray] = []
            for anchor in uniq:
                ids, verts = context.get_candidate_arrays(step, int(anchor))
                pool_ids.append(ids)
                pool_verts.append(verts)
            pool_sizes = np.array([p.shape[0] for p in pool_ids], dtype=np.int64)
            order_idx = np.argsort(inv, kind="stable")
            group_counts = np.bincount(inv, minlength=len(uniq))
            root_mask_fn = context.debi.roots_mask if step.node == root else None
            parents, cand_ids, cand_verts = extend_intersect(
                inv, order_idx, group_counts, pool_ids, pool_verts, pool_sizes,
                nodes_f[:bound_nodes, :n_live] if injective else nodes_f[:0, :n_live],
                edges_f[:bound_edges, :n_live] if injective else edges_f[:0, :n_live],
                batch_ids,
                mask.is_masked(step.tree_edge_index),
                injective,
                root_mask_fn,
            )
            if context.degree_filter is not None and parents.size:
                uniq_v, inv_v = np.unique(cand_verts, return_inverse=True)
                allowed = np.fromiter(
                    (context.degree_ok(int(v), step.node) for v in uniq_v),
                    dtype=bool, count=len(uniq_v),
                )
                surv = np.nonzero(allowed[inv_v])[0]
                parents, cand_ids, cand_verts = (
                    parents[surv], cand_ids[surv], cand_verts[surv]
                )
            m = parents.size
            if m == 0:
                n_live = 0
                break
            arena.reserve(m)
            nodes_b, edges_b = arena.back()
            for s in range(bound_nodes):
                np.take(nodes_f[s, :n_live], parents, out=nodes_b[s, :m])
            nodes_b[bound_nodes, :m] = cand_verts
            for s in range(bound_edges):
                np.take(edges_f[s, :n_live], parents, out=edges_b[s, :m])
            edges_b[bound_edges, :m] = cand_ids
            arena.swap()
            node_slots.append(step.node)
            slot_of[step.node] = bound_nodes
            bound_nodes += 1
            bound_edges += 1
            n_live = m

            if step.verify_edges and n_live:
                nodes_f, edges_f = arena.front()
                # Bulk-gather the columns the scan reads — per-spec endpoint
                # rows and the used-edge matrix transposed to row-major —
                # as Python ints up front, so the remaining per-row work is
                # only the (charging) witness scans themselves.
                verify_specs = [
                    (
                        query.edge(qi),
                        mask.is_masked(qi),
                        nodes_f[slot_of[query.edge(qi).src], :n_live].tolist(),
                        nodes_f[slot_of[query.edge(qi).dst], :n_live].tolist(),
                    )
                    for qi in step.verify_edges
                ]
                used_rows = edges_f[:bound_edges, :n_live].T.tolist()
                keep_rows = np.ones(n_live, dtype=bool)
                any_removed = False
                for r in range(n_live):
                    used = set(used_rows[r])
                    for q_edge, q_masked, row_srcs, row_dsts in verify_specs:
                        if not context.verify_witnesses(
                            q_edge, row_srcs[r], row_dsts[r], q_masked, used,
                        ):
                            keep_rows[r] = False
                            any_removed = True
                            break
                if any_removed:
                    surv = np.nonzero(keep_rows)[0]
                    m = surv.size
                    if m == 0:
                        n_live = 0
                        break
                    arena.reserve(m)
                    nodes_b, edges_b = arena.back()
                    for s in range(bound_nodes):
                        np.take(nodes_f[s, :n_live], surv, out=nodes_b[s, :m])
                    for s in range(bound_edges):
                        np.take(edges_f[s, :n_live], surv, out=edges_b[s, :m])
                    arena.swap()
                    n_live = m

        if n_live == 0:
            continue
        context.embeddings_found += n_live
        nodes_f, edges_f = arena.front()
        emit(start_edge, node_slots, edge_slots, nodes_f, edges_f, n_live)


def columnar_enumerate(
    context: EnumerationContext,
    units: list[WorkUnit],
    collect: bool = True,
    arena: "EmbeddingArena | None" = None,
) -> tuple[list[Embedding], int]:
    """Run ``units`` through the columnar kernel; return ``(embeddings, count)``.

    With ``collect=False`` no :class:`Embedding` objects are built at all
    (the caller only wants counts — the harness's default), which is
    where most of the kernel's single-thread win over the tuple path
    comes from on count-only workloads.
    """
    results: list[Embedding] = []
    counts = [0]

    def emit(start_edge, node_slots, edge_slots, nodes, edges, n):
        counts[0] += n
        if not collect:
            return
        node_order = sorted(range(len(node_slots)), key=node_slots.__getitem__)
        edge_order = sorted(range(len(edge_slots)), key=edge_slots.__getitem__)
        node_cols = [(node_slots[j], nodes[j, :n].tolist()) for j in node_order]
        edge_cols = [(edge_slots[j], edges[j, :n].tolist()) for j in edge_order]
        positive = context.positive
        for r in range(n):
            results.append(
                Embedding(
                    node_map=tuple((q, col[r]) for q, col in node_cols),
                    edge_map=tuple((q, col[r]) for q, col in edge_cols),
                    start_edge=start_edge,
                    positive=positive,
                )
            )

    _columnar_run(context, units, emit, arena=arena)
    return results, counts[0]


def columnar_enumerate_packed(
    context: EnumerationContext,
    units: list[WorkUnit],
    arena: "EmbeddingArena | None" = None,
) -> tuple[np.ndarray, int]:
    """Run ``units`` and emit the packed int64 IPC layout directly.

    The layout per embedding is the one :mod:`repro.core.parallel` ships
    over the pool pipes — ``[start_edge, n_node_pairs, n_edge_pairs,
    (qnode, vertex)* sorted, (qedge, eid)* sorted]`` — assembled straight
    from the arena columns, so the process backend's separate pack step
    disappears for kernel-eligible chunks.
    """
    parts: list[np.ndarray] = []
    counts = [0]

    def emit(start_edge, node_slots, edge_slots, nodes, edges, n):
        counts[0] += n
        n_nodes = len(node_slots)
        n_edges = len(edge_slots)
        width = 3 + 2 * n_nodes + 2 * n_edges
        block = np.empty((n, width), dtype=np.int64)
        block[:, 0] = start_edge
        block[:, 1] = n_nodes
        block[:, 2] = n_edges
        col = 3
        for j in sorted(range(n_nodes), key=node_slots.__getitem__):
            block[:, col] = node_slots[j]
            block[:, col + 1] = nodes[j, :n]
            col += 2
        for j in sorted(range(n_edges), key=edge_slots.__getitem__):
            block[:, col] = edge_slots[j]
            block[:, col + 1] = edges[j, :n]
            col += 2
        parts.append(block.reshape(-1))

    _columnar_run(context, units, emit, arena=arena)
    if not parts:
        return np.empty(0, dtype=np.int64), 0
    return np.concatenate(parts), counts[0]
