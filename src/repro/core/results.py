"""Embedding results.

An *embedding* in Mnemonic maps every query node to a data vertex and —
because the data graph is a multigraph where edge instances carry
context — every query edge that was explicitly bound to a concrete data
edge id.  Deletion batches produce *negative* embeddings: matches that
existed before the batch and are destroyed by it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Embedding:
    """One match of the query graph in the data graph.

    Attributes
    ----------
    node_map:
        ``query node -> data vertex`` mapping (all query nodes present).
    edge_map:
        ``query edge index -> data edge id`` for every query edge whose
        witness was explicitly bound (always all tree edges and the start
        edge; non-tree witnesses when witness enumeration is enabled).
    start_edge:
        The query edge index whose work unit produced this embedding.
    positive:
        True for embeddings created by insertions, False for embeddings
        destroyed by deletions.
    """

    node_map: tuple[tuple[int, int], ...]
    edge_map: tuple[tuple[int, int], ...]
    start_edge: int
    positive: bool = True

    @staticmethod
    def build(node_map: dict[int, int], edge_map: dict[int, int], start_edge: int,
              positive: bool = True) -> "Embedding":
        """Construct from mutable dicts (sorted for a canonical representation)."""
        return Embedding(
            node_map=tuple(sorted(node_map.items())),
            edge_map=tuple(sorted(edge_map.items())),
            start_edge=start_edge,
            positive=positive,
        )

    def nodes(self) -> dict[int, int]:
        return dict(self.node_map)

    def edges(self) -> dict[int, int]:
        return dict(self.edge_map)

    def vertex_of(self, query_node: int) -> int:
        return dict(self.node_map)[query_node]

    def identity(self) -> tuple:
        """Canonical identity used for duplicate detection (ignores start edge)."""
        return (self.node_map, self.edge_map, self.positive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sign = "+" if self.positive else "-"
        return f"Embedding({sign}{dict(self.node_map)})"


class ResultSet:
    """A container of embeddings with duplicate detection and summary stats."""

    def __init__(self) -> None:
        self._embeddings: list[Embedding] = []
        self._identities: set[tuple] = set()
        self.duplicates_rejected = 0

    def add(self, embedding: Embedding) -> bool:
        """Add ``embedding``; return False (and count it) if it is a duplicate."""
        key = embedding.identity()
        if key in self._identities:
            self.duplicates_rejected += 1
            return False
        self._identities.add(key)
        self._embeddings.append(embedding)
        return True

    def extend(self, embeddings: Iterable[Embedding]) -> int:
        """Add many embeddings; return how many were new."""
        return sum(1 for e in embeddings if self.add(e))

    def positives(self) -> list[Embedding]:
        return [e for e in self._embeddings if e.positive]

    def negatives(self) -> list[Embedding]:
        return [e for e in self._embeddings if not e.positive]

    def node_mappings(self) -> set[tuple[tuple[int, int], ...]]:
        """Distinct node mappings (useful when comparing against baselines)."""
        return {e.node_map for e in self._embeddings}

    def __iter__(self) -> Iterator[Embedding]:
        return iter(self._embeddings)

    def __len__(self) -> int:
        return len(self._embeddings)

    def __contains__(self, embedding: Embedding) -> bool:
        return embedding.identity() in self._identities


class CollectingSink:
    """A result sink for standing queries: per-query :class:`ResultSet` routing.

    The multi-query engine calls registered sinks with
    ``(query_id, SnapshotResult)`` after every snapshot; this default
    implementation files the positive and negative embeddings of each
    query into its own deduplicating :class:`ResultSet`.  Use it when a
    service wants the matches, not the per-snapshot timing breakdown::

        sink = CollectingSink()
        engine.register(query_a, sink=sink)
        engine.register(query_b, sink=sink)
        engine.run(stream)
        matches = sink.results  # query_id -> ResultSet
    """

    def __init__(self) -> None:
        self.results: dict[int, ResultSet] = {}
        #: snapshots seen per query (sinks fire even on empty snapshots)
        self.snapshots_seen: dict[int, int] = {}

    def __call__(self, query_id: int, snapshot_result) -> None:
        result_set = self.results.setdefault(query_id, ResultSet())
        self.snapshots_seen[query_id] = self.snapshots_seen.get(query_id, 0) + 1
        result_set.extend(snapshot_result.positive_embeddings)
        result_set.extend(snapshot_result.negative_embeddings)
