"""Shared-memory snapshot publication for the persistent worker pool.

The shared-memory ``process`` backend (see :mod:`repro.core.parallel`)
keeps one pool of worker processes alive for the whole engine lifetime.
Instead of re-forking per batch and pickling the engine state, the
parent *publishes* the current snapshot before each enumeration call:

* the :class:`~repro.graph.adjacency.DynamicGraph` is exported as flat
  CSR numpy arrays (:meth:`DynamicGraph.export_csr`) — both the combined
  per-vertex layout and the label-partitioned mirror (``indptr`` keyed by
  ``(vertex, label)`` group), so workers run the same O(matches)
  labelled candidate fetch as the serial backend,
* DEBI's :class:`~repro.utils.bitset.BitMatrix` / ``BitVector`` word
  buffers are exported raw (:meth:`DEBI.export_buffers`),
* the batch edge-id set joins them as one more int64 array,

and all of them are memcpy'd into a ``multiprocessing.shared_memory``
segment.  Workers receive only a small *descriptor* (segment name +
per-array dtype/shape/offset + epoch) and attach zero-copy numpy views
over the segment — no object deserialisation on the hot path.

Epochs and double buffering
---------------------------
Every publication opens a new *epoch* (a monotonically increasing
counter).  :class:`SharedSnapshotWriter` keeps **two** segment slots and
alternates between them: epoch ``e`` lives in slot ``e % 2``, so the
writer always memcpy's into the slot the *previous* epoch is not using.
This is what makes pipelined execution safe: the engine can stage and
publish batch ``k+1``'s snapshot while pool workers are still
enumerating batch ``k`` over the other slot — an in-place overwrite of a
single segment would corrupt their in-flight reads.  At most two epochs
may therefore be in flight at once; the pool drains epoch ``e`` before
the writer reuses its slot for epoch ``e + 2``.

A worker's :class:`SnapshotAttachment` keeps one mapping per segment
*name* and re-maps only when a slot's segment was replaced (capacity
growth); flipping between the two slots costs no re-attachment.  On
POSIX an unlinked segment stays mapped until the last attachment closes,
so the parent can safely replace a segment while workers still hold the
old one.
"""

from __future__ import annotations

import secrets
import time
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.shared_memory import SharedMemory

    from repro.core.debi import DEBI
    from repro.graph.adjacency import CSRSnapshot, DynamicGraph


def shared_memory_available() -> bool:
    """Can ``multiprocessing.shared_memory`` be used on this platform?"""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


#: guards against re-wrapping the tracker functions on repeated calls
_WORKER_TRACKING_DISABLED = False


def disable_shm_resource_tracking() -> None:
    """Make this process fully passive towards shared-memory segments.

    Must be called once at *worker* start-up, and only in processes that
    never own a segment.  On Python < 3.13 every ``SharedMemory`` attach
    registers the segment with the process's resource tracker, which
    then "cleans it up" (unlinks it and warns) when the worker exits —
    even though the parent still owns it; so worker-side ``register``
    and ``unregister`` are made shared-memory no-ops.

    Worker-side ``unlink`` is also made a no-op: on Python < 3.12 a
    failed ``mmap`` during *attach* unlinks the segment as "cleanup"
    (the create-path error handling does not special-case attach),
    which would destroy a live parent-owned segment and send the shared
    resource tracker an unregister it never saw a register for.  A
    worker that cannot attach reports the error through its result
    queue; it must never take the segment down with it.

    Never call this in the pool's parent: the parent owns the segments,
    and a no-op ``unlink`` there would leak every ``/dev/shm`` file the
    writers create.  The parent needs no tracker suppression at all —
    re-registering its own segment on attach is an idempotent set-add
    in the tracker's cache, balanced by the real ``unlink`` later.
    """
    global _WORKER_TRACKING_DISABLED
    if _WORKER_TRACKING_DISABLED:
        return
    try:
        from multiprocessing import resource_tracker, shared_memory

        def shm_transparent(original):
            def wrapped(name, rtype):  # pragma: no cover - runs in worker processes
                if rtype == "shared_memory":
                    return
                original(name, rtype)

            return wrapped

        resource_tracker.register = shm_transparent(resource_tracker.register)
        resource_tracker.unregister = shm_transparent(resource_tracker.unregister)
        shared_memory.SharedMemory.unlink = lambda self: None  # type: ignore[method-assign]
        _WORKER_TRACKING_DISABLED = True
    except Exception:  # pragma: no cover - tracker layout changed
        pass


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) // alignment * alignment


class _SegmentSlot:
    """One shared-memory segment of the double-buffered writer.

    Besides the segment itself the slot remembers the *reserved* layout of
    its last full copy (per-array byte offset + reserved capacity), the
    element count each array had when last written, and the dirty ranges
    accumulated since — everything the dirty-slice publish needs to prove
    the clean bytes already in the segment are current.
    """

    __slots__ = ("shm", "layout", "sizes", "pending")

    def __init__(self) -> None:
        self.shm: "SharedMemory | None" = None
        #: name -> (dtype str, byte offset, reserved bytes); None = no layout yet
        self.layout: dict[str, tuple[str, int, int]] | None = None
        #: name -> element count at the last write into this slot
        self.sizes: dict[str, int] = {}
        #: dirty ranges accumulated since this slot was last written:
        #: None = everything dirty (initial state / fallback); otherwise a
        #: dict whose entries are name -> list of element ranges or name ->
        #: None ("whole array dirty"); a missing name means "clean"
        self.pending: dict[str, "list[tuple[int, int]] | None"] | None = None

    def merge_pending(self, spec: dict) -> None:
        """Fold one publication's dirty spec into this slot's backlog."""
        if self.pending is None:
            return  # already fully dirty — nothing can make it dirtier
        for key, ranges in spec.items():
            if ranges is None:
                self.pending[key] = None
            elif ranges:
                existing = self.pending.get(key, [])
                if existing is not None:
                    self.pending[key] = existing + list(ranges)

    def ensure_capacity(self, needed: int) -> None:
        """(Re)allocate the segment so it holds ``needed`` bytes."""
        if self.shm is not None and self.shm.size >= needed:
            return
        from multiprocessing import shared_memory

        self.close()
        # 1.5x slack so steadily growing graphs do not reallocate every batch.
        capacity = max(needed + needed // 2, 4096)
        name = f"mnemonic_{secrets.token_hex(6)}"
        self.shm = shared_memory.SharedMemory(name=name, create=True, size=capacity)

    def close(self) -> None:
        if self.shm is not None:
            try:
                self.shm.close()
                self.shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - already gone
                pass
            self.shm = None
        self.layout = None
        self.sizes = {}
        self.pending = None


class SharedSnapshotWriter:
    """Parent-side publisher: copies snapshot arrays into alternating slots.

    ``num_slots=2`` (the default) is the double-buffered configuration
    used by the pool: consecutive epochs land in different segments, so
    a publication never overwrites the epoch workers may still be
    enumerating.  ``num_slots=1`` restores the replace-on-publish layout
    for callers that never overlap epochs.
    """

    def __init__(self, num_slots: int = 2) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self._slots = [_SegmentSlot() for _ in range(num_slots)]
        self._epoch = 0
        #: last observed ``graph.export_count`` — the dirty-slice chain is
        #: valid only when every export of the graph went through this
        #: writer; an interloper export consumes splice dirt we never saw
        self._graph_export_count: int | None = None
        #: publication-regime counters (perf-trend / phase-split reporting)
        self.full_publishes = 0
        self.dirty_publishes = 0
        self.publish_seconds = 0.0

    # ------------------------------------------------------------------ publication
    def publish(
        self,
        graph: "DynamicGraph",
        debis: "DEBI | dict[int, DEBI]",
        batch_edge_ids,
        positive: bool,
    ) -> dict:
        """Copy the current snapshot into the inactive slot; return its descriptor.

        ``debis`` is either one index (single-query engine) or a
        ``query_id -> DEBI`` mapping (multi-query engine); either way the
        graph is exported **once** and every index rides in the same
        segment.  The descriptor is a small picklable dict: segment name,
        epoch, the layout of every array (dtype / shape / byte offset)
        and the scalar metadata workers need to rebuild graph + DEBI
        views.

        Dirty-slice regime: the graph's spliced export and each DEBI's
        ledger report which element ranges changed since the previous
        export/publish.  Those specs accumulate per slot (a slot is
        rewritten only every ``num_slots`` epochs), and when the target
        slot's reserved layout still fits, only its accumulated dirty
        ranges are memcpy'd — the clean bytes already in the segment are
        provably current.  Any doubt (first publish, layout change,
        capacity overflow, full CSR rebuild, an export this writer did
        not perform) falls back to the full copy.
        """
        start = time.perf_counter()
        if not isinstance(debis, dict):
            debis = {0: debis}
        # The live DynamicGraph offers a journal-driven incremental export
        # (small batches splice into the cached arrays); snapshot views and
        # other graph lookalikes only offer the full rebuild.
        export_delta = getattr(graph, "export_csr_delta", None)
        csr = export_delta() if export_delta is not None else graph.export_csr()
        arrays = dict(csr.arrays())

        # -- this publication's dirty spec (changes since the previous export)
        exports = getattr(graph, "export_count", None)
        chain_ok = (
            exports is not None
            and self._graph_export_count is not None
            and exports == self._graph_export_count + 1
        )
        self._graph_export_count = exports
        csr_dirty = getattr(csr, "dirty", None)
        spec: dict[str, list[tuple[int, int]] | None]
        if chain_ok and csr_dirty is not None:
            spec = dict(csr_dirty)
        else:
            spec = {key: None for key in arrays}

        debi_meta: dict[int, dict] = {}
        for qid, debi in debis.items():
            buffers = debi.export_buffers()
            arrays[f"debi_rows_{qid}"] = buffers["rows"]
            arrays[f"debi_roots_{qid}"] = buffers["roots"]
            debi_meta[qid] = {
                "num_rows": buffers["num_rows"],
                "width": buffers["width"],
                "root_bits": buffers["root_bits"],
            }
            consume = getattr(debi, "consume_publish_dirty", None)
            if consume is not None:
                row_ranges, root_ranges = consume()
            else:  # pragma: no cover - non-DEBI lookalike
                row_ranges = root_ranges = None
            spec[f"debi_rows_{qid}"] = row_ranges
            spec[f"debi_roots_{qid}"] = root_ranges
        arrays["batch_edges"] = np.fromiter(
            batch_edge_ids, dtype=np.int64, count=len(batch_edge_ids)
        )
        spec["batch_edges"] = None  # a fresh id set every epoch

        # Fold the spec into every slot *before* writing: the target slot
        # was last written ``num_slots`` epochs ago, so its backlog must
        # include this publication's changes too.
        for slot in self._slots:
            slot.merge_pending(spec)

        # The *next* epoch decides the slot, so consecutive epochs always
        # land in different segments (double-buffer invariant).
        slot = self._slots[(self._epoch + 1) % len(self._slots)]
        layout = self._write_slot(slot, arrays)

        self._epoch += 1
        self.publish_seconds += time.perf_counter() - start
        return {
            "name": slot.shm.name,
            "epoch": self._epoch,
            "layout": layout,
            "num_live_edges": csr.num_live_edges,
            "debi_meta": debi_meta,
            "positive": positive,
        }

    def _write_slot(
        self, slot: _SegmentSlot, arrays: dict[str, np.ndarray]
    ) -> dict[str, tuple[str, tuple[int, ...], int]]:
        """Copy ``arrays`` into ``slot`` (dirty slices only, when provable).

        Returns the descriptor layout (dtype / shape / byte offset per
        array).  The dirty path requires: a previous full copy laid the
        slot out with the same array names and dtypes, every array still
        fits its reserved capacity, and the slot's dirty backlog is
        intact.  Otherwise everything is rewritten under a fresh
        reserved layout (per-array slack, so steady growth keeps offsets
        stable across many publications).
        """
        keys = list(arrays)
        can_dirty = (
            slot.shm is not None
            and slot.layout is not None
            and slot.pending is not None
            and list(slot.layout) == keys
            and all(
                arrays[k].ndim == 1
                and arrays[k].dtype.str == slot.layout[k][0]
                and arrays[k].nbytes <= slot.layout[k][2]
                for k in keys
            )
        )
        descriptor: dict[str, tuple[str, tuple[int, ...], int]] = {}
        if not can_dirty:
            reserved_layout: dict[str, tuple[str, int, int]] = {}
            offset = 0
            for key, arr in arrays.items():
                offset = _align(offset)
                reserved = _align(max(arr.nbytes + arr.nbytes // 2, 64))
                reserved_layout[key] = (arr.dtype.str, offset, reserved)
                descriptor[key] = (arr.dtype.str, arr.shape, offset)
                offset += reserved
            slot.ensure_capacity(max(offset, 1))
            buf = slot.shm.buf
            for key, arr in arrays.items():
                _, off, _ = reserved_layout[key]
                dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=off)
                dest[:] = arr
            slot.layout = reserved_layout
            slot.sizes = {key: int(arr.shape[0]) if arr.ndim == 1 else -1
                          for key, arr in arrays.items()}
            slot.pending = {}
            self.full_publishes += 1
            return descriptor

        buf = slot.shm.buf
        assert slot.layout is not None and slot.pending is not None
        for key, arr in arrays.items():
            dtype, off, _ = slot.layout[key]
            n = int(arr.shape[0])
            old_n = slot.sizes.get(key, 0)
            dest = np.ndarray((n,), dtype=dtype, buffer=buf, offset=off)
            if key in slot.pending and slot.pending[key] is None:
                dest[:] = arr
            elif n < old_n:
                # Shrunk arrays (index rebuilds) lose positional stability;
                # rewrite rather than reason about stale suffixes.
                dest[:] = arr
            else:
                runs = slot.pending.get(key) or []
                if n > old_n:
                    runs = list(runs) + [(old_n, n)]
                for lo, hi in runs:
                    lo = max(int(lo), 0)
                    hi = min(int(hi), n)
                    if lo < hi:
                        dest[lo:hi] = arr[lo:hi]
            slot.sizes[key] = n
            descriptor[key] = (dtype, arr.shape, off)
        slot.pending = {}
        self.dirty_publishes += 1
        return descriptor

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Unlink every segment (workers keep their mappings until they detach)."""
        for slot in self._slots:
            slot.close()


class SnapshotAttachment:
    """Worker-side attachment: rebuild graph / DEBI views from a descriptor.

    Caches the derived views per epoch (many work-unit chunks of the
    same batch pay the view construction once) and one segment mapping
    per name, so flipping between the writer's two slots never re-maps —
    only a slot whose segment was replaced (capacity growth) triggers a
    fresh attach.  Stale mappings are dropped lazily: the writer runs at
    most ``num_slots`` live segments, so the attachment keeps at most
    that many once it has seen each slot.
    """

    #: mappings kept per worker; matches the writer's two slots plus slack
    #: for segments replaced by growth (they are unlinked parent-side and
    #: reclaimed once dropped here)
    _MAX_MAPPINGS = 4

    def __init__(self) -> None:
        self._segments: dict[str, "SharedMemory"] = {}
        #: cache key is (segment name, epoch): epoch numbers restart per
        #: writer, so after a pool respawn an adopted epoch from the
        #: retired writer may share a number with one from the new writer.
        self._cached_key: tuple[str, int] | None = None
        self._views: tuple | None = None

    def _segment(self, name: str) -> "SharedMemory":
        shm = self._segments.get(name)
        if shm is None:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=name)
            self._segments[name] = shm
            while len(self._segments) > self._MAX_MAPPINGS:
                # Oldest mapping first (dict preserves insertion order).
                stale_name = next(iter(self._segments))
                stale = self._segments.pop(stale_name)
                try:
                    stale.close()
                except OSError:  # pragma: no cover - mapping already gone
                    pass
        return shm

    def views(self, descriptor: dict, trees) -> tuple:
        """Return ``(graph_view, debis, batch_edge_ids)`` for ``descriptor``.

        ``trees`` mirrors what was published: pass one
        :class:`~repro.query.query_tree.QueryTree` to get a single DEBI
        back (single-query engines), or a ``query_id -> tree`` mapping to
        get a ``query_id -> DEBI`` mapping (multi-query pool workers).
        """
        cache_key = (descriptor["name"], descriptor["epoch"])
        if cache_key == self._cached_key and self._views is not None:
            return self._views
        from repro.core.debi import DEBI
        from repro.graph.adjacency import CSRGraphView, CSRSnapshot

        buf = self._segment(descriptor["name"]).buf
        arrays: dict[str, np.ndarray] = {}
        for key, (dtype, shape, offset) in descriptor["layout"].items():
            view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
            view.flags.writeable = False
            arrays[key] = view

        csr = CSRSnapshot(
            vertex_ids=arrays["vertex_ids"],
            vertex_labels=arrays["vertex_labels"],
            out_indptr=arrays["out_indptr"],
            out_indices=arrays["out_indices"],
            in_indptr=arrays["in_indptr"],
            in_indices=arrays["in_indices"],
            out_group_vptr=arrays["out_group_vptr"],
            out_group_labels=arrays["out_group_labels"],
            out_group_indptr=arrays["out_group_indptr"],
            out_label_indices=arrays["out_label_indices"],
            in_group_vptr=arrays["in_group_vptr"],
            in_group_labels=arrays["in_group_labels"],
            in_group_indptr=arrays["in_group_indptr"],
            in_label_indices=arrays["in_label_indices"],
            edge_src=arrays["edge_src"],
            edge_dst=arrays["edge_dst"],
            edge_label=arrays["edge_label"],
            edge_timestamp=arrays["edge_timestamp"],
            edge_alive=arrays["edge_alive"],
            num_live_edges=descriptor["num_live_edges"],
        )
        graph_view = CSRGraphView(csr)
        single = not isinstance(trees, dict)
        debis: dict[int, DEBI] = {}
        for qid, meta in descriptor["debi_meta"].items():
            debis[qid] = DEBI.attach_buffers(
                trees if single else trees[qid],
                rows=arrays[f"debi_rows_{qid}"],
                num_rows=meta["num_rows"],
                width=meta["width"],
                roots=arrays[f"debi_roots_{qid}"],
                root_bits=meta["root_bits"],
            )
        batch_edge_ids = set(arrays["batch_edges"].tolist())
        self._cached_key = cache_key
        self._views = (
            graph_view,
            next(iter(debis.values())) if single and debis else debis,
            batch_edge_ids,
        )
        return self._views

    def detach(self) -> None:
        """Drop the cached views and close every segment mapping."""
        self._views = None
        self._cached_key = None
        segments, self._segments = self._segments, {}
        for shm in segments.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - mapping already gone
                pass
