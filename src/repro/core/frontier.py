"""The unified traversal frontier (Section V-A).

When a batch of edges is inserted or deleted, the effect on DEBI
propagates along the query tree.  Instead of traversing the affected
region once per updated edge (the TurboFlux regime), Mnemonic collects,
for every query-tree column, the set of data edges that must be
(re-)evaluated, and for every query node the set of data vertices whose
downward-consistency value may have changed.  Each (edge, column) pair
is evaluated at most once per batch — this sharing is what Figure 8 and
Figure 12 measure.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class UnifiedFrontier:
    """Per-batch propagation state shared by all updated edges."""

    #: column -> data edge ids waiting to be evaluated at that column
    edge_frontier: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    #: query node -> data vertices whose down(v, node) value must be re-checked
    vertex_frontier: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    #: number of (edge, column) evaluations performed for this batch
    traversed_edges: int = 0

    def seed_edge(self, column: int, edge_id: int) -> None:
        """Schedule ``edge_id`` for evaluation at ``column``."""
        self.edge_frontier[column].add(edge_id)

    def seed_vertex(self, query_node: int, vertex: int) -> None:
        """Schedule ``vertex`` for a down-consistency re-check at ``query_node``."""
        self.vertex_frontier[query_node].add(vertex)

    def edges_for(self, column: int) -> set[int]:
        return self.edge_frontier.get(column, set())

    def vertices_for(self, query_node: int) -> set[int]:
        return self.vertex_frontier.get(query_node, set())

    def count_traversal(self, n: int = 1) -> None:
        self.traversed_edges += n

    def total_scheduled(self) -> int:
        """Total number of distinct (edge, column) and (vertex, node) entries."""
        return sum(len(s) for s in self.edge_frontier.values()) + sum(
            len(s) for s in self.vertex_frontier.values()
        )
