"""The unified traversal frontier (Section V-A).

When a batch of edges is inserted or deleted, the effect on DEBI
propagates along the query tree.  Instead of traversing the affected
region once per updated edge (the TurboFlux regime), Mnemonic collects,
for every query-tree column, the set of data edges that must be
(re-)evaluated, and for every query node the set of data vertices whose
downward-consistency value may have changed.  Each (edge, column) pair
is evaluated at most once per batch — this sharing is what Figure 8 and
Figure 12 measure.

Storage is columnar: each column/node keeps an append-only int64 arena
(geometric growth, no per-seed set hashing) and deduplicates lazily when
the filtering pass drains it.  Seeding is the hot write path — every
updated edge seeds every label-matching column — while each slot is
drained exactly once per batch, so append-now/unique-later does strictly
less work than a hash set per slot.
"""

from __future__ import annotations

import numpy as np


class _IdArena:
    """A growable int64 append buffer with lazy deduplication."""

    __slots__ = ("_data", "_len")

    def __init__(self, capacity: int = 16) -> None:
        self._data = np.empty(capacity, dtype=np.int64)
        self._len = 0

    def append(self, value: int) -> None:
        if self._len == self._data.shape[0]:
            grown = np.empty(self._data.shape[0] * 2, dtype=np.int64)
            grown[: self._len] = self._data
            self._data = grown
        self._data[self._len] = value
        self._len += 1

    def extend(self, values) -> None:
        arr = np.asarray(values, dtype=np.int64)
        needed = self._len + arr.shape[0]
        if needed > self._data.shape[0]:
            cap = self._data.shape[0]
            while cap < needed:
                cap *= 2
            grown = np.empty(cap, dtype=np.int64)
            grown[: self._len] = self._data[: self._len]
            self._data = grown
        self._data[self._len : needed] = arr
        self._len = needed

    def unique(self) -> np.ndarray:
        """The distinct scheduled ids, sorted ascending."""
        return np.unique(self._data[: self._len])


class UnifiedFrontier:
    """Per-batch propagation state shared by all updated edges."""

    __slots__ = ("_edge_arenas", "_vertex_arenas", "traversed_edges")

    def __init__(self) -> None:
        #: column -> arena of data edge ids waiting to be evaluated there
        self._edge_arenas: dict[int, _IdArena] = {}
        #: query node -> arena of data vertices to re-check down(v, node) at
        self._vertex_arenas: dict[int, _IdArena] = {}
        #: number of (edge, column) evaluations performed for this batch
        self.traversed_edges: int = 0

    _EMPTY = np.empty(0, dtype=np.int64)

    def seed_edge(self, column: int, edge_id: int) -> None:
        """Schedule ``edge_id`` for evaluation at ``column``."""
        arena = self._edge_arenas.get(column)
        if arena is None:
            arena = self._edge_arenas[column] = _IdArena()
        arena.append(edge_id)

    def seed_edges(self, column: int, edge_ids) -> None:
        """Bulk-schedule ``edge_ids`` (any int sequence/array) at ``column``."""
        arena = self._edge_arenas.get(column)
        if arena is None:
            arena = self._edge_arenas[column] = _IdArena()
        arena.extend(edge_ids)

    def seed_vertex(self, query_node: int, vertex: int) -> None:
        """Schedule ``vertex`` for a down-consistency re-check at ``query_node``."""
        arena = self._vertex_arenas.get(query_node)
        if arena is None:
            arena = self._vertex_arenas[query_node] = _IdArena()
        arena.append(vertex)

    def seed_vertices(self, query_node: int, vertices) -> None:
        """Bulk :meth:`seed_vertex` (any int sequence/array)."""
        arena = self._vertex_arenas.get(query_node)
        if arena is None:
            arena = self._vertex_arenas[query_node] = _IdArena()
        arena.extend(vertices)

    def edges_for(self, column: int) -> np.ndarray:
        """Distinct edge ids scheduled at ``column`` so far (sorted array)."""
        arena = self._edge_arenas.get(column)
        return self._EMPTY if arena is None else arena.unique()

    def vertices_for(self, query_node: int) -> np.ndarray:
        """Distinct vertices scheduled at ``query_node`` so far (sorted array)."""
        arena = self._vertex_arenas.get(query_node)
        return self._EMPTY if arena is None else arena.unique()

    def count_traversal(self, n: int = 1) -> None:
        self.traversed_edges += n

    def total_scheduled(self) -> int:
        """Total number of distinct (edge, column) and (vertex, node) entries."""
        return sum(a.unique().shape[0] for a in self._edge_arenas.values()) + sum(
            a.unique().shape[0] for a in self._vertex_arenas.values()
        )
