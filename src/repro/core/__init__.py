"""The Mnemonic core: DEBI, incremental filtering, enumeration and the engine.

The public entry point is :class:`repro.core.engine.MnemonicEngine`, which
implements Algorithm 1 of the paper: initialise the stream and the index,
then for every snapshot apply the batch of insertions and deletions, keep
DEBI up to date, and enumerate the newly formed (or destroyed) embeddings
through the user-supplied match definition.
"""

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.debi import DEBI
from repro.core.engine import EngineConfig, MnemonicEngine, RunResult, SnapshotResult
from repro.core.parallel import ParallelConfig
from repro.core.registry import MultiQueryEngine, MultiRunResult, QueryRegistry
from repro.core.results import CollectingSink, Embedding, ResultSet
from repro.core.service import MnemonicService

__all__ = [
    "MnemonicEngine",
    "MnemonicService",
    "MultiQueryEngine",
    "MultiRunResult",
    "QueryRegistry",
    "EngineConfig",
    "RunResult",
    "SnapshotResult",
    "MatchDefinition",
    "DefaultMatchDefinition",
    "DEBI",
    "CollectingSink",
    "Embedding",
    "ResultSet",
    "ParallelConfig",
]
