"""Partition-parallel engine shards: router, scatter-gather, facade.

One coordinator owning the whole graph caps Mnemonic's capacity at a
single heap and a single mutation pass.  :class:`ShardedEngine` splits
the data graph over N :class:`EngineShard`\\ s — each with its own
adjacency, DEBI, snapshot writer, and worker pool — behind the exact
result contract of :class:`~repro.core.engine.MnemonicEngine`:

* **Placement.**  Vertices are assigned to shards by a pluggable
  :class:`~repro.core.sharding.PartitionStrategy` (hash by default).  A
  shard stores every edge *incident to a vertex it owns*: adjacency,
  per-label degrees and ``find_edges`` at a vertex are therefore
  complete exactly at the vertex's owner, and a boundary edge (endpoints
  owned by different shards) is replicated on both — the *primary*
  replica at ``owner(src)``, the *secondary* at ``owner(dst)``.
* **Global ids.**  A router-level :class:`~repro.core.sharding.EdgeIdAllocator`
  hands out edge ids in exactly the order the single engine would, and
  shards store them under those forced ids
  (``DynamicGraph.add_edge(..., edge_id=...)``), so DEBI rows and
  embedding identities are bit-identical across shard counts.
* **Index maintenance.**  One :class:`~repro.core.filtering.IndexManager`
  per query runs unchanged over :class:`RoutedGraph` /
  :class:`RoutedDEBI` composite views: reads route to the owner /
  primary, DEBI writes fan out to every replica (bits are mirrored), and
  root bits are broadcast to all shards.
* **Enumeration.**  Work units are decomposed once (identical to the
  single engine) and grouped by *home shard* — the primary replica of
  the pinned edge.  Each group enumerates against the shard's own data
  through :class:`ShardScopeGraph`: local reads stay local, and when a
  partial embedding's next matching-order step anchors at a foreign
  vertex, the candidate frontier is *scatter-gathered* — the owning
  shard packs the frontier column as one flat int64 array (the same
  packed-IPC convention as ``columnar_enumerate_packed``) and forwards
  it, with the traffic accounted in :class:`FrontierStats`.  Merged
  per-shard results are deduplicated by embedding identity (node map +
  bound edge-id set).
* **Pools.**  With the ``process`` backend every shard owns a
  supervised :class:`~repro.core.parallel.SharedMemoryPool`; a batch
  dispatches one ``DispatchedEpoch`` per shard and drains them
  independently (completion order across shards is unconstrained).
  Workers hold only their shard's snapshot, so a unit whose enumeration
  crosses the partition boundary *escapes* (see
  :class:`~repro.core.sharding.ShardGuardView`) and is re-run by the
  router with frontier forwarding.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.api import MatchDefinition
from repro.core.debi import DEBI
from repro.core.engine import EngineConfig, RunResult, SnapshotResult
from repro.core.enumeration import (
    EmbeddingArena,
    EnumerationContext,
    WorkUnit,
    decompose_batch,
)
from repro.core.filtering import IndexManager
from repro.core.parallel import (
    EnumerationOutcome,
    EpochDeadlineError,
    PoolBrokenError,
    PoolOwnerMixin,
    SharedMemoryPool,
    _run_serial,
)
from repro.core.registry import build_query_runtime, resolve_deletions
from repro.core.results import Embedding
from repro.core.sharding import (
    EdgeIdAllocator,
    HashPartitionStrategy,
    PartitionMap,
    PartitionStrategy,
)
from repro.core.supervisor import PoolSupervisor
from repro.graph.adjacency import DynamicGraph, GraphError
from repro.graph.stats import PlaceholderStats
from repro.query.query_graph import QueryGraph
from repro.streams.broker import producing
from repro.streams.events import EventKind, StreamEvent
from repro.streams.generator import Snapshot, SnapshotGenerator
from repro.streams.sources import ListSource, StreamSource
from repro.utils.validation import ConfigurationError

_EMPTY_IDS = np.empty(0, dtype=np.int64)


@dataclass
class FrontierStats:
    """Cross-shard scatter-gather traffic counters (router lifetime)."""

    #: packed frontier-column forwards (one per foreign candidate-pool read)
    forwards: int = 0
    #: candidate rows carried by those forwards
    rows: int = 0
    #: packed payload bytes forwarded
    bytes: int = 0
    #: scalar cross-shard reads (degree probes, witness ``find_edges``)
    lookups: int = 0
    #: endpoint rows gathered from foreign replicas
    gather_rows: int = 0
    #: pool work units bounced back by the worker-side ownership guard
    escaped_units: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "frontier_forwards": self.forwards,
            "frontier_rows": self.rows,
            "frontier_bytes": self.bytes,
            "frontier_lookups": self.lookups,
            "frontier_gather_rows": self.gather_rows,
            "escaped_units": self.escaped_units,
        }


class EngineShard(PoolOwnerMixin):
    """One engine shard: its own adjacency, DEBI, snapshot writer, pool.

    The snapshot writer lives inside the shard's
    :class:`~repro.core.parallel.SharedMemoryPool` (one writer per pool,
    as in the single engine); serial-backend shards simply never spawn
    one.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        # Recycling is off on purpose: the *router's* allocator owns the
        # global id space and passes forced ids down, so a shard-local
        # free list could only hand out conflicting ids.
        self.graph = DynamicGraph(recycle_edge_ids=False)
        self.debi: DEBI | None = None
        self.arena: EmbeddingArena | None = None
        #: edge mutations (inserts + deletes, replicas included) applied here
        self.mutations_applied = 0
        self._supervisor: PoolSupervisor | None = None
        self._exports_before_pool = 0

    # ------------------------------------------------------------------ pool lifecycle
    def spawn_pool(self, supervisor: PoolSupervisor) -> None:
        self._supervisor = supervisor
        self._adopt_pool(supervisor.spawn())

    def pool_broken(self) -> SharedMemoryPool | None:
        """Retire the broken pool and adopt the supervisor's replacement."""
        assert self._supervisor is not None
        return self._adopt_pool(self._supervisor.replace(self._detach_pool()))

    @property
    def pool(self) -> SharedMemoryPool | None:
        pool = self._pool
        return pool if pool is not None and pool.usable else None

    @property
    def snapshot_exports(self) -> int:
        current = self._pool.publish_count if self._pool is not None else 0
        retired = (
            self._supervisor.retired_publish_count if self._supervisor is not None else 0
        )
        return self._exports_before_pool + retired + current

    def close(self) -> None:
        pool = self._detach_pool()
        if pool is not None:
            self._exports_before_pool += getattr(pool, "publish_count", 0)
            pool.close()
        if self._supervisor is not None:
            self._exports_before_pool += self._supervisor.release_retired()


# ---------------------------------------------------------------------- composite views
class RoutedGraph:
    """The whole-graph facade stitched from the shard set.

    Implements the read surface of :class:`~repro.graph.DynamicGraph`
    by routing every vertex-keyed call to the vertex's owner (where the
    adjacency is complete) and every edge-id call to the edge's primary
    replica.  The index manager and the deletion resolver run over this
    view unchanged, which is what keeps DEBI maintenance bit-identical
    to the single engine.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router
        self.stats: PlaceholderStats = router.stats

    # --- edge-id keyed ------------------------------------------------
    def edge(self, edge_id: int):
        return self._router.primary_graph(edge_id).edge(edge_id)

    def is_alive(self, edge_id: int) -> bool:
        return self._router.edge_is_alive(edge_id)

    def endpoint_array(self, edge_ids, take_dst: bool) -> np.ndarray:
        return self._router.gather_endpoints(-1, edge_ids, take_dst)

    def endpoint_list(self, edge_ids, take_dst: bool) -> list[int]:
        return self._router.gather_endpoints(
            -1, np.asarray(list(edge_ids), dtype=np.int64), take_dst
        ).tolist()

    def edge_labels(self, edge_ids) -> np.ndarray:
        ids = edge_ids.tolist() if hasattr(edge_ids, "tolist") else list(edge_ids)
        return np.fromiter(
            (self.edge(e).label for e in ids), dtype=np.int64, count=len(ids)
        )

    # --- vertex keyed -------------------------------------------------
    def candidate_pool(self, vertex: int, out: bool, label: int | None = None):
        return self._router.owner_graph(vertex).candidate_pool(vertex, out, label)

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        return self._router.owner_graph(src).find_edges(src, dst, label)

    def out_degree(self, vertex: int) -> int:
        return self._router.owner_graph(vertex).out_degree(vertex)

    def in_degree(self, vertex: int) -> int:
        return self._router.owner_graph(vertex).in_degree(vertex)

    def out_label_degree(self, vertex: int, label: int) -> int:
        return self._router.owner_graph(vertex).out_label_degree(vertex, label)

    def in_label_degree(self, vertex: int, label: int) -> int:
        return self._router.owner_graph(vertex).in_label_degree(vertex, label)

    def vertex_label(self, vertex: int) -> int:
        return self._router.owner_graph(vertex).vertex_label(vertex)

    def has_vertex(self, vertex: int) -> bool:
        return self._router.owner_graph(vertex).has_vertex(vertex)

    # --- aggregates ---------------------------------------------------
    def vertices(self) -> Iterator[int]:
        return self._router.partition.vertices()

    @property
    def num_vertices(self) -> int:
        return len(self._router.partition)

    @property
    def num_edges(self) -> int:
        return self._router.num_edges

    @property
    def num_placeholders(self) -> int:
        return self._router.allocator.num_placeholders

    def edges(self):
        """All live edges, each yielded once (from its primary replica)."""
        for edge_id in self._router.live_edge_ids():
            yield self._router.primary_graph(edge_id).edge(edge_id)


class RoutedDEBI:
    """Write-fanout / read-by-primary view over the per-shard DEBIs.

    Edge bits are **mirrored**: a set/clear lands on every replica of
    the edge, so each shard can answer DEBI reads for any edge it
    stores without a round trip.  Root bits are vertex-keyed and
    broadcast to every shard for the same reason.  Reads route to the
    primary replica.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def set(self, edge_id: int, column: int) -> None:
        for shard in self._router.replica_shards(edge_id):
            shard.debi.set(edge_id, column)  # type: ignore[union-attr]

    def clear(self, edge_id: int, column: int) -> None:
        for shard in self._router.replica_shards(edge_id):
            shard.debi.clear(edge_id, column)  # type: ignore[union-attr]

    def clear_edge(self, edge_id: int) -> None:
        for shard in self._router.replica_shards(edge_id):
            shard.debi.clear_edge(edge_id)  # type: ignore[union-attr]

    def get(self, edge_id: int, column: int) -> bool:
        return self._router.primary_debi(edge_id).get(edge_id, column)

    def row(self, edge_id: int) -> int:
        return self._router.primary_debi(edge_id).row(edge_id)

    # -------------------------------------------------------------- bulk (columnar ingest)
    def _replica_groups(self, ids: np.ndarray):
        """Yield ``(shard, ids_subset)`` covering every replica of ``ids``."""
        primary = self._router._primary[ids]
        secondary = self._router._secondary[ids]
        for index, shard in enumerate(self._router.shards):
            member = (primary == index) | (secondary == index)
            if member.any():
                yield shard, ids[member]

    def set_edges(self, edge_ids, column: int) -> None:
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return
        for shard, subset in self._replica_groups(ids):
            shard.debi.set_edges(subset, column)  # type: ignore[union-attr]

    def clear_edges(self, edge_ids) -> None:
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.shape[0] == 0:
            return
        for shard, subset in self._replica_groups(ids):
            shard.debi.clear_edges(subset)  # type: ignore[union-attr]

    def rows(self, edge_ids) -> list[int]:
        """Bulk :meth:`row`: primary-replica gather, scattered back in order."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        out = np.zeros(ids.shape[0], dtype=np.uint64)
        primary = self._router._primary[ids]
        for index, shard in enumerate(self._router.shards):
            member = primary == index
            if member.any():
                out[member] = np.asarray(
                    shard.debi.rows(ids[member]), dtype=np.uint64  # type: ignore[union-attr]
                )
        return [int(v) for v in out.tolist()]

    def column_mask(self, edge_ids, column: int) -> np.ndarray:
        ids = np.asarray(edge_ids, dtype=np.int64)
        mask = np.zeros(ids.shape[0], dtype=bool)
        primary = self._router._primary[ids]
        for index, shard in enumerate(self._router.shards):
            member = primary == index
            if member.any():
                mask[member] = shard.debi.column_mask(ids[member], column)  # type: ignore[union-attr]
        return mask

    def roots_mask(self, vertices) -> np.ndarray:
        """Root bits are broadcast, so any shard's vector answers the batch."""
        return self._router.shards[0].debi.roots_mask(vertices)  # type: ignore[union-attr]

    def set_root(self, vertex: int) -> None:
        for shard in self._router.shards:
            shard.debi.set_root(vertex)  # type: ignore[union-attr]

    def clear_root(self, vertex: int) -> None:
        for shard in self._router.shards:
            shard.debi.clear_root(vertex)  # type: ignore[union-attr]

    def is_root(self, vertex: int) -> bool:
        return self._router.shards[0].debi.is_root(vertex)  # type: ignore[union-attr]

    def reset(self) -> None:
        for shard in self._router.shards:
            shard.debi.reset()  # type: ignore[union-attr]

    def total_bits_set(self) -> int:
        """Bits physically stored across all shards (mirrors included)."""
        return sum(shard.debi.total_bits_set() for shard in self._router.shards)  # type: ignore[union-attr]

    def nbytes(self) -> int:
        return sum(shard.debi.nbytes() for shard in self._router.shards)  # type: ignore[union-attr]


class ShardScopeGraph:
    """One shard's view of the graph, with cross-shard frontier forwarding.

    Shard-local enumeration reads through this: anything keyed by an
    owned vertex (or a locally stored edge) is served from the shard's
    own adjacency; a read that crosses the partition boundary goes
    through the router's scatter-gather (packed frontier columns,
    accounted in :class:`FrontierStats`).
    """

    def __init__(self, router: "ShardRouter", shard: EngineShard) -> None:
        self._router = router
        self._shard = shard
        self._local = shard.graph
        self._index = shard.index

    # --- vertex keyed: local or forwarded -----------------------------
    def candidate_pool(self, vertex: int, out: bool, label: int | None = None):
        if self._router.partition.owner(vertex) == self._index:
            return self._local.candidate_pool(vertex, out, label)
        packet = self._router.forward_frontier(self._index, vertex, out, label)
        n = int(packet[3])
        return packet[4 : 4 + n]

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        owner = self._router.partition.owner(src)
        if owner == self._index:
            return self._local.find_edges(src, dst, label)
        self._router.frontier.lookups += 1
        return self._router.shards[owner].graph.find_edges(src, dst, label)

    def _owner_graph(self, vertex: int) -> DynamicGraph:
        owner = self._router.partition.owner(vertex)
        if owner == self._index:
            return self._local
        self._router.frontier.lookups += 1
        return self._router.shards[owner].graph

    def out_degree(self, vertex: int) -> int:
        return self._owner_graph(vertex).out_degree(vertex)

    def in_degree(self, vertex: int) -> int:
        return self._owner_graph(vertex).in_degree(vertex)

    def out_label_degree(self, vertex: int, label: int) -> int:
        return self._owner_graph(vertex).out_label_degree(vertex, label)

    def in_label_degree(self, vertex: int, label: int) -> int:
        return self._owner_graph(vertex).in_label_degree(vertex, label)

    def vertex_label(self, vertex: int) -> int:
        return self._owner_graph(vertex).vertex_label(vertex)

    # --- edge-id keyed: local replica or primary ----------------------
    def edge(self, edge_id: int):
        if self._local.is_alive(edge_id):
            return self._local.edge(edge_id)
        return self._router.primary_graph(edge_id).edge(edge_id)

    def is_alive(self, edge_id: int) -> bool:
        return self._local.is_alive(edge_id) or self._router.edge_is_alive(edge_id)

    def endpoint_array(self, edge_ids, take_dst: bool) -> np.ndarray:
        return self._router.gather_endpoints(self._index, edge_ids, take_dst)

    def endpoint_list(self, edge_ids, take_dst: bool) -> list[int]:
        return self._router.gather_endpoints(
            self._index, np.asarray(list(edge_ids), dtype=np.int64), take_dst
        ).tolist()

    def edge_labels(self, edge_ids) -> np.ndarray:
        ids = edge_ids.tolist() if hasattr(edge_ids, "tolist") else list(edge_ids)
        return np.fromiter(
            (self.edge(e).label for e in ids), dtype=np.int64, count=len(ids)
        )

    # --- aggregates / publish seam ------------------------------------
    @property
    def num_edges(self) -> int:
        return self._router.num_edges

    @property
    def num_placeholders(self) -> int:
        return self._router.allocator.num_placeholders

    def export_csr(self):
        return self._local.export_csr()

    def export_csr_delta(self):
        return self._local.export_csr_delta()

    def __getattr__(self, name: str):
        return getattr(self._local, name)


class ShardScopeDEBI:
    """One shard's DEBI view: local bits for stored edges, primary otherwise.

    Because edge bits are mirrored on every replica, any pool fetched
    from a shard can be mask-tested against that shard's own DEBI; the
    grouped fallback only fires for frontier columns forwarded from
    other shards.  Root bits are broadcast, so root tests are always
    local.  Everything else (buffer export for the snapshot writer,
    geometry) delegates to the local DEBI.
    """

    def __init__(self, router: "ShardRouter", shard: EngineShard) -> None:
        self._router = router
        self._shard = shard
        self._local = shard.debi
        self._index = shard.index

    def column_mask(self, edge_ids, column: int) -> np.ndarray:
        return self._router.debi_column_mask(self._index, edge_ids, column)

    def filter_candidates(self, edge_ids, column: int) -> list[int]:
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.size == 0:
            return []
        return ids[self._router.debi_column_mask(self._index, ids, column)].tolist()

    def get(self, edge_id: int, column: int) -> bool:
        if self._shard.graph.is_alive(edge_id):
            return self._local.get(edge_id, column)  # type: ignore[union-attr]
        return self._router.primary_debi(edge_id).get(edge_id, column)

    def is_root(self, vertex: int) -> bool:
        return self._local.is_root(vertex)  # type: ignore[union-attr]

    def roots_mask(self, vertices) -> np.ndarray:
        return self._local.roots_mask(vertices)  # type: ignore[union-attr]

    def __getattr__(self, name: str):
        return getattr(self._local, name)


# ---------------------------------------------------------------------- the router
class ShardRouter:
    """Owns placement, the global id space, and cross-shard scatter-gather."""

    def __init__(
        self,
        num_shards: int,
        strategy: PartitionStrategy,
        recycle_edge_ids: bool,
    ) -> None:
        self.partition = PartitionMap(strategy, num_shards)
        self.allocator = EdgeIdAllocator(recycle_edge_ids)
        self.shards: list[EngineShard] = [EngineShard(i) for i in range(num_shards)]
        self.frontier = FrontierStats()
        self.stats = PlaceholderStats()
        self.num_edges = 0
        #: per edge id: shard index of the primary replica (owner(src)), -1 = dead
        self._primary = np.full(1024, -1, dtype=np.int64)
        #: per edge id: shard index of the secondary replica, -1 = none/dead
        self._secondary = np.full(1024, -1, dtype=np.int64)

    # ------------------------------------------------------------------ id-space bookkeeping
    def _ensure_capacity(self, edge_id: int) -> None:
        if edge_id >= self._primary.shape[0]:
            size = max(edge_id + 1, 2 * self._primary.shape[0])
            for name in ("_primary", "_secondary"):
                grown = np.full(size, -1, dtype=np.int64)
                old = getattr(self, name)
                grown[: old.shape[0]] = old
                setattr(self, name, grown)

    def edge_is_alive(self, edge_id: int) -> bool:
        return 0 <= edge_id < self._primary.shape[0] and self._primary[edge_id] >= 0

    def primary_graph(self, edge_id: int) -> DynamicGraph:
        if not self.edge_is_alive(edge_id):
            raise GraphError(f"edge id {edge_id} is not a live edge")
        return self.shards[int(self._primary[edge_id])].graph

    def primary_debi(self, edge_id: int) -> DEBI:
        if not self.edge_is_alive(edge_id):
            raise GraphError(f"edge id {edge_id} is not a live edge")
        return self.shards[int(self._primary[edge_id])].debi  # type: ignore[return-value]

    def replica_shards(self, edge_id: int) -> list[EngineShard]:
        replicas = [self.shards[int(self._primary[edge_id])]]
        secondary = int(self._secondary[edge_id])
        if secondary >= 0:
            replicas.append(self.shards[secondary])
        return replicas

    def owner_graph(self, vertex: int) -> DynamicGraph:
        return self.shards[self.partition.owner(vertex)].graph

    def live_edge_ids(self) -> Iterator[int]:
        for edge_id in range(self.allocator.num_placeholders):
            if self._primary[edge_id] >= 0:
                yield edge_id

    # ------------------------------------------------------------------ mutations
    def insert_edge(self, event: StreamEvent) -> int:
        """Route one insertion to the shard(s) owning its endpoints."""
        src_owner = self.partition.touch(event.src, event.src_label)
        dst_owner = self.partition.touch(event.dst, event.dst_label)
        recycled_before = self.allocator.recycled
        edge_id = self.allocator.allocate(event.src)
        if self.allocator.recycled != recycled_before:
            self.stats.record_recycle()
        self._ensure_capacity(edge_id)
        primary = self.shards[src_owner]
        primary.graph.add_edge(
            event.src, event.dst, event.label, event.timestamp,
            src_label=event.src_label, dst_label=event.dst_label,
            edge_id=edge_id,
        )
        primary.mutations_applied += 1
        self._primary[edge_id] = src_owner
        if dst_owner != src_owner:
            secondary = self.shards[dst_owner]
            secondary.graph.add_edge(
                event.src, event.dst, event.label, event.timestamp,
                src_label=event.src_label, dst_label=event.dst_label,
                edge_id=edge_id,
            )
            secondary.mutations_applied += 1
            self._secondary[edge_id] = dst_owner
        else:
            self._secondary[edge_id] = -1
        self.num_edges += 1
        self.stats.record_insert(
            placeholders=self.allocator.num_placeholders, live=self.num_edges
        )
        return edge_id

    def insert_columns(self, columns) -> list[int]:
        """Columnar :meth:`insert_edge`: one routed batch, bit-identical ids.

        Placement and id allocation replay the per-event path exactly
        (ownership is first-touch order-sensitive, the allocator's
        per-source free lists are LIFO), then each shard receives its
        events as one pre-split column batch — the primary rows plus the
        boundary rows it stores as secondary replica, in event order —
        applied with one :meth:`DynamicGraph.apply_insert_columns` call
        under forced edge ids.
        """
        src_list = columns.src.tolist()
        dst_list = columns.dst.tolist()
        slab_list = columns.src_label.tolist()
        dlab_list = columns.dst_label.tolist()
        n = len(src_list)
        if n == 0:
            return []
        touch = self.partition.touch
        allocator = self.allocator
        src_owners = np.empty(n, dtype=np.int64)
        dst_owners = np.empty(n, dtype=np.int64)
        new_ids: list[int] = []
        recycled_before = allocator.recycled
        for i in range(n):
            src_owners[i] = touch(src_list[i], slab_list[i])
            dst_owners[i] = touch(dst_list[i], dlab_list[i])
            new_ids.append(allocator.allocate(src_list[i]))
        num_recycled = allocator.recycled - recycled_before
        for _ in range(num_recycled):
            self.stats.record_recycle()
        ids_arr = np.asarray(new_ids, dtype=np.int64)
        self._ensure_capacity(int(ids_arr.max()))
        secondary = np.where(dst_owners != src_owners, dst_owners, -1)

        for index, shard in enumerate(self.shards):
            member = (src_owners == index) | (secondary == index)
            if not member.any():
                continue
            rows = np.nonzero(member)[0]
            sub = columns.take(rows)
            shard.graph.apply_insert_columns(
                sub.src, sub.dst, sub.label, sub.timestamp,
                sub.src_label, sub.dst_label, edge_ids=ids_arr[rows],
            )
            shard.mutations_applied += int(rows.shape[0])

        self._primary[ids_arr] = src_owners
        self._secondary[ids_arr] = secondary
        self.num_edges += n
        # Bulk equivalence of n record_insert calls: placeholders and live
        # are monotone within an insert batch, so the final values realise
        # both peaks.
        self.stats.inserts += n
        self.stats.peak_placeholders = max(
            self.stats.peak_placeholders, allocator.num_placeholders
        )
        self.stats.peak_live = max(self.stats.peak_live, self.num_edges)
        return new_ids

    def delete_edge(self, edge_id: int):
        """Delete ``edge_id`` from every replica; return its last record."""
        record = self.primary_graph(edge_id).edge(edge_id)
        for shard in self.replica_shards(edge_id):
            shard.graph.delete_edge(edge_id)
            shard.mutations_applied += 1
        self._primary[edge_id] = -1
        self._secondary[edge_id] = -1
        self.allocator.release(record.src, edge_id)
        self.num_edges -= 1
        self.stats.record_delete(
            placeholders=self.allocator.num_placeholders, live=self.num_edges
        )
        return record

    # ------------------------------------------------------------------ scatter-gather
    def forward_frontier(
        self, dest: int, vertex: int, out: bool, label: int | None
    ) -> np.ndarray:
        """Serve a foreign candidate-pool read as one packed int64 column.

        Layout (same flat-int64 convention as the kernel's packed IPC
        embeddings): ``[vertex, direction, label(-1=wildcard), n, ids...]``.
        The in-process hop stands in for the wire; the packet is what a
        networked deployment would ship, so its size is what we account.
        """
        owner = self.partition.owner(vertex)
        pool = self.shards[owner].graph.candidate_pool(vertex, out, label)
        ids = np.asarray(pool, dtype=np.int64)
        packet = np.empty(ids.size + 4, dtype=np.int64)
        packet[0] = vertex
        packet[1] = int(out)
        packet[2] = -1 if label is None else label
        packet[3] = ids.size
        packet[4:] = ids
        self.frontier.forwards += 1
        self.frontier.rows += int(ids.size)
        self.frontier.bytes += int(packet.nbytes)
        return packet

    def gather_endpoints(self, dest: int, edge_ids, take_dst: bool) -> np.ndarray:
        """Endpoint gather across replicas: local rows free, foreign grouped.

        ``dest`` is the asking shard (-1 for the routed whole-graph view:
        everything routes by primary).
        """
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.size == 0:
            return _EMPTY_IDS.copy()
        prim = self._primary[ids]
        if dest >= 0:
            local = (prim == dest) | (self._secondary[ids] == dest)
            if bool(local.all()):
                return self.shards[dest].graph.endpoint_array(ids, take_dst)
        else:
            local = np.zeros(ids.shape, dtype=bool)
        out = np.empty(ids.size, dtype=np.int64)
        if local.any():
            out[local] = self.shards[dest].graph.endpoint_array(ids[local], take_dst)
        foreign = ~local
        for shard_index in np.unique(prim[foreign]).tolist():
            sel = foreign & (prim == shard_index)
            out[sel] = self.shards[int(shard_index)].graph.endpoint_array(
                ids[sel], take_dst
            )
            if dest >= 0:
                self.frontier.gather_rows += int(sel.sum())
        return out

    def debi_column_mask(self, dest: int, edge_ids, column: int) -> np.ndarray:
        """Vectorized DEBI bit test across replicas (bits are mirrored)."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=bool)
        prim = self._primary[ids]
        local = (prim == dest) | (self._secondary[ids] == dest)
        if bool(local.all()):
            return self.shards[dest].debi.column_mask(ids, column)  # type: ignore[union-attr]
        mask = np.zeros(ids.size, dtype=bool)
        if local.any():
            mask[local] = self.shards[dest].debi.column_mask(ids[local], column)  # type: ignore[union-attr]
        foreign = ~local
        for shard_index in np.unique(prim[foreign]).tolist():
            if shard_index < 0:  # dead ids test as 0, like a cleared row
                continue
            sel = foreign & (prim == shard_index)
            mask[sel] = self.shards[int(shard_index)].debi.column_mask(ids[sel], column)  # type: ignore[union-attr]
        return mask


# ---------------------------------------------------------------------- the facade
class ShardedEngine:
    """Partition-parallel Mnemonic: N engine shards behind one facade.

    Drop-in for the single-query :class:`~repro.core.engine.MnemonicEngine`
    result contract: same ``load_initial`` / ``run`` / ``batch_inserts``
    / ``batch_deletes`` surface, bit-identical positive and negative
    embedding identity sets for any shard count (gated in CI by
    ``shard_parity``), with mutation, DEBI maintenance, snapshot export,
    and enumeration work split across the shards.

    Not yet sharded: durable storage and the external edge store (both
    raise), and the pipelined batch mode (runs serial; per-shard pools
    still overlap *within* each phase).
    """

    def __init__(
        self,
        query: QueryGraph,
        match_def: MatchDefinition | None = None,
        config: EngineConfig | None = None,
        root: int | None = None,
        strategy: PartitionStrategy | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        if self.config.storage is not None:
            raise ConfigurationError(
                "ShardedEngine does not support durable storage yet; "
                "run MnemonicEngine with config.storage instead"
            )
        if self.config.stream.in_memory_window is not None:
            raise ConfigurationError(
                "ShardedEngine does not support the external edge store"
            )
        num_shards = self.config.shards
        self.router = ShardRouter(
            num_shards,
            strategy or HashPartitionStrategy(),
            recycle_edge_ids=self.config.recycle_edge_ids,
        )
        self.shards = self.router.shards

        # Harvest the per-query precomputation (tree, orders, masks,
        # picklable query state) from the shared builder, then discard its
        # single-graph DEBI/index pair: the sharded engine maintains one
        # DEBI per shard behind the routed composite views instead.
        scratch = build_query_runtime(
            query, match_def, DynamicGraph(recycle_edge_ids=False),
            use_degree_filter=self.config.use_degree_filter, root=root,
            rebuild_index=False, kernel=self.config.kernel,
        )
        self.query = query
        self.match_def = scratch.match_def
        self.tree = scratch.tree
        self.orders = scratch.orders
        self.masks = scratch.masks
        self.query_state = scratch.query_state

        for shard in self.shards:
            shard.debi = DEBI(self.tree)
            if self.config.kernel == "columnar":
                shard.arena = EmbeddingArena()
        self.routed_graph = RoutedGraph(self.router)
        self.routed_debi = RoutedDEBI(self.router)
        self.index_manager = IndexManager(
            query, self.tree, self.routed_graph, self.routed_debi,  # type: ignore[arg-type]
            self.match_def, use_degree_filter=self.config.use_degree_filter,
        )

        # Per-shard supervised pools (process backend only): one
        # DispatchedEpoch per shard per phase, drained independently.
        if self.config.parallel.backend == "process":
            for shard in self.shards:
                supervisor = PoolSupervisor(
                    self.config.fault,
                    lambda: SharedMemoryPool.create(self.query_state, self.config.parallel),
                )
                shard.spawn_pool(supervisor)

        self._snapshot_counter = 0
        self._filter_traversals = 0

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except Exception:
            if exc_type is None:
                raise

    # ------------------------------------------------------------------ initialisation
    def initialize_stream(
        self, source: StreamSource | Sequence[StreamEvent]
    ) -> SnapshotGenerator:
        if isinstance(source, (list, tuple)):
            source = ListSource(source)
        return SnapshotGenerator(source, self.config.stream)

    def load_initial(self, events: Iterable[StreamEvent | tuple]) -> int:
        """Load and index an initial graph (insertions only), no enumeration."""
        coerced = [self._coerce_insert(event) for event in events]
        columns = self._decode_columns(True, coerced)
        if columns is not None:
            new_ids = self.router.insert_columns(columns)
            self.index_manager.handle_insert_columns(
                new_ids, columns.src, columns.dst, columns.label
            )
        else:
            new_ids = [self.router.insert_edge(event) for event in coerced]
            self.index_manager.handle_insertions(new_ids)
        return len(new_ids)

    def _decode_columns(self, positive: bool, events: Sequence[StreamEvent]):
        """One batch's columnar decode, or None on the per-edge reference path."""
        if not events or self.config.ingest != "columnar":
            return None
        from repro.streams.events import EventColumns, EventKind

        kind = EventKind.INSERT if positive else EventKind.DELETE
        return EventColumns.from_events(kind, events)

    @staticmethod
    def _coerce_insert(event: StreamEvent | tuple) -> StreamEvent:
        if isinstance(event, StreamEvent):
            if event.kind is not EventKind.INSERT:
                raise ConfigurationError("load_initial only accepts insertion events")
            return event
        return StreamEvent.insert(*event)

    # ------------------------------------------------------------------ main loop
    def run(self, source: StreamSource | Sequence[StreamEvent]) -> RunResult:
        """Process the whole stream, one serial batch at a time, all shards."""
        generator = self.initialize_stream(source)
        with producing(source):
            result = RunResult()
            for snapshot in generator:
                result.add(self.process_snapshot(snapshot))
            return result

    def process_snapshot(self, snapshot: Snapshot) -> SnapshotResult:
        # Sealed batches cache their columnar decode; reuse it so the
        # fan-out tier and the engine never decode the same batch twice.
        columns = (
            snapshot.insert_columns() if self.config.ingest == "columnar" else None
        )
        return self._process_batch(
            snapshot.number, snapshot.insertions, snapshot.deletions,
            insert_columns=columns,
        )

    def batch_inserts(self, events: Iterable[StreamEvent | tuple]) -> SnapshotResult:
        coerced = [self._coerce_insert(e) for e in events]
        return self._process_batch(self._snapshot_counter, coerced, [])

    def batch_deletes(self, events: Iterable[StreamEvent | tuple]) -> SnapshotResult:
        coerced = [
            e if isinstance(e, StreamEvent) else StreamEvent.delete(*e) for e in events
        ]
        return self._process_batch(self._snapshot_counter, [], coerced)

    # ------------------------------------------------------------------ batch execution
    def _process_batch(
        self,
        number: int,
        insert_events: Sequence[StreamEvent],
        delete_events: Sequence[StreamEvent],
        insert_columns=None,
    ) -> SnapshotResult:
        """One batch, single-engine serial semantics: inserts then deletes."""
        result = SnapshotResult(
            number=number,
            num_insertions=len(insert_events),
            num_deletions=len(delete_events),
        )
        if insert_events:
            columns = (
                insert_columns
                if insert_columns is not None
                else self._decode_columns(True, insert_events)
            )
            start = time.perf_counter()
            if columns is not None:
                new_ids = self.router.insert_columns(columns)
            else:
                new_ids = [self.router.insert_edge(event) for event in insert_events]
            result.graph_update_seconds += time.perf_counter() - start

            start = time.perf_counter()
            if columns is not None:
                self.index_manager.handle_insert_columns(
                    np.asarray(new_ids, dtype=np.int64),
                    columns.src, columns.dst, columns.label,
                )
            else:
                self.index_manager.handle_insertions(new_ids)
            result.filter_seconds += time.perf_counter() - start
            result.filter_traversals += self.index_manager.last_batch_traversals

            self._enumerate_phase(set(new_ids), positive=True, result=result)

        if delete_events:
            start = time.perf_counter()
            doomed = resolve_deletions(self.routed_graph, delete_events)  # type: ignore[arg-type]
            result.graph_update_seconds += time.perf_counter() - start

            # Negative embeddings are enumerated *before* the deletion is
            # applied — they exist only in the pre-batch graph.
            self._enumerate_phase(set(doomed), positive=False, result=result)

            start = time.perf_counter()
            deleted: list[tuple] = []
            if doomed and self.config.ingest == "columnar":
                # Bulk variant of the loop below: capture every row mask and
                # clear the mirrored bits while the router still knows each
                # replica set, then retire the ids in event order so the
                # free-list replay stays bit-identical to the per-edge path.
                row_masks = self.routed_debi.rows(doomed)
                self.routed_debi.clear_edges(np.asarray(doomed, dtype=np.int64))
                for edge_id, row_mask in zip(doomed, row_masks):
                    record = self.router.delete_edge(edge_id)
                    deleted.append((record, row_mask))
            else:
                for edge_id in doomed:
                    row_mask = self.routed_debi.row(edge_id)
                    # Clear the mirrored bits while the router still knows the
                    # replica set; delete_edge retires the id from the shard
                    # map, after which the replicas are unreachable and a
                    # recycled id would inherit stale bits.
                    self.routed_debi.clear_edge(edge_id)
                    record = self.router.delete_edge(edge_id)
                    deleted.append((record, row_mask))
            result.graph_update_seconds += time.perf_counter() - start

            start = time.perf_counter()
            self.index_manager.handle_deletions(deleted)
            result.filter_seconds += time.perf_counter() - start
            result.filter_traversals += self.index_manager.last_batch_traversals

        result.live_edges = self.router.num_edges
        result.edge_placeholders = self.router.allocator.num_placeholders
        result.debi_bits = self.routed_debi.total_bits_set()
        self.router.stats.sample_snapshot(
            number, self.router.allocator.num_placeholders, self.router.num_edges
        )
        self._snapshot_counter += 1
        return result

    # ------------------------------------------------------------------ enumeration
    def _make_scope_context(
        self, shard: EngineShard, batch_edge_ids: set[int], positive: bool
    ) -> EnumerationContext:
        return self.query_state.make_context(
            ShardScopeGraph(self.router, shard),
            ShardScopeDEBI(self.router, shard),  # type: ignore[arg-type]
            batch_edge_ids,
            positive,
            arena=shard.arena,
        )

    def _decompose(self, batch_edge_ids: set[int], positive: bool) -> list[WorkUnit]:
        """Work decomposition over the routed views — identical units to
        the single engine's, since the composite views present the same
        graph and the same (mirrored) DEBI bits."""
        context = self.query_state.make_context(
            self.routed_graph, self.routed_debi, batch_edge_ids, positive  # type: ignore[arg-type]
        )
        return decompose_batch(context, sorted(batch_edge_ids))

    def _enumerate_phase(
        self, batch_edge_ids: set[int], positive: bool, result: SnapshotResult
    ) -> None:
        collect = self.config.collect_embeddings
        units = self._decompose(batch_edge_ids, positive)
        result.work_units += len(units)
        if not units:
            return

        # Group by home shard: the primary replica of the pinned edge.
        by_shard: dict[int, list[WorkUnit]] = defaultdict(list)
        for unit in units:
            by_shard[int(self.router._primary[unit.edge_id])].append(unit)

        start = time.perf_counter()
        contexts: dict[int, EnumerationContext] = {}
        outcomes: dict[int, EnumerationOutcome] = {}
        dispatched: list[tuple[int, object]] = []
        # Scatter: dispatch every shard's epoch before draining any, so
        # the per-shard pools chew concurrently and completion order
        # across shards is unconstrained.
        for shard_index, shard_units in sorted(by_shard.items()):
            shard = self.shards[shard_index]
            context = contexts[shard_index] = self._make_scope_context(
                shard, batch_edge_ids, positive
            )
            pool = shard.pool
            if pool is not None and len(shard_units) >= 2 * pool.num_workers:
                try:
                    handle = pool.dispatch(
                        {0: context}, {0: shard_units}, collect=collect,
                        descriptor_extra={"shard": {
                            "strategy": self.router.partition.strategy,
                            "num_shards": self.router.partition.num_shards,
                            "shard": shard_index,
                        }},
                    )
                    dispatched.append((shard_index, handle))
                    continue
                except PoolBrokenError:
                    shard.pool_broken()
            outcomes[shard_index] = _run_serial(context, shard_units, collect)

        # Gather: drain each shard's epoch; units the workers escaped
        # (cross-shard frontier) re-run here with forwarding.
        for shard_index, handle in dispatched:
            shard = self.shards[shard_index]
            context = contexts[shard_index]
            pool = shard.pool
            try:
                assert pool is not None
                drained = pool.drain(
                    handle, self.config.fault.epoch_deadline_seconds
                )
                outcome = drained.outcomes[0]
                escaped = drained.escaped.get(0, [])
            except (PoolBrokenError, EpochDeadlineError):
                shard.pool_broken()
                outcome = None
                escaped = by_shard[shard_index]
            if escaped:
                self.router.frontier.escaped_units += len(escaped)
                rerun = _run_serial(context, escaped, collect)
                if outcome is None:
                    outcome = rerun
                else:
                    outcome = EnumerationOutcome(
                        outcome.embeddings + rerun.embeddings,
                        outcome.worker_stats + rerun.worker_stats,
                        max(outcome.wall_seconds, rerun.wall_seconds),
                        num_embeddings=outcome.num_embeddings + rerun.num_embeddings,
                    )
            outcomes[shard_index] = outcome  # type: ignore[assignment]

        # Merge, deduplicating by embedding identity (node map + bound
        # edge-id set).  Home-shard grouping partitions the units, so
        # duplicates should not arise; the dedup is the contract's safety
        # net, and duplicates are counted if a strategy ever violates it.
        seen: set[tuple] = set()
        merged: list[Embedding] = []
        total = 0
        stats_all = []
        wall = time.perf_counter() - start
        for shard_index in sorted(outcomes):
            outcome = outcomes[shard_index]
            total += outcome.num_embeddings
            stats_all.extend(outcome.worker_stats)
            for embedding in outcome.embeddings:
                key = embedding.identity()
                if key not in seen:
                    seen.add(key)
                    merged.append(embedding)
            result.candidates_scanned += contexts[shard_index].candidates_scanned
        if collect and len(merged) != total:
            total = len(merged)

        phase_outcome = EnumerationOutcome(merged, stats_all, wall, num_embeddings=total)
        result.enumerate_seconds += wall
        result.enumeration_outcomes.append(phase_outcome)
        if positive:
            result.num_positive += total
            if collect:
                result.positive_embeddings.extend(merged)
        else:
            result.num_negative += total
            if collect:
                result.negative_embeddings.extend(merged)

    # ------------------------------------------------------------------ metrics
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def snapshot_exports(self) -> int:
        return sum(shard.snapshot_exports for shard in self.shards)

    def frontier_stats(self) -> dict[str, int]:
        """Cross-shard scatter-gather traffic over the engine lifetime."""
        return self.router.frontier.as_dict()

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard work report: the fig13 shard-scaling row set."""
        return [
            {
                "shard": shard.index,
                "owned_vertices": sum(
                    1 for v in self.router.partition.vertices()
                    if self.router.partition.owner(v) == shard.index
                ),
                "stored_edges": shard.graph.num_edges,
                "mutations_applied": shard.mutations_applied,
                "debi_bits_set": shard.debi.total_bits_set() if shard.debi else 0,
                "snapshot_exports": shard.snapshot_exports,
            }
            for shard in self.shards
        ]

    def memory_report(self) -> dict[str, int]:
        return {
            "live_edges": self.router.num_edges,
            "edge_placeholders": self.router.allocator.num_placeholders,
            "debi_bits_set": self.routed_debi.total_bits_set(),
            "debi_bytes": self.routed_debi.nbytes(),
            "recycled_inserts": self.router.allocator.recycled,
            "stored_edge_replicas": sum(s.graph.num_edges for s in self.shards),
        }
