"""Supervised pool lifecycle: respawn, redispatch, deadlines, degradation.

``SharedMemoryPool`` (:mod:`repro.core.parallel`) is fast but mortal: a
worker can be OOM-killed, wedge on a bad allocation, or corrupt a result
message.  Before this module, any of those surfaced as
:class:`~repro.core.parallel.PoolBrokenError` and the engines fell back
to slow parent-side recovery for the rest of the run.  The
:class:`PoolSupervisor` turns those one-way failures into a supervised
lifecycle:

* **Respawn** — when a pool breaks, spawn a replacement under a bounded
  exponential-backoff retry budget (:class:`FaultPolicy.max_respawns`).
* **Redispatch** — in-flight epochs live in *frozen* double-buffered
  shared-memory segments whose names are globally unique, so a
  replacement pool's workers can attach to the retired pool's segments
  and re-run exactly the same work units.  Recovery is therefore
  bit-identical to a fault-free run.
* **Deadlines** — ``FaultPolicy.epoch_deadline_seconds`` bounds how long
  a drain may wait on a wedged worker before the pool is declared broken
  (and the normal respawn path takes over).
* **Degradation ladder** — when the retry budget is exhausted the
  supervisor steps down ``process -> thread -> serial`` instead of
  failing, and every transition is counted and surfaced through
  ``fault_stats()`` on the engines and the service.

Retired pools are kept (terminated, but with their shared-memory writer
alive) until their frozen epochs are no longer needed, then released;
their snapshot-export counts remain visible so accounting survives
respawn.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.utils.validation import ConfigurationError, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.parallel import EnumerationOutcome, SharedMemoryPool

#: The backends the supervisor steps through when a crash loop exhausts
#: the respawn budget.  Transitions are one-way within a supervisor.
DEGRADATION_LADDER = ("process", "thread", "serial")


@dataclass(frozen=True)
class FaultPolicy:
    """How the execution layer reacts to worker faults.

    The default policy is conservative: no respawns (``max_respawns=0``),
    no deadline.  A broken pool then degrades immediately to the thread
    backend, which matches the pre-supervisor behaviour of "recover
    parent-side and stop using the pool".  Opting into self-healing is
    one knob: ``FaultPolicy(max_respawns=3)``.
    """

    #: replacement pools to attempt per engine before degrading
    max_respawns: int = 0
    #: backoff before respawn attempt #1 (doubles per attempt by default)
    backoff_initial_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 2.0
    #: wall-clock budget for draining one epoch; ``None`` waits forever
    epoch_deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {self.max_respawns!r}"
            )
        if self.backoff_initial_seconds < 0:
            raise ConfigurationError(
                f"backoff_initial_seconds must be >= 0, got {self.backoff_initial_seconds!r}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier!r}"
            )
        if self.backoff_max_seconds < self.backoff_initial_seconds:
            raise ConfigurationError(
                "backoff_max_seconds must be >= backoff_initial_seconds, got "
                f"{self.backoff_max_seconds!r} < {self.backoff_initial_seconds!r}"
            )
        if self.epoch_deadline_seconds is not None:
            check_positive(self.epoch_deadline_seconds, "epoch_deadline_seconds")

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before respawn ``attempt`` (1-based), capped exponential."""
        delay = self.backoff_initial_seconds * self.backoff_multiplier ** (attempt - 1)
        return min(delay, self.backoff_max_seconds)


@dataclass
class SupervisorStats:
    """Counters surfaced through ``fault_stats()`` on engines/service."""

    #: pool breakages observed (crash, deadline, torn message, ...)
    faults: int = 0
    #: replacement pools successfully spawned
    respawns: int = 0
    #: in-flight epochs re-run on a replacement pool from frozen segments
    redispatched_epochs: int = 0
    #: in-flight epochs recovered parent-side (no replacement available)
    recovered_epochs: int = 0
    #: epoch drains aborted by ``epoch_deadline_seconds``
    deadline_expiries: int = 0
    #: one entry per ladder step, e.g. ``"process->thread"``
    degradations: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "faults": self.faults,
            "respawns": self.respawns,
            "redispatched_epochs": self.redispatched_epochs,
            "recovered_epochs": self.recovered_epochs,
            "deadline_expiries": self.deadline_expiries,
            "degradations": list(self.degradations),
        }


class PoolSupervisor:
    """Owns a :class:`SharedMemoryPool`'s lifecycle for one engine.

    The supervisor does not talk to the pool's queues itself; the
    :class:`~repro.core.pipeline.BatchPipeline` drives dispatch/drain and
    reports breakage through the host hooks, which the engines route
    here.  The supervisor's job is policy: whether to respawn, how long
    to back off, when to give up and step down the degradation ladder,
    and keeping fault/worker accounting coherent across generations.
    """

    def __init__(
        self,
        policy: FaultPolicy,
        factory: Callable[[], "SharedMemoryPool | None"] | None,
    ) -> None:
        self.policy = policy
        self._factory = factory
        self.stats = SupervisorStats()
        #: current rung of :data:`DEGRADATION_LADDER`.  Starts at
        #: "process" even for hosts that never spawn a pool (no factory):
        #: the level tracks *fault-driven* degradation only, and such
        #: hosts keep their configured fallback until a fault occurs.
        self.level = "process"
        self._respawns_used = 0
        self._generation = 0
        #: terminated pools whose frozen segments / export counts we still hold
        self._retired: list[SharedMemoryPool] = []
        #: per-(generation, worker) unit/embedding totals, for accounting
        #: that survives respawn (see ``worker_totals``)
        self._worker_totals: dict[tuple[int, int], dict[str, float]] = {}

    # ------------------------------------------------------------- lifecycle
    def spawn(self) -> "SharedMemoryPool | None":
        """Create the initial pool (or ``None`` when no factory applies)."""
        if self._factory is None:
            return None
        return self.note_spawn(self._factory())

    def replace(self, broken: "SharedMemoryPool | None") -> "SharedMemoryPool | None":
        """Retire ``broken`` and try to spawn a replacement under the budget.

        Returns the replacement pool, or ``None`` when the budget is
        exhausted (the supervisor then degrades to the thread backend).
        The broken pool is terminated but *kept* — its shared-memory
        segments stay alive so in-flight epochs can be redispatched, and
        its ``publish_count`` stays visible until :meth:`release_retired`.
        """
        if broken is not None:
            self.stats.faults += 1
            self.stats.deadline_expiries += getattr(broken, "deadline_expiries", 0)
            broken.terminate()
            self._retired.append(broken)
        while self.level == "process" and self._respawns_used < self.policy.max_respawns:
            self._respawns_used += 1
            delay = self.policy.backoff_seconds(self._respawns_used)
            if delay > 0:
                time.sleep(delay)
            replacement = self._factory() if self._factory is not None else None
            if replacement is not None:
                self.stats.respawns += 1
                return self.note_spawn(replacement)
        if self.level == "process":
            self._degrade("thread")
        return None

    def thread_backend_failed(self) -> None:
        """The thread backend also faulted: step down to serial."""
        self.stats.faults += 1
        if self.level == "thread":
            self._degrade("serial")

    def degraded_backend(self) -> str | None:
        """``None`` while healthy, else the ladder rung to run on."""
        return None if self.level == "process" else self.level

    def _degrade(self, to_level: str) -> None:
        self.stats.degradations.append(f"{self.level}->{to_level}")
        self.level = to_level

    def note_spawn(self, pool: "SharedMemoryPool | None") -> "SharedMemoryPool | None":
        if pool is not None:
            pool.generation = self._generation
            self._generation += 1
        return pool

    # ------------------------------------------------------------ accounting
    def note_recovery(self, redispatched: int, recovered: int) -> None:
        self.stats.redispatched_epochs += redispatched
        self.stats.recovered_epochs += recovered

    def record_outcome(self, outcome: "EnumerationOutcome") -> None:
        """Fold an outcome's worker stats into cross-generation totals."""
        for stats in outcome.worker_stats:
            key = (stats.generation, stats.worker_id)
            entry = self._worker_totals.setdefault(
                key, {"units": 0, "embeddings": 0, "busy_seconds": 0.0}
            )
            entry["units"] += stats.units_processed
            entry["embeddings"] += stats.embeddings_found
            entry["busy_seconds"] += stats.busy_seconds

    @property
    def worker_totals(self) -> dict[tuple[int, int], dict[str, float]]:
        """Per-(generation, worker) totals, accumulated across respawns."""
        return dict(self._worker_totals)

    @property
    def retired_publish_count(self) -> int:
        """Snapshot exports owned by retired (not yet released) pools."""
        return sum(pool.publish_count for pool in self._retired)

    def release_retired(self) -> int:
        """Close retired pools (unlinking their segments); return their exports."""
        harvested = 0
        for pool in self._retired:
            harvested += pool.publish_count
            pool.close()
        self._retired.clear()
        return harvested

    def close(self) -> int:
        """Release everything the supervisor still holds."""
        return self.release_retired()
