"""Vertex partitioning for the sharded engine.

The sharded engine (:mod:`repro.core.shard_router`) splits the data
graph over N *engine shards*, each owning its own adjacency, DEBI,
snapshot writer, and worker pool.  This module holds the pieces that
decide *where* things live:

* :class:`PartitionStrategy` — the pluggable placement protocol: a pure
  function from ``(vertex, label, num_shards)`` to a shard index.  Pure
  and picklable on purpose: worker processes re-derive ownership from
  the strategy alone, without shipping the partition map.
* :class:`HashPartitionStrategy` — the default: a splitmix64 bit mix of
  the vertex id, modulo the shard count.
* :class:`LabelRangePartitionStrategy` — co-locates vertices whose
  labels fall in configured ranges (queries that anchor on one label
  class then enumerate mostly shard-locally), hash fallback otherwise.
* :class:`PartitionMap` — caches the first-sight assignment per vertex.
  Vertex labels are final at first sight (``DynamicGraph.add_vertex``
  forbids relabeling), so the cached owner never moves.
* :class:`EdgeIdAllocator` — the *global* edge-id allocator.  It mirrors
  ``DynamicGraph._allocate_id`` exactly (per-source free lists, pop from
  the back) so a sharded run hands out the same edge ids, in the same
  order, as a single engine consuming the same stream — the property
  the bit-identity gates rest on.
* :class:`ShardGuardView` / :class:`CrossShardAccess` — the worker-side
  ownership guard for per-shard pool dispatch (see the router module).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.utils.validation import ConfigurationError

_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit bijection."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


@runtime_checkable
class PartitionStrategy(Protocol):
    """Placement protocol: assign a vertex to one of ``num_shards`` shards.

    Implementations must be *pure* (same inputs, same answer — the map
    caches first-sight assignments and workers re-derive them) and
    picklable (shipped to pool workers inside the snapshot descriptor).
    """

    def shard_of(self, vertex: int, label: int, num_shards: int) -> int:
        """The shard index owning ``vertex`` (``label`` is its first-sight label)."""
        ...  # pragma: no cover - protocol


class HashPartitionStrategy:
    """Default placement: splitmix64 hash of the vertex id, modulo N."""

    def shard_of(self, vertex: int, label: int, num_shards: int) -> int:
        return splitmix64(vertex) % num_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashPartitionStrategy()"


class LabelRangePartitionStrategy:
    """Placement by vertex-label range, hash fallback for uncovered labels.

    ``ranges`` is a sequence of inclusive ``(lo, hi)`` label intervals;
    vertices whose first-sight label falls in interval ``i`` land on
    shard ``i % num_shards``.  Labels outside every interval fall back
    to the hash strategy, so the assignment is total regardless of the
    configured ranges.
    """

    def __init__(self, ranges: Sequence[tuple[int, int]]) -> None:
        for lo, hi in ranges:
            if lo > hi:
                raise ConfigurationError(f"label range ({lo}, {hi}) is inverted")
        self.ranges = tuple((int(lo), int(hi)) for lo, hi in ranges)
        self._fallback = HashPartitionStrategy()

    def shard_of(self, vertex: int, label: int, num_shards: int) -> int:
        for index, (lo, hi) in enumerate(self.ranges):
            if lo <= label <= hi:
                return index % num_shards
        return self._fallback.shard_of(vertex, label, num_shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelRangePartitionStrategy(ranges={self.ranges!r})"


class PartitionMap:
    """First-sight vertex-to-shard assignment over a pure strategy.

    ``touch`` records a vertex at mutation time with its (final) label;
    ``owner`` answers read-side routing.  Reads of vertices the engine
    has never stored (possible only through user probing, never through
    enumeration — every enumerated vertex is an endpoint of a stored
    edge) fall back to the strategy with the unlabelled default, which
    matches ``DynamicGraph.vertex_label``'s behaviour for unknown ids.
    """

    def __init__(self, strategy: PartitionStrategy, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.strategy = strategy
        self.num_shards = num_shards
        self._owner: dict[int, int] = {}

    def touch(self, vertex: int, label: int) -> int:
        """Record ``vertex`` (idempotent) and return its owning shard."""
        owner = self._owner.get(vertex)
        if owner is None:
            owner = self.strategy.shard_of(vertex, label, self.num_shards)
            self._owner[vertex] = owner
        return owner

    def owner(self, vertex: int) -> int:
        """The shard owning ``vertex`` (strategy fallback for unseen ids)."""
        owner = self._owner.get(vertex)
        if owner is None:
            return self.strategy.shard_of(vertex, 0, self.num_shards)
        return owner

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._owner

    def __len__(self) -> int:
        return len(self._owner)

    def vertices(self) -> Iterator[int]:
        return iter(self._owner)


class EdgeIdAllocator:
    """Global edge-id allocator shared by every shard.

    Mirrors ``DynamicGraph._allocate_id``: ids of deleted edges are
    recycled per source vertex, newest first, exactly as the single
    engine's embedded allocator does — so the id sequence (and with it
    every DEBI row index and embedding identity) is bit-identical
    between sharded and single-engine runs of the same stream.
    """

    def __init__(self, recycle_edge_ids: bool = True) -> None:
        self.recycle_edge_ids = recycle_edge_ids
        self._free_ids: dict[int, list[int]] = defaultdict(list)
        self._next_id = 0
        self.recycled = 0

    def allocate(self, src: int) -> int:
        if self.recycle_edge_ids:
            free = self._free_ids.get(src)
            if free:
                self.recycled += 1
                return free.pop()
        edge_id = self._next_id
        self._next_id += 1
        return edge_id

    def release(self, src: int, edge_id: int) -> None:
        if self.recycle_edge_ids:
            self._free_ids[src].append(edge_id)

    @property
    def num_placeholders(self) -> int:
        """Edge slots ever allocated (live + dead) — the global DEBI row count."""
        return self._next_id


class CrossShardAccess(Exception):
    """A shard-local reader touched a vertex another shard owns.

    Raised by :class:`ShardGuardView` inside pool workers: the worker
    only holds its own shard's snapshot, so the unit cannot be finished
    locally and is bounced back to the router for a scatter-gather run.
    """

    def __init__(self, vertex: int, owner: int, shard: int) -> None:
        super().__init__(
            f"vertex {vertex} is owned by shard {owner}, not local shard {shard}"
        )
        self.vertex = vertex
        self.owner = owner
        self.shard = shard


class ShardGuardView:
    """A graph view that refuses vertex-keyed reads at non-owned vertices.

    Wraps one shard's snapshot view inside a pool worker.  Adjacency at
    a vertex is complete only at the vertex's owner (a shard stores the
    edges incident to *its* vertices); reading a foreign vertex's pool
    locally would silently return a partial frontier, so the guard turns
    it into :class:`CrossShardAccess` and the chunk escapes to the
    router, which re-runs it with cross-shard forwarding.
    Edge-id-keyed reads (endpoint gathers of locally stored edges) pass
    through untouched.
    """

    def __init__(self, graph, strategy: PartitionStrategy, num_shards: int, shard: int) -> None:
        self._graph = graph
        self._strategy = strategy
        self._num_shards = num_shards
        self._shard = shard

    def _check(self, vertex: int) -> None:
        owner = self._strategy.shard_of(
            vertex, self._graph.vertex_label(vertex), self._num_shards
        )
        if owner != self._shard:
            raise CrossShardAccess(vertex, owner, self._shard)

    # --- vertex-keyed reads: guarded ---------------------------------
    def candidate_pool(self, vertex: int, out: bool, label: int | None = None):
        self._check(vertex)
        return self._graph.candidate_pool(vertex, out, label)

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        self._check(src)
        return self._graph.find_edges(src, dst, label)

    def out_degree(self, vertex: int) -> int:
        self._check(vertex)
        return self._graph.out_degree(vertex)

    def in_degree(self, vertex: int) -> int:
        self._check(vertex)
        return self._graph.in_degree(vertex)

    def out_label_degree(self, vertex: int, label: int) -> int:
        self._check(vertex)
        return self._graph.out_label_degree(vertex, label)

    def in_label_degree(self, vertex: int, label: int) -> int:
        self._check(vertex)
        return self._graph.in_label_degree(vertex, label)

    # --- everything else: pass-through -------------------------------
    def __getattr__(self, name: str):
        return getattr(self._graph, name)
