"""The programmable surface of Mnemonic.

The paper's key usability claim is that a new subgraph-matching variant
only requires two application-defined functions (Figure 3/4):

``edge_matcher(query, graph, q_edge, d_edge)``
    Decides whether a data edge is a candidate match for a query edge,
    based on node/edge labels or any other attribute.  It controls what
    goes into DEBI.

``enumerate(context, unit)``
    Consumes a work unit (one new/deleted data edge pinned onto one
    query edge) and yields embeddings, using the context's
    ``get_candidates`` / ``verify_nte`` / ``save_embedding`` helpers.
    The default implementation is the backtracking join of Figure 4.

Both are bundled in a :class:`MatchDefinition`.  The library ships the
variants evaluated in the paper (isomorphism, homomorphism, dual/strong
simulation, time-constrained isomorphism) in :mod:`repro.matchers`, all
expressed through this interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.graph.adjacency import DynamicGraph
from repro.graph.edge import EdgeRecord
from repro.query.query_graph import WILDCARD_LABEL, QueryEdge, QueryGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.enumeration import EnumerationContext, WorkUnit
    from repro.core.results import Embedding


def default_edge_matcher(
    query: QueryGraph,
    graph: DynamicGraph,
    q_edge: QueryEdge,
    d_edge: EdgeRecord,
) -> bool:
    """The paper's Figure 4 matcher: endpoint node labels and the edge label must agree.

    Wildcard query labels match anything.  Direction is implicit: the
    data edge's source is compared against the query edge's source.
    """
    q_src_label = query.node_label(q_edge.src)
    q_dst_label = query.node_label(q_edge.dst)
    if q_src_label != WILDCARD_LABEL and q_src_label != graph.vertex_label(d_edge.src):
        return False
    if q_dst_label != WILDCARD_LABEL and q_dst_label != graph.vertex_label(d_edge.dst):
        return False
    if q_edge.label != WILDCARD_LABEL and q_edge.label != d_edge.label:
        return False
    return True


class MatchDefinition:
    """Base class bundling the two user functions plus matching options.

    Subclass and override what the target variant needs:

    * :meth:`edge_matcher` — candidate condition (drives DEBI content);
    * :meth:`accept` — final predicate over a complete embedding
      (e.g. the temporal-order check of time-constrained isomorphism);
    * :attr:`injective` — ``True`` enforces distinct data vertices per
      query node (isomorphism), ``False`` allows reuse (homomorphism);
    * :attr:`bind_witnesses` — when ``True`` non-tree constraints are
      bound to explicit witness edges and enumerated (needed when
      :meth:`accept` inspects every query edge's data edge, e.g. the
      temporal variant); when ``False`` they are boolean checks, as in
      the paper's Figure 4.
    * :meth:`enumerate` — replace the whole enumeration strategy
      (the simulation variants do this).
    * :attr:`label_partitioned` — promise that :meth:`edge_matcher`
      rejects any data edge whose label differs from a non-wildcard
      query edge label (true for anything that delegates to
      :func:`default_edge_matcher`, however much it restricts further).
      The engine then fetches candidates from per-label adjacency
      partitions — O(matching edges) instead of O(vertex degree).  Set
      it to ``False`` for a matcher that can accept a data edge whose
      label differs from the query edge's, or labelled candidates would
      be silently missed.
    """

    #: human-readable name used in logs and benchmark tables
    name: str = "custom"
    injective: bool = True
    bind_witnesses: bool = False
    #: edge_matcher implies data-edge label == non-wildcard query-edge label
    label_partitioned: bool = True

    # ------------------------------------------------------------------ filtering
    def edge_matcher(
        self,
        query: QueryGraph,
        graph: DynamicGraph,
        q_edge: QueryEdge,
        d_edge: EdgeRecord,
    ) -> bool:
        """Return True when ``d_edge`` is a candidate match for ``q_edge``."""
        return default_edge_matcher(query, graph, q_edge, d_edge)

    def root_matcher(self, query: QueryGraph, graph: DynamicGraph, root: int, vertex: int) -> bool:
        """Return True when ``vertex`` may be the image of the root query node."""
        label = query.node_label(root)
        return label == WILDCARD_LABEL or label == graph.vertex_label(vertex)

    # ------------------------------------------------------------------ enumeration
    def accept(self, context: "EnumerationContext", embedding: "Embedding") -> bool:
        """Final filter applied to every complete embedding (default: accept)."""
        return True

    def enumerate(self, context: "EnumerationContext", unit: "WorkUnit") -> Iterator["Embedding"]:
        """Produce the embeddings for one work unit.

        The default delegates to the generic backtracking enumerator,
        which is the implementation of the paper's Figure 4 specialised
        by :attr:`injective`, :attr:`bind_witnesses` and :meth:`accept`.
        """
        from repro.core.enumeration import backtracking_enumerate

        yield from backtracking_enumerate(context, unit)


class DefaultMatchDefinition(MatchDefinition):
    """Plain label-based subgraph isomorphism (the paper's running example)."""

    name = "isomorphism"
    injective = True


def __getattr__(name: str):
    """Lazy facade for the multi-query and streaming service layers.

    ``MultiQueryEngine``, ``QueryRegistry`` and ``MnemonicService`` are
    part of the public API surface but live in modules that import this
    one; resolving them lazily keeps the import graph acyclic while
    letting applications write ``from repro.core.api import MnemonicService``.
    """
    if name in ("MultiQueryEngine", "QueryRegistry"):
        from repro.core import registry

        return getattr(registry, name)
    if name == "MnemonicService":
        from repro.core.service import MnemonicService

        return MnemonicService
    if name == "ShardedEngine":
        from repro.core.shard_router import ShardedEngine

        return ShardedEngine
    if name in ("PartitionStrategy", "HashPartitionStrategy", "LabelRangePartitionStrategy"):
        from repro.core import sharding

        return getattr(sharding, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
