"""repro — a reproduction of *Mnemonic: A Parallel Subgraph Matching System
for Streaming Graphs* (Bhattarai & Huang, IPDPS 2022).

The package is organised as the paper's system diagram (Figure 2):

* :mod:`repro.streams` — snapshot generation from edge streams;
* :mod:`repro.graph` — dynamic multigraph storage with edge-id recycling
  and external-memory spill;
* :mod:`repro.query` — query graphs, query trees, matching orders, masks;
* :mod:`repro.core` — DEBI, incremental filtering, parallel enumeration
  and the :class:`~repro.core.engine.MnemonicEngine`;
* :mod:`repro.matchers` — matching variants (isomorphism, homomorphism,
  simulation, time-constrained isomorphism) programmed on the API;
* :mod:`repro.baselines` — the comparison systems of the evaluation
  (CECI, TurboFlux-style, BigJoin-style, Li et al.-style);
* :mod:`repro.datasets` — synthetic NetFlow / LSBench / LANL workloads;
* :mod:`repro.bench` — the measurement harness behind ``benchmarks/``.

Quickstart::

    from repro import MnemonicEngine, QueryGraph, StreamEvent

    query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 1, 1: 2, 2: 3})
    engine = MnemonicEngine(query)
    result = engine.batch_inserts([
        StreamEvent.insert(10, 11, src_label=1, dst_label=2),
        StreamEvent.insert(11, 12, src_label=2, dst_label=3),
    ])
    print(result.positive_embeddings)
"""

from repro.core.api import DefaultMatchDefinition, MatchDefinition
from repro.core.engine import (
    EngineConfig,
    MnemonicEngine,
    RunResult,
    SnapshotResult,
    enumerate_static,
)
from repro.core.parallel import ParallelConfig
from repro.core.registry import MultiQueryEngine, QueryRegistry
from repro.core.results import CollectingSink, Embedding, ResultSet
from repro.core.service import MnemonicService
from repro.core.shard_router import ShardedEngine
from repro.core.sharding import (
    HashPartitionStrategy,
    LabelRangePartitionStrategy,
    PartitionStrategy,
)
from repro.core.supervisor import FaultPolicy
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.storage.config import StorageConfig
from repro.storage.runtime import StorageError
from repro.streams.broker import StreamBroker
from repro.streams.clock import VirtualClock, WallClock
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import StreamEvent
from repro.streams.sources import ReplaySource

__version__ = "1.0.0"

__all__ = [
    "MnemonicEngine",
    "MnemonicService",
    "ShardedEngine",
    "PartitionStrategy",
    "HashPartitionStrategy",
    "LabelRangePartitionStrategy",
    "MultiQueryEngine",
    "QueryRegistry",
    "CollectingSink",
    "EngineConfig",
    "FaultPolicy",
    "ParallelConfig",
    "RunResult",
    "SnapshotResult",
    "enumerate_static",
    "MatchDefinition",
    "DefaultMatchDefinition",
    "Embedding",
    "ResultSet",
    "DynamicGraph",
    "QueryGraph",
    "WILDCARD_LABEL",
    "StreamBroker",
    "StreamConfig",
    "StreamType",
    "StreamEvent",
    "StorageConfig",
    "StorageError",
    "ReplaySource",
    "VirtualClock",
    "WallClock",
    "__version__",
]
