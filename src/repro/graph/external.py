"""External-memory support: FIFO in-memory window + on-disk edge log.

Section IV-A ("External memory support") of the paper: when the search
context is larger than what should be kept resident, Mnemonic keeps only
the most recent ``in_memory_window`` edges in memory.  Older edges — and
their DEBI rows — are appended to a buffer and flushed to disk in
*transactions*, so that the spilled adjacency of a vertex can later be
recovered with a single transactional read (the paper uses LiveGraph-style
transactional edge logs for this).

The reproduction implements the same retention policy on top of plain
append-only segment files.  Each flushed transaction stores, per vertex,
the list of spilled edge records plus their DEBI row masks; an in-memory
directory maps a vertex to the (segment, offset) pairs that contain its
spilled edges.  ``fetch_vertex`` therefore touches exactly the segments
that hold data for that vertex.

Overheads (number of spill transactions, bytes written, fetch latency)
are tracked so Table III can be regenerated.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from collections import OrderedDict, defaultdict
from dataclasses import dataclass

from repro.graph.edge import EdgeRecord
from repro.utils.validation import check_positive


@dataclass
class ExternalStoreStats:
    """Counters used to fill in the Table III overhead columns."""

    spilled_edges: int = 0
    spill_transactions: int = 0
    bytes_written: int = 0
    fetches: int = 0
    fetched_edges: int = 0
    fetch_seconds: float = 0.0
    spill_seconds: float = 0.0

    @property
    def disk_bytes(self) -> int:
        return self.bytes_written


@dataclass
class _SpilledEdge:
    record: EdgeRecord
    debi_mask: int


class ExternalEdgeStore:
    """FIFO retention of edge records with disk spill of the overflow.

    Parameters
    ----------
    in_memory_window:
        Maximum number of edge records kept resident.  When exceeded, the
        oldest records are moved to the spill buffer.
    buffer_capacity:
        Number of buffered records that triggers a flush to disk.
    directory:
        Where segment files are written.  A temporary directory is
        created (and cleaned up by the OS) when omitted.
    """

    def __init__(
        self,
        in_memory_window: int = 100_000,
        buffer_capacity: int = 10_000,
        directory: str | None = None,
    ) -> None:
        check_positive(in_memory_window, "in_memory_window")
        check_positive(buffer_capacity, "buffer_capacity")
        self.in_memory_window = in_memory_window
        self.buffer_capacity = buffer_capacity
        self._dir = directory or tempfile.mkdtemp(prefix="repro-edgelog-")
        os.makedirs(self._dir, exist_ok=True)

        #: edge_id -> _SpilledEdge kept in memory, in insertion (FIFO) order
        self._resident: OrderedDict[int, _SpilledEdge] = OrderedDict()
        #: spill buffer waiting for the next flush
        self._buffer: list[_SpilledEdge] = []
        #: vertex -> list of (segment_path, transaction offset) holding its spilled edges
        self._directory_index: dict[int, list[tuple[str, int]]] = defaultdict(list)
        self._segment_counter = 0
        self.stats = ExternalStoreStats()

    # ------------------------------------------------------------------ ingest
    def append(self, record: EdgeRecord, debi_mask: int = 0) -> None:
        """Retain ``record`` (and its DEBI row) under the FIFO policy."""
        self._resident[record.edge_id] = _SpilledEdge(record, debi_mask)
        self._evict_if_needed()

    def update_mask(self, edge_id: int, debi_mask: int) -> None:
        """Update the retained DEBI row of a resident edge (no-op if spilled)."""
        entry = self._resident.get(edge_id)
        if entry is not None:
            entry.debi_mask = debi_mask

    def _evict_if_needed(self) -> None:
        while len(self._resident) > self.in_memory_window:
            _, entry = self._resident.popitem(last=False)
            self._buffer.append(entry)
            self.stats.spilled_edges += 1
            if len(self._buffer) >= self.buffer_capacity:
                self.flush()

    # ------------------------------------------------------------------ disk
    def flush(self) -> str | None:
        """Write the spill buffer to a new segment file; return its path."""
        if not self._buffer:
            return None
        start = time.perf_counter()
        path = os.path.join(self._dir, f"segment-{self._segment_counter:06d}.log")
        self._segment_counter += 1

        # One "transaction" per source vertex so a vertex's adjacency can be
        # recovered with a single read, mirroring transactional edge logs.
        by_vertex: dict[int, list[_SpilledEdge]] = defaultdict(list)
        for entry in self._buffer:
            by_vertex[entry.record.src].append(entry)

        with open(path, "wb") as fh:
            for offset, (vertex, entries) in enumerate(sorted(by_vertex.items())):
                payload = [
                    (tuple(e.record), e.debi_mask)
                    for e in entries
                ]
                blob = pickle.dumps((vertex, payload), protocol=pickle.HIGHEST_PROTOCOL)
                fh.write(len(blob).to_bytes(8, "little"))
                fh.write(blob)
                self._directory_index[vertex].append((path, offset))
                self.stats.spill_transactions += 1
                self.stats.bytes_written += len(blob) + 8
        self.stats.spill_seconds += time.perf_counter() - start
        self._buffer.clear()
        return path

    def fetch_vertex(self, vertex: int) -> list[tuple[EdgeRecord, int]]:
        """Return all retained edges with source ``vertex`` (resident + spilled)."""
        start = time.perf_counter()
        results: list[tuple[EdgeRecord, int]] = []
        for entry in self._resident.values():
            if entry.record.src == vertex:
                results.append((entry.record, entry.debi_mask))
        for entry in self._buffer:
            if entry.record.src == vertex:
                results.append((entry.record, entry.debi_mask))

        seen_paths: dict[str, list[int]] = defaultdict(list)
        for path, offset in self._directory_index.get(vertex, ()):
            seen_paths[path].append(offset)
        for path, offsets in seen_paths.items():
            wanted = set(offsets)
            with open(path, "rb") as fh:
                offset = 0
                while True:
                    header = fh.read(8)
                    if not header:
                        break
                    size = int.from_bytes(header, "little")
                    blob = fh.read(size)
                    if offset in wanted:
                        v, payload = pickle.loads(blob)
                        for record_tuple, mask in payload:
                            results.append((EdgeRecord(*record_tuple), mask))
                    offset += 1
        self.stats.fetches += 1
        self.stats.fetched_edges += len(results)
        self.stats.fetch_seconds += time.perf_counter() - start
        return results

    # ------------------------------------------------------------------ accounting
    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def spilled_count(self) -> int:
        return self.stats.spilled_edges

    def memory_bytes(self, bytes_per_edge: int = 40) -> int:
        """Approximate resident footprint (records kept in memory)."""
        return (len(self._resident) + len(self._buffer)) * bytes_per_edge

    def close(self) -> None:
        """Flush any pending buffer; segment files are left on disk."""
        self.flush()
