"""Vertex / edge attribute storage addressed by id.

The paper stores vertex and edge attributes in a side structure indexed
by vertex/edge id, separate from the topology (Section II-A).  The
attribute store is what a user-defined ``edge_matcher`` consults when a
match definition involves more than the built-in labels (e.g. ports,
byte counts, user roles).
"""

from __future__ import annotations

from typing import Any, Iterator


class AttributeStore:
    """A collection of named attribute columns addressed by integer id.

    Columns are created lazily on first write.  Missing values read as
    ``default`` (``None`` unless overridden per column).
    """

    def __init__(self) -> None:
        self._columns: dict[str, dict[int, Any]] = {}
        self._defaults: dict[str, Any] = {}

    def define(self, column: str, default: Any = None) -> None:
        """Declare ``column`` with a default value for missing entries."""
        self._columns.setdefault(column, {})
        self._defaults[column] = default

    def set(self, column: str, item_id: int, value: Any) -> None:
        """Set ``column[item_id] = value`` (creates the column if needed)."""
        self._columns.setdefault(column, {})[item_id] = value

    def get(self, column: str, item_id: int, default: Any = None) -> Any:
        """Return ``column[item_id]``, the column default, or ``default``."""
        col = self._columns.get(column)
        if col is None:
            return self._defaults.get(column, default)
        if item_id in col:
            return col[item_id]
        return self._defaults.get(column, default)

    def delete(self, item_id: int) -> None:
        """Drop every attribute of ``item_id`` (used when an id is recycled)."""
        for col in self._columns.values():
            col.pop(item_id, None)

    def columns(self) -> Iterator[str]:
        return iter(self._columns)

    def row(self, item_id: int) -> dict[str, Any]:
        """Return all attributes of ``item_id`` as a dict."""
        out: dict[str, Any] = {}
        for name, col in self._columns.items():
            if item_id in col:
                out[name] = col[item_id]
            elif name in self._defaults:
                out[name] = self._defaults[name]
        return out

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __len__(self) -> int:
        return len(self._columns)
