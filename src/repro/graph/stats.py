"""Counters for edge placeholders, recycling and search-space size.

Figure 17 of the paper compares, over ~90 sliding-window snapshots, the
number of *edge placeholders* (allocated edge/DEBI slots) required with
and without memory reclaiming, against the number of live edges (the
"search space").  :class:`PlaceholderStats` collects exactly those
quantities from the graph store and the engine samples them per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PlaceholderStats:
    """Running counters maintained by :class:`repro.graph.DynamicGraph`."""

    inserts: int = 0
    deletes: int = 0
    recycled: int = 0
    peak_placeholders: int = 0
    peak_live: int = 0
    #: optional per-snapshot samples appended by the engine
    snapshots: list[dict] = field(default_factory=list)

    def record_insert(self, placeholders: int, live: int) -> None:
        self.inserts += 1
        self.peak_placeholders = max(self.peak_placeholders, placeholders)
        self.peak_live = max(self.peak_live, live)

    def record_delete(self, placeholders: int, live: int) -> None:
        self.deletes += 1
        self.peak_placeholders = max(self.peak_placeholders, placeholders)

    def record_recycle(self) -> None:
        self.recycled += 1

    def sample_snapshot(self, snapshot_number: int, placeholders: int, live: int) -> None:
        """Append one Figure-17 style sample."""
        self.snapshots.append(
            {
                "snapshot": snapshot_number,
                "placeholders": placeholders,
                "live_edges": live,
            }
        )

    @property
    def recycle_rate(self) -> float:
        """Fraction of insertions that reused a previously deleted slot."""
        if self.inserts == 0:
            return 0.0
        return self.recycled / self.inserts
