"""Edge value types shared between the graph store, streams and engine."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import NamedTuple


class Endpoint(IntEnum):
    """Which endpoint of a directed edge a query-tree step extends from."""

    SOURCE = 0
    DESTINATION = 1

    def other(self) -> "Endpoint":
        return Endpoint.DESTINATION if self is Endpoint.SOURCE else Endpoint.SOURCE


class EdgeRecord(NamedTuple):
    """An immutable view of a stored data-graph edge instance.

    Attributes
    ----------
    edge_id:
        The unique (possibly recycled) identifier of this edge instance.
    src, dst:
        Endpoint vertex ids.
    label:
        Integer edge label (relationship type / protocol / activity).
    timestamp:
        Event time of the edge; 0.0 for untimed streams.
    """

    edge_id: int
    src: int
    dst: int
    label: int
    timestamp: float

    def endpoint(self, which: Endpoint) -> int:
        """Return the vertex id at ``which`` endpoint."""
        return self.src if which is Endpoint.SOURCE else self.dst

    def reversed(self) -> "EdgeRecord":
        """Return the same edge with endpoints swapped (for undirected use)."""
        return EdgeRecord(self.edge_id, self.dst, self.src, self.label, self.timestamp)


@dataclass(frozen=True)
class EdgeTriple:
    """A (src, dst, label) triple as it appears on the input stream.

    Stream events identify edges by their endpoints and label; the graph
    store resolves a triple to a concrete live ``edge_id`` on deletion.
    """

    src: int
    dst: int
    label: int = 0

    def key(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.label)
