"""Dynamic multigraph storage substrate.

The data graph in Mnemonic is a directed, labelled *multigraph*: several
edge instances may connect the same pair of endpoints (e.g. repeated
NetFlow events) and each instance carries its own identity (``edge_id``),
label, and timestamp.  This package provides:

* :class:`repro.graph.adjacency.DynamicGraph` — the adjacency-list store
  with O(1) amortised insertion, swap-with-last deletion, and edge-id
  recycling (the mechanism behind the paper's non-monotonic index size).
* :class:`repro.graph.attributes.AttributeStore` — per-vertex / per-edge
  attribute columns addressed by id.
* :class:`repro.graph.external.ExternalEdgeStore` — FIFO in-memory window
  backed by an on-disk transactional edge log (Table III experiments).
* :class:`repro.graph.stats.PlaceholderStats` — placeholder / recycling
  counters (Figure 17 experiments).
"""

from repro.graph.adjacency import DynamicGraph
from repro.graph.attributes import AttributeStore
from repro.graph.edge import EdgeRecord, Endpoint
from repro.graph.external import ExternalEdgeStore
from repro.graph.stats import PlaceholderStats

__all__ = [
    "DynamicGraph",
    "AttributeStore",
    "EdgeRecord",
    "Endpoint",
    "ExternalEdgeStore",
    "PlaceholderStats",
]
