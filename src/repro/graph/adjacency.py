"""Dynamic adjacency-list multigraph with label-partitioned candidate storage.

This is the data-graph storage layer described in Section II-A and the
"Memory recycling" paragraph of Section IV-A of the paper, extended with
the label-partitioned layout that makes candidate retrieval proportional
to the number of *matching* edges rather than to vertex degree:

* each vertex keeps its outgoing and incoming edge ids twice — once as a
  combined insertion-ordered list (wildcard scans, ``find_edges``) and
  once partitioned by edge label into growable int64 numpy arrays, so a
  labelled query-tree step fetches only same-label candidates in
  O(matches);
* per-vertex / per-label degrees fall out of the partition sizes, so the
  ``f2``/``f3`` label-degree filters are O(1) lookups;
* each edge *instance* has a unique ``edge_id`` used to address its
  attributes and its DEBI row; the endpoint columns are mirrored into
  flat numpy arrays so a whole candidate partition can be DEBI-filtered
  and endpoint-gathered in one vectorized call;
* when an edge is deleted it is located in its adjacency list and label
  partition, swapped with the last entry and popped (O(degree) locate,
  O(1) removal), and its id is pushed on the free list of its source
  vertex;
* when a new edge is later inserted at that vertex the id is reused,
  which keeps the number of edge placeholders — and therefore the DEBI
  size — from growing monotonically (Figure 17).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.graph.edge import EdgeRecord
from repro.graph.stats import PlaceholderStats
from repro.utils.validation import GraphError

_EMPTY_IDS: list[int] = []
_EMPTY_ARRAY = np.empty(0, dtype=np.int64)


def _coalesce_ranges(indices: Iterable[int]) -> list[tuple[int, int]]:
    """Turn an index collection into sorted half-open ``(start, stop)`` runs."""
    ordered = sorted(indices)
    if not ordered:
        return []
    runs: list[tuple[int, int]] = []
    start = prev = ordered[0]
    for value in ordered[1:]:
        if value == prev + 1:
            prev = value
            continue
        runs.append((start, prev + 1))
        start = prev = value
    runs.append((start, prev + 1))
    return runs


class IntVector:
    """A growable int64 numpy array with amortized append and swap-pop delete.

    The storage unit of one ``(vertex, direction, label)`` adjacency
    partition.  ``view()`` exposes the live prefix as a zero-copy numpy
    slice, which is what the vectorized candidate pipeline consumes.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, capacity: int = 4) -> None:
        self._data = np.empty(max(capacity, 1), dtype=np.int64)
        self._n = 0

    def append(self, value: int) -> None:
        if self._n == self._data.shape[0]:
            grown = np.empty(self._data.shape[0] * 2, dtype=np.int64)
            grown[: self._n] = self._data
            self._data = grown
        self._data[self._n] = value
        self._n += 1

    def extend(self, values) -> None:
        """Bulk append (amortized); ``values`` is any int64-coercible sequence."""
        arr = np.asarray(values, dtype=np.int64)
        needed = self._n + arr.shape[0]
        if needed > self._data.shape[0]:
            capacity = self._data.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n : needed] = arr
        self._n = needed

    def swap_pop(self, value: int) -> bool:
        """Remove one occurrence of ``value`` (swap-with-last); False if absent."""
        live = self._data[: self._n]
        hits = np.nonzero(live == value)[0]
        if hits.shape[0] == 0:
            return False
        self._n -= 1
        live[hits[0]] = self._data[self._n]
        return True

    def view(self) -> np.ndarray:
        """Zero-copy int64 view of the live entries (do not mutate)."""
        return self._data[: self._n]

    def tolist(self) -> list[int]:
        return self._data[: self._n].tolist()

    def __len__(self) -> int:
        return self._n


class DynamicGraph:
    """A directed labelled multigraph supporting streaming updates.

    Parameters
    ----------
    recycle_edge_ids:
        When True (default, the paper's design) edge ids of deleted edges
        are reused for later insertions at the same source vertex.  When
        False every insertion allocates a fresh id; this mode exists to
        reproduce the "without reclaiming" curve of Figure 17.
    track_label_degrees:
        Retained for API compatibility.  Label degrees are now read off
        the per-label partition sizes, so they are O(1) regardless of
        this flag.
    """

    #: dirty-vertex fraction above which a full CSR rebuild beats splicing
    INCREMENTAL_EXPORT_MAX_DIRTY_FRACTION = 0.125

    def __init__(self, recycle_edge_ids: bool = True, track_label_degrees: bool = True) -> None:
        self.recycle_edge_ids = recycle_edge_ids
        self.track_label_degrees = track_label_degrees

        # Edge columns indexed by edge_id.  The Python lists serve the
        # scalar hot paths (EdgeRecord construction, find_edges); the
        # numpy mirrors serve the vectorized endpoint gather.
        self._src: list[int] = []
        self._dst: list[int] = []
        self._label: list[int] = []
        self._timestamp: list[float] = []
        self._alive: list[bool] = []
        self._src_col = np.empty(1024, dtype=np.int64)
        self._dst_col = np.empty(1024, dtype=np.int64)

        # Vertex state.  Combined lists keep insertion order (wildcard
        # pools, find_edges); partitions key edge ids by edge label.
        self._vertex_labels: dict[int, int] = {}
        self._vertex_order: list[int] = []
        self._vertex_position: dict[int, int] = {}
        self._out: dict[int, list[int]] = defaultdict(list)
        self._in: dict[int, list[int]] = defaultdict(list)
        self._out_by_label: dict[int, dict[int, IntVector]] = {}
        self._in_by_label: dict[int, dict[int, IntVector]] = {}

        # Edge-id recycling: free ids keyed by the source vertex that owned them.
        self._free_ids: dict[int, list[int]] = defaultdict(list)
        # Total ids across all free lists: lets the columnar insert path
        # skip the per-event recycling replay when nothing is recyclable.
        self._num_free_ids = 0

        # Resolution of (src, dst, label) triples to live edge ids (multi-edge aware).
        self._triple_index: dict[tuple[int, int, int], list[int]] = defaultdict(list)

        self._num_live_edges = 0
        self.stats = PlaceholderStats()

        # Per-epoch delta journal: everything touched since the last CSR
        # export.  Small batches then splice their changes into the cached
        # export (see export_csr_delta) instead of rebuilding O(V + E)
        # arrays from the Python adjacency structures.
        self._journal_edges: set[int] = set()
        self._journal_vertices: set[int] = set()
        self._csr_cache: "CSRSnapshot | None" = None
        # Monotone export counter: the shared-snapshot writer uses it to
        # detect interloping exports (anything that consumed the journal
        # between two publishes) before trusting a dirty-slice copy.
        self._export_count = 0

    # ------------------------------------------------------------------ pickling
    def __getstate__(self) -> dict:
        """Drop the transient CSR export cache when pickling (checkpoints).

        The cached snapshot is an optimisation keyed to the delta journal;
        a restored graph starts from a clean full-export state.  Everything
        else — including the edge-id free lists, which make replayed
        insertions allocate the same ids the original run used — survives
        the round trip.
        """
        state = self.__dict__.copy()
        state["_csr_cache"] = None
        state["_journal_edges"] = set()
        state["_journal_vertices"] = set()
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("_export_count", 0)
        self.__dict__.update(state)

    # ------------------------------------------------------------------ vertices
    def add_vertex(self, vertex: int, label: int = 0) -> None:
        """Register ``vertex`` with ``label``; later calls may not change the label."""
        existing = self._vertex_labels.get(vertex)
        if existing is None:
            self._vertex_position[vertex] = len(self._vertex_order)
            self._vertex_order.append(vertex)
            self._vertex_labels[vertex] = label
        elif existing != label and label != 0:
            raise GraphError(
                f"vertex {vertex} already has label {existing}, cannot relabel to {label}"
            )

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._vertex_labels

    def vertex_label(self, vertex: int) -> int:
        """Return the label of ``vertex`` (0 for unlabelled/unknown vertices)."""
        return self._vertex_labels.get(vertex, 0)

    def vertices(self) -> Iterator[int]:
        return iter(self._vertex_labels)

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    # ------------------------------------------------------------------ edges
    def add_edge(
        self,
        src: int,
        dst: int,
        label: int = 0,
        timestamp: float = 0.0,
        src_label: int | None = None,
        dst_label: int | None = None,
        edge_id: int | None = None,
    ) -> int:
        """Insert a new edge instance and return its ``edge_id``.

        Parallel edges (same ``src``/``dst``/``label``) are distinct
        instances with distinct ids — this is the multigraph property the
        paper relies on for context-aware matching.

        ``edge_id`` forces the id instead of allocating one: the
        partitioned mutation API.  Engine shards share one global id
        space (a router-level allocator hands out ids, so DEBI rows and
        embedding identities agree across shards); a shard storing only
        part of that space pads the skipped ids with dead placeholder
        rows, exactly like deleted-but-unrecycled edges.
        """
        self.add_vertex(src, src_label if src_label is not None else self.vertex_label(src))
        self.add_vertex(dst, dst_label if dst_label is not None else self.vertex_label(dst))

        if edge_id is None:
            edge_id = self._allocate_id(src)
        elif edge_id < len(self._src) and self._alive[edge_id]:
            raise GraphError(f"edge id {edge_id} is already a live edge")
        else:
            while len(self._src) < edge_id:
                self._src.append(0)
                self._dst.append(0)
                self._label.append(0)
                self._timestamp.append(0.0)
                self._alive.append(False)
        if edge_id == len(self._src):
            self._src.append(src)
            self._dst.append(dst)
            self._label.append(label)
            self._timestamp.append(timestamp)
            self._alive.append(True)
        else:
            self._src[edge_id] = src
            self._dst[edge_id] = dst
            self._label[edge_id] = label
            self._timestamp[edge_id] = timestamp
            self._alive[edge_id] = True
        if edge_id >= self._src_col.shape[0]:
            self._src_col = self._grow_column(self._src_col, edge_id + 1)
            self._dst_col = self._grow_column(self._dst_col, edge_id + 1)
        self._src_col[edge_id] = src
        self._dst_col[edge_id] = dst

        self._out[src].append(edge_id)
        self._in[dst].append(edge_id)
        self._partition(self._out_by_label, src, label).append(edge_id)
        self._partition(self._in_by_label, dst, label).append(edge_id)
        self._triple_index[(src, dst, label)].append(edge_id)
        self._num_live_edges += 1
        self._journal_edges.add(edge_id)
        self._journal_vertices.add(src)
        self._journal_vertices.add(dst)
        self.stats.record_insert(placeholders=len(self._src), live=self._num_live_edges)
        return edge_id

    @staticmethod
    def _grow_column(column: np.ndarray, needed: int) -> np.ndarray:
        grown = np.empty(max(needed, column.shape[0] * 2), dtype=np.int64)
        grown[: column.shape[0]] = column
        return grown

    @staticmethod
    def _partition(by_label: dict[int, dict[int, IntVector]], vertex: int, label: int) -> IntVector:
        partitions = by_label.get(vertex)
        if partitions is None:
            partitions = by_label[vertex] = {}
        vec = partitions.get(label)
        if vec is None:
            vec = partitions[label] = IntVector()
        return vec

    def _allocate_id(self, src: int) -> int:
        if self.recycle_edge_ids:
            free = self._free_ids.get(src)
            if free:
                self.stats.record_recycle()
                self._num_free_ids -= 1
                return free.pop()
        return len(self._src)

    def delete_edge(self, edge_id: int) -> EdgeRecord:
        """Delete the edge instance ``edge_id`` and return its last record."""
        record = self.edge(edge_id)
        src, dst, label = record.src, record.dst, record.label

        self._remove_from_list(self._out[src], edge_id)
        self._remove_from_list(self._in[dst], edge_id)
        if not self._out_by_label[src][label].swap_pop(edge_id):
            raise GraphError(f"edge {edge_id} missing from out-label partition")
        if not self._in_by_label[dst][label].swap_pop(edge_id):
            raise GraphError(f"edge {edge_id} missing from in-label partition")
        self._remove_from_list(self._triple_index[(src, dst, label)], edge_id)
        if not self._triple_index[(src, dst, label)]:
            del self._triple_index[(src, dst, label)]

        self._alive[edge_id] = False
        self._num_live_edges -= 1
        if self.recycle_edge_ids:
            self._free_ids[src].append(edge_id)
            self._num_free_ids += 1
        self._journal_edges.add(edge_id)
        self._journal_vertices.add(src)
        self._journal_vertices.add(dst)
        self.stats.record_delete(placeholders=len(self._src), live=self._num_live_edges)
        return record

    def delete_edge_instance(self, src: int, dst: int, label: int = 0) -> EdgeRecord:
        """Delete the most recently inserted live edge matching the triple.

        Stream deletions are expressed as triples (the paper negates the
        endpoints on the wire); this resolves the triple to a concrete
        edge instance.
        """
        ids = self._triple_index.get((src, dst, label))
        if not ids:
            raise GraphError(f"no live edge ({src}, {dst}, {label}) to delete")
        return self.delete_edge(ids[-1])

    @staticmethod
    def _remove_from_list(lst: list[int], edge_id: int) -> None:
        # Swap-with-last removal, as described in the paper's memory
        # recycling paragraph: O(position) to find, O(1) to remove.
        try:
            idx = lst.index(edge_id)
        except ValueError as exc:
            raise GraphError(f"edge {edge_id} not present in adjacency list") from exc
        lst[idx] = lst[-1]
        lst.pop()

    # ------------------------------------------------------------------ accessors
    def edge(self, edge_id: int) -> EdgeRecord:
        """Return the :class:`EdgeRecord` for a *live* ``edge_id``."""
        if not self.is_alive(edge_id):
            raise GraphError(f"edge id {edge_id} is not a live edge")
        return EdgeRecord(
            edge_id,
            self._src[edge_id],
            self._dst[edge_id],
            self._label[edge_id],
            self._timestamp[edge_id],
        )

    def is_alive(self, edge_id: int) -> bool:
        return 0 <= edge_id < len(self._src) and self._alive[edge_id]

    def out_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges leaving ``vertex`` (do not mutate)."""
        return self._out.get(vertex, [])

    def in_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges entering ``vertex`` (do not mutate)."""
        return self._in.get(vertex, [])

    def out_edges_with_label(self, vertex: int, label: int) -> np.ndarray:
        """Live out-edges of ``vertex`` carrying ``label`` (zero-copy int64 view)."""
        partitions = self._out_by_label.get(vertex)
        if partitions is None:
            return _EMPTY_ARRAY
        vec = partitions.get(label)
        return _EMPTY_ARRAY if vec is None else vec.view()

    def in_edges_with_label(self, vertex: int, label: int) -> np.ndarray:
        """Live in-edges of ``vertex`` carrying ``label`` (zero-copy int64 view)."""
        partitions = self._in_by_label.get(vertex)
        if partitions is None:
            return _EMPTY_ARRAY
        vec = partitions.get(label)
        return _EMPTY_ARRAY if vec is None else vec.view()

    def candidate_pool(self, vertex: int, out: bool, label: int | None = None):
        """The candidate edge pool for one extension step.

        ``label=None`` (wildcard) returns the combined insertion-ordered
        list; a concrete label returns the zero-copy partition view, so a
        labelled step touches O(matching edges) instead of O(degree).
        """
        if label is None:
            return (self._out if out else self._in).get(vertex, _EMPTY_IDS)
        if out:
            return self.out_edges_with_label(vertex, label)
        return self.in_edges_with_label(vertex, label)

    def endpoint_array(self, edge_ids: np.ndarray, take_dst: bool) -> np.ndarray:
        """Vectorized endpoint gather: dst (or src) vertex per edge id."""
        column = self._dst_col if take_dst else self._src_col
        return column[edge_ids]

    def endpoint_list(self, edge_ids, take_dst: bool) -> list[int]:
        """Scalar endpoint gather for small candidate lists."""
        column = self._dst if take_dst else self._src
        return [column[e] for e in edge_ids]

    def edge_labels(self, edge_ids) -> np.ndarray:
        """Edge-label gather for an id array, without building records."""
        lab = self._label
        ids = edge_ids.tolist() if hasattr(edge_ids, "tolist") else edge_ids
        return np.fromiter((lab[e] for e in ids), dtype=np.int64, count=len(ids))

    def incident_edges(self, vertex: int) -> Iterator[int]:
        """All live edge ids touching ``vertex`` (out first, then in)."""
        yield from self.out_edges(vertex)
        yield from self.in_edges(vertex)

    def out_degree(self, vertex: int) -> int:
        return len(self._out.get(vertex, ()))

    def in_degree(self, vertex: int) -> int:
        return len(self._in.get(vertex, ()))

    def degree(self, vertex: int) -> int:
        return self.out_degree(vertex) + self.in_degree(vertex)

    def out_label_degree(self, vertex: int, label: int) -> int:
        """Number of live out-edges of ``vertex`` carrying ``label`` (O(1))."""
        partitions = self._out_by_label.get(vertex)
        if partitions is None:
            return 0
        vec = partitions.get(label)
        return 0 if vec is None else len(vec)

    def in_label_degree(self, vertex: int, label: int) -> int:
        """Number of live in-edges of ``vertex`` carrying ``label`` (O(1))."""
        partitions = self._in_by_label.get(vertex)
        if partitions is None:
            return 0
        vec = partitions.get(label)
        return 0 if vec is None else len(vec)

    def edges(self) -> Iterator[EdgeRecord]:
        """Iterate over all live edge records."""
        for edge_id in range(len(self._src)):
            if self._alive[edge_id]:
                yield EdgeRecord(
                    edge_id,
                    self._src[edge_id],
                    self._dst[edge_id],
                    self._label[edge_id],
                    self._timestamp[edge_id],
                )

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        """Return live edge ids from ``src`` to ``dst`` (optionally with ``label``)."""
        if label is not None:
            return list(self._triple_index.get((src, dst, label), ()))
        return [e for e in self._out.get(src, ()) if self._dst[e] == dst]

    @property
    def num_edges(self) -> int:
        """Number of currently live edge instances."""
        return self._num_live_edges

    @property
    def num_placeholders(self) -> int:
        """Number of edge slots ever allocated (live + dead, i.e. DEBI rows)."""
        return len(self._src)

    # ------------------------------------------------------------------ bulk helpers
    def apply_insert_columns(
        self,
        src,
        dst,
        label=None,
        timestamp=None,
        src_label=None,
        dst_label=None,
        edge_ids=None,
    ) -> list[int]:
        """Insert a whole batch from contiguous columns; returns the edge ids.

        The columnar counterpart of calling :meth:`add_edge` per event.
        Columns are int64 (``timestamp`` float64) arrays of equal length;
        missing columns default to zeros.  The resulting graph state —
        including the **edge-id sequence** — is bit-identical to the
        per-edge path: the per-source LIFO free-list replay below hands
        out exactly the ids :meth:`_allocate_id` would, and fresh ids are
        consecutive, which is what lets the fresh majority of a batch be
        appended with one bulk extend per column.

        ``edge_ids`` forces the ids (the sharded path, where a router-level
        allocator owns the id space); forced ids follow the same pad /
        overwrite / liveness rules as :meth:`add_edge`.
        """
        src_arr = np.asarray(src, dtype=np.int64)
        n = int(src_arr.shape[0])
        if n == 0:
            return []
        dst_arr = np.asarray(dst, dtype=np.int64)
        label_arr = (
            np.zeros(n, dtype=np.int64) if label is None
            else np.asarray(label, dtype=np.int64)
        )
        ts_arr = (
            np.zeros(n, dtype=np.float64) if timestamp is None
            else np.asarray(timestamp, dtype=np.float64)
        )
        slab_arr = (
            np.zeros(n, dtype=np.int64) if src_label is None
            else np.asarray(src_label, dtype=np.int64)
        )
        dlab_arr = (
            np.zeros(n, dtype=np.int64) if dst_label is None
            else np.asarray(dst_label, dtype=np.int64)
        )

        src_list = src_arr.tolist()
        dst_list = dst_arr.tolist()
        label_list = label_arr.tolist()
        ts_list = ts_arr.tolist()

        # -- vertices (same per-event src-then-dst order and relabel rules
        #    as add_vertex, so _vertex_order comes out identical)
        labels = self._vertex_labels
        order = self._vertex_order
        position = self._vertex_position
        slab_list = slab_arr.tolist()
        dlab_list = dlab_arr.tolist()
        # Steady-state fast path: every endpoint already registered.  The
        # per-event loop then only *checks* labels, never mutates, so the
        # whole pass collapses to one vectorized conflict test per batch
        # (falling back to the loop to raise the per-event error on a hit).
        uniq_v, inverse = np.unique(
            np.concatenate([src_arr, dst_arr]), return_inverse=True
        )
        known = [labels.get(v) for v in uniq_v.tolist()]
        if None not in known:
            existing_ev = np.asarray(known, dtype=np.int64)[inverse]
            ev_lab = np.concatenate([slab_arr, dlab_arr])
            conflicts = bool(((ev_lab != 0) & (existing_ev != ev_lab)).any())
        else:
            conflicts = True  # new vertices: take the registering loop
        if conflicts:
            for i in range(n):
                for vertex, lab in (
                    (src_list[i], slab_list[i]),
                    (dst_list[i], dlab_list[i]),
                ):
                    existing = labels.get(vertex)
                    if existing is None:
                        position[vertex] = len(order)
                        order.append(vertex)
                        labels[vertex] = lab
                    elif existing != lab and lab != 0:
                        raise GraphError(
                            f"vertex {vertex} already has label {existing}, "
                            f"cannot relabel to {lab}"
                        )

        # -- edge-id assignment + edge columns
        old_len = len(self._src)
        stats = self.stats
        if edge_ids is not None:
            ids_arr = np.asarray(edge_ids, dtype=np.int64)
            ids_list = ids_arr.tolist()
            # forced ids (shard path): replay add_edge's pad/overwrite rules
            # event by event — gaps and overwrites are order-sensitive
            for i, eid in enumerate(ids_list):
                if eid < len(self._src) and self._alive[eid]:
                    raise GraphError(f"edge id {eid} is already a live edge")
                while len(self._src) < eid:
                    self._src.append(0)
                    self._dst.append(0)
                    self._label.append(0)
                    self._timestamp.append(0.0)
                    self._alive.append(False)
                if eid == len(self._src):
                    self._src.append(src_list[i])
                    self._dst.append(dst_list[i])
                    self._label.append(label_list[i])
                    self._timestamp.append(ts_list[i])
                    self._alive.append(True)
                else:
                    self._src[eid] = src_list[i]
                    self._dst[eid] = dst_list[i]
                    self._label[eid] = label_list[i]
                    self._timestamp[eid] = ts_list[i]
                    self._alive[eid] = True
        else:
            # replay _allocate_id exactly: per-source LIFO recycling first,
            # then consecutive fresh ids starting at the current length
            ids_arr = np.empty(n, dtype=np.int64)
            next_id = old_len
            num_recycled = 0
            if self.recycle_edge_ids and self._num_free_ids > 0:
                free_ids = self._free_ids
                for i, s in enumerate(src_list):
                    free = free_ids.get(s)
                    if free:
                        ids_arr[i] = free.pop()
                        stats.record_recycle()
                        num_recycled += 1
                    else:
                        ids_arr[i] = next_id
                        next_id += 1
                self._num_free_ids -= num_recycled
            else:
                ids_arr[:] = np.arange(old_len, old_len + n, dtype=np.int64)
                next_id = old_len + n
            ids_list = ids_arr.tolist()
            if num_recycled == 0:
                self._src.extend(src_list)
                self._dst.extend(dst_list)
                self._label.extend(label_list)
                self._timestamp.extend(ts_list)
                self._alive.extend([True] * n)
            else:
                fresh = (ids_arr >= old_len).tolist()
                self._src.extend(
                    [src_list[i] for i in range(n) if fresh[i]]
                )
                self._dst.extend(
                    [dst_list[i] for i in range(n) if fresh[i]]
                )
                self._label.extend(
                    [label_list[i] for i in range(n) if fresh[i]]
                )
                self._timestamp.extend(
                    [ts_list[i] for i in range(n) if fresh[i]]
                )
                self._alive.extend([True] * (n - num_recycled))
                for i in range(n):
                    if fresh[i]:
                        continue
                    eid = ids_list[i]
                    self._src[eid] = src_list[i]
                    self._dst[eid] = dst_list[i]
                    self._label[eid] = label_list[i]
                    self._timestamp[eid] = ts_list[i]
                    self._alive[eid] = True

        # -- numpy endpoint mirrors: grow once, scatter once
        max_id = int(ids_arr.max())
        if max_id >= self._src_col.shape[0]:
            self._src_col = self._grow_column(self._src_col, max_id + 1)
            self._dst_col = self._grow_column(self._dst_col, max_id + 1)
        self._src_col[ids_arr] = src_arr
        self._dst_col[ids_arr] = dst_arr

        # -- adjacency: one tight pass, everything hoisted.  Streaming
        #    batches rarely repeat a (vertex, label) pair often enough for
        #    group-then-extend to pay for building the groups, so this
        #    appends straight into the target structures — the same five
        #    appends add_edge performs, shorn of its per-event overhead
        #    (id allocation, stats, journal and column scatter all happen
        #    in bulk above/below).
        out_adj = self._out
        in_adj = self._in
        out_by_label = self._out_by_label
        in_by_label = self._in_by_label
        triple_index = self._triple_index
        for eid, s, d, lb in zip(ids_list, src_list, dst_list, label_list):
            out_adj[s].append(eid)
            in_adj[d].append(eid)
            parts = out_by_label.get(s)
            if parts is None:
                parts = out_by_label[s] = {}
            vec = parts.get(lb)
            if vec is None:
                vec = parts[lb] = IntVector()
            vec.append(eid)
            parts = in_by_label.get(d)
            if parts is None:
                parts = in_by_label[d] = {}
            vec = parts.get(lb)
            if vec is None:
                vec = parts[lb] = IntVector()
            vec.append(eid)
            triple_index[(s, d, lb)].append(eid)

        # -- accounting (bulk-equivalent to the per-event record_insert calls:
        #    placeholders and live counts grow monotonically within an insert
        #    batch, so the running peak maxes equal the final-value maxes)
        self._num_live_edges += n
        self._journal_edges.update(ids_list)
        self._journal_vertices.update(src_list)
        self._journal_vertices.update(dst_list)
        stats.inserts += n
        stats.peak_placeholders = max(stats.peak_placeholders, len(self._src))
        stats.peak_live = max(stats.peak_live, self._num_live_edges)
        return ids_list

    def apply_delete_columns(self, edge_ids) -> list[EdgeRecord]:
        """Delete a batch of edge ids (in order) and return their records.

        Deletion is inherently order-sensitive — swap-pop positions and
        the per-source free-list order both depend on the event sequence —
        so this delegates to :meth:`delete_edge` per id; the batch win on
        the delete side lives in the bulk DEBI mask capture / row clears
        that the pipeline performs around this call.
        """
        ids = np.asarray(edge_ids, dtype=np.int64)
        return [self.delete_edge(eid) for eid in ids.tolist()]

    def apply_insertions(self, triples: Iterable[tuple]) -> list[int]:
        """Insert many edges; each item is (src, dst, label[, timestamp[, src_label, dst_label]]).

        .. deprecated::
            Thin shim over :meth:`apply_insert_columns`, kept for callers
            that still hold per-event tuples.  New code should decode the
            batch into columns once (``EventColumns``) and call the
            columnar API directly.
        """
        rows = [tuple(item) for item in triples]
        n = len(rows)
        if n == 0:
            return []
        src = np.fromiter((r[0] for r in rows), dtype=np.int64, count=n)
        dst = np.fromiter((r[1] for r in rows), dtype=np.int64, count=n)
        label = np.fromiter(
            (r[2] if len(r) > 2 else 0 for r in rows), dtype=np.int64, count=n
        )
        timestamp = np.fromiter(
            (r[3] if len(r) > 3 else 0.0 for r in rows), dtype=np.float64, count=n
        )
        src_label = np.fromiter(
            (r[4] if len(r) > 4 else 0 for r in rows), dtype=np.int64, count=n
        )
        dst_label = np.fromiter(
            (r[5] if len(r) > 5 else 0 for r in rows), dtype=np.int64, count=n
        )
        return self.apply_insert_columns(
            src, dst, label, timestamp, src_label, dst_label
        )

    def copy(self) -> "DynamicGraph":
        """Deep copy of the live graph (dead placeholders are preserved)."""
        clone = DynamicGraph(
            recycle_edge_ids=self.recycle_edge_ids,
            track_label_degrees=self.track_label_degrees,
        )
        clone._src = list(self._src)
        clone._dst = list(self._dst)
        clone._label = list(self._label)
        clone._timestamp = list(self._timestamp)
        clone._alive = list(self._alive)
        clone._src_col = self._src_col.copy()
        clone._dst_col = self._dst_col.copy()
        clone._vertex_labels = dict(self._vertex_labels)
        clone._vertex_order = list(self._vertex_order)
        clone._vertex_position = dict(self._vertex_position)
        clone._out = defaultdict(list, {k: list(v) for k, v in self._out.items()})
        clone._in = defaultdict(list, {k: list(v) for k, v in self._in.items()})
        for source, target in (
            (self._out_by_label, clone._out_by_label),
            (self._in_by_label, clone._in_by_label),
        ):
            for vertex, partitions in source.items():
                copied = target[vertex] = {}
                for label, vec in partitions.items():
                    fresh = IntVector(capacity=max(len(vec), 1))
                    fresh._data[: len(vec)] = vec.view()
                    fresh._n = len(vec)
                    copied[label] = fresh
        clone._free_ids = defaultdict(list, {k: list(v) for k, v in self._free_ids.items()})
        clone._num_free_ids = self._num_free_ids
        clone._triple_index = defaultdict(list, {k: list(v) for k, v in self._triple_index.items()})
        clone._num_live_edges = self._num_live_edges
        return clone

    # ------------------------------------------------------------------ flat-array export
    def export_csr(self) -> "CSRSnapshot":
        """Export the live graph as flat CSR numpy arrays.

        The arrays are the transport format of the shared-memory parallel
        backend (see :mod:`repro.core.shared_snapshot`): they can be copied
        into a ``multiprocessing.shared_memory`` segment with one memcpy
        each and re-attached zero-copy in worker processes, where
        :class:`CSRGraphView` turns them back into the read API of this
        class.  Two layouts ship side by side so that a view enumerates
        candidates in exactly the same order as the live graph:

        * the combined CSR (``out_indptr``/``out_indices`` and the ``in_``
          pair) preserves adjacency-list insertion order (wildcard pools);
        * the label-partitioned CSR groups each vertex's edge ids by edge
          label in partition order: ``*_group_vptr`` maps a vertex to its
          range of ``(label, slice)`` groups, ``*_group_labels`` /
          ``*_group_indptr`` describe each group, and ``*_label_indices``
          holds the edge ids (labelled pools).

        The export is cached and the delta journal reset, so a following
        :meth:`export_csr_delta` only has to splice in what changed.
        """
        vertex_ids = self._vertex_order
        num_vertices = len(vertex_ids)

        def build_csr(adj: dict[int, list[int]]) -> tuple[np.ndarray, np.ndarray]:
            indptr = np.zeros(num_vertices + 1, dtype=np.int64)
            for i, vid in enumerate(vertex_ids):
                indptr[i + 1] = indptr[i] + len(adj.get(vid, ()))
            indices = np.fromiter(
                (eid for vid in vertex_ids for eid in adj.get(vid, ())),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            return indptr, indices

        def build_label_csr(
            by_label: dict[int, dict[int, IntVector]],
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
            group_vptr = np.zeros(num_vertices + 1, dtype=np.int64)
            group_labels: list[int] = []
            group_sizes: list[int] = []
            chunks: list[np.ndarray] = []
            for i, vid in enumerate(vertex_ids):
                partitions = by_label.get(vid)
                if partitions:
                    for label, vec in partitions.items():
                        if len(vec) == 0:
                            continue
                        group_labels.append(label)
                        group_sizes.append(len(vec))
                        chunks.append(vec.view())
                group_vptr[i + 1] = len(group_labels)
            group_indptr = np.zeros(len(group_labels) + 1, dtype=np.int64)
            np.cumsum(group_sizes, out=group_indptr[1:])
            indices = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
            return (
                group_vptr,
                np.array(group_labels, dtype=np.int64),
                group_indptr,
                indices,
            )

        out_indptr, out_indices = build_csr(self._out)
        in_indptr, in_indices = build_csr(self._in)
        out_group_vptr, out_group_labels, out_group_indptr, out_label_indices = (
            build_label_csr(self._out_by_label)
        )
        in_group_vptr, in_group_labels, in_group_indptr, in_label_indices = (
            build_label_csr(self._in_by_label)
        )
        self._export_count += 1
        snapshot = CSRSnapshot(
            vertex_ids=np.array(vertex_ids, dtype=np.int64),
            vertex_labels=np.fromiter(
                self._vertex_labels.values(), dtype=np.int64, count=num_vertices
            ),
            out_indptr=out_indptr,
            out_indices=out_indices,
            in_indptr=in_indptr,
            in_indices=in_indices,
            out_group_vptr=out_group_vptr,
            out_group_labels=out_group_labels,
            out_group_indptr=out_group_indptr,
            out_label_indices=out_label_indices,
            in_group_vptr=in_group_vptr,
            in_group_labels=in_group_labels,
            in_group_indptr=in_group_indptr,
            in_label_indices=in_label_indices,
            edge_src=self._src_col[: len(self._src)].copy(),
            edge_dst=self._dst_col[: len(self._dst)].copy(),
            edge_label=np.array(self._label, dtype=np.int64),
            edge_timestamp=np.array(self._timestamp, dtype=np.float64),
            edge_alive=np.array(self._alive, dtype=np.uint8),
            num_live_edges=self._num_live_edges,
        )
        self._csr_cache = snapshot
        self._journal_edges.clear()
        self._journal_vertices.clear()
        return snapshot

    def export_csr_delta(self) -> "CSRSnapshot":
        """Export the live graph, splicing small deltas into the cached export.

        The delta journal records every edge id and endpoint vertex
        touched since the last export.  When the dirty-vertex set is a
        small fraction of the graph the cached arrays are patched —
        unchanged per-vertex slices are block-copied (memcpy) and only
        the dirty vertices' adjacency is rebuilt from the Python
        structures — instead of the full O(V + E) Python-loop rebuild of
        :meth:`export_csr`.  Falls back to the full rebuild when there is
        no cache or the batch touched too much of the graph.  The result
        is always element-identical to :meth:`export_csr`.
        """
        prev = self._csr_cache
        num_vertices = len(self._vertex_order)
        if (
            prev is None
            or num_vertices == 0
            or len(self._journal_vertices)
            > num_vertices * self.INCREMENTAL_EXPORT_MAX_DIRTY_FRACTION
        ):
            return self.export_csr()
        snapshot = self._splice_csr(prev)
        self._export_count += 1
        self._csr_cache = snapshot
        self._journal_edges.clear()
        self._journal_vertices.clear()
        return snapshot

    @property
    def export_count(self) -> int:
        """Number of CSR exports performed (full or spliced) over this graph's life."""
        return self._export_count

    def _splice_csr(self, prev: "CSRSnapshot") -> "CSRSnapshot":
        """Build a fresh :class:`CSRSnapshot` by patching ``prev`` with the journal."""
        order = self._vertex_order
        num_vertices = len(order)
        prev_v = prev.vertex_ids.shape[0]

        # Vertices are append-only (never relabelled, never removed), so
        # the previous vertex arrays are a prefix of the new ones.
        if num_vertices == prev_v:
            vertex_ids = prev.vertex_ids
            vertex_labels = prev.vertex_labels
        else:
            tail = order[prev_v:]
            vertex_ids = np.concatenate(
                [prev.vertex_ids, np.array(tail, dtype=np.int64)]
            )
            vertex_labels = np.concatenate(
                [
                    prev.vertex_labels,
                    np.array([self._vertex_labels[v] for v in tail], dtype=np.int64),
                ]
            )

        position = self._vertex_position
        dirty_pos = sorted(
            p for p in (position[v] for v in self._journal_vertices) if p < prev_v
        )

        out_indptr, out_indices = self._splice_combined(
            self._out, prev.out_indptr, prev.out_indices, dirty_pos, prev_v
        )
        in_indptr, in_indices = self._splice_combined(
            self._in, prev.in_indptr, prev.in_indices, dirty_pos, prev_v
        )
        out_label = self._splice_label_csr(
            self._out_by_label,
            prev.out_group_vptr,
            prev.out_group_labels,
            prev.out_group_indptr,
            prev.out_label_indices,
            dirty_pos,
            prev_v,
        )
        in_label = self._splice_label_csr(
            self._in_by_label,
            prev.in_group_vptr,
            prev.in_group_labels,
            prev.in_group_indptr,
            prev.in_label_indices,
            dirty_pos,
            prev_v,
        )

        prev_n = prev.edge_src.shape[0]
        n = len(self._src)
        dirty_old = [e for e in self._journal_edges if e < prev_n]
        edge_src = self._patch_numpy_column(prev.edge_src, self._src_col, n, dirty_old)
        edge_dst = self._patch_numpy_column(prev.edge_dst, self._dst_col, n, dirty_old)
        edge_label = self._patch_list_column(
            prev.edge_label, self._label, n, dirty_old, np.int64
        )
        edge_timestamp = self._patch_list_column(
            prev.edge_timestamp, self._timestamp, n, dirty_old, np.float64
        )
        edge_alive = self._patch_list_column(
            prev.edge_alive, self._alive, n, dirty_old, np.uint8
        )

        # Dirty-slice spec for the shared-snapshot writer.  Everything the
        # splice rebuilt lives at or after the first dirty vertex position
        # (per-array suffixes); edge columns change only at patched old ids
        # plus the appended tail.  Conservative supersets are always safe.
        first_dirty = dirty_pos[0] if dirty_pos else prev_v

        def suffix(start, stop) -> list[tuple[int, int]]:
            start, stop = int(start), int(stop)
            return [(start, stop)] if start < stop else []

        edge_ranges = _coalesce_ranges(dirty_old)
        if n > prev_n:
            edge_ranges.append((prev_n, n))
        out_g0 = int(out_label[0][first_dirty])
        in_g0 = int(in_label[0][first_dirty])
        dirty_spec: dict = {
            "vertex_ids": suffix(prev_v, num_vertices),
            "vertex_labels": suffix(prev_v, num_vertices),
            "out_indptr": suffix(first_dirty, num_vertices + 1),
            "in_indptr": suffix(first_dirty, num_vertices + 1),
            "out_indices": suffix(out_indptr[first_dirty], out_indices.shape[0]),
            "in_indices": suffix(in_indptr[first_dirty], in_indices.shape[0]),
            "out_group_vptr": suffix(first_dirty, num_vertices + 1),
            "out_group_labels": suffix(out_g0, out_label[1].shape[0]),
            "out_group_indptr": suffix(out_g0, out_label[2].shape[0]),
            "out_label_indices": suffix(
                out_label[2][out_g0], out_label[3].shape[0]
            ),
            "in_group_vptr": suffix(first_dirty, num_vertices + 1),
            "in_group_labels": suffix(in_g0, in_label[1].shape[0]),
            "in_group_indptr": suffix(in_g0, in_label[2].shape[0]),
            "in_label_indices": suffix(in_label[2][in_g0], in_label[3].shape[0]),
            "edge_src": edge_ranges,
            "edge_dst": edge_ranges,
            "edge_label": edge_ranges,
            "edge_timestamp": edge_ranges,
            "edge_alive": edge_ranges,
        }

        return CSRSnapshot(
            vertex_ids=vertex_ids,
            vertex_labels=vertex_labels,
            out_indptr=out_indptr,
            out_indices=out_indices,
            in_indptr=in_indptr,
            in_indices=in_indices,
            out_group_vptr=out_label[0],
            out_group_labels=out_label[1],
            out_group_indptr=out_label[2],
            out_label_indices=out_label[3],
            in_group_vptr=in_label[0],
            in_group_labels=in_label[1],
            in_group_indptr=in_label[2],
            in_label_indices=in_label[3],
            edge_src=edge_src,
            edge_dst=edge_dst,
            edge_label=edge_label,
            edge_timestamp=edge_timestamp,
            edge_alive=edge_alive,
            num_live_edges=self._num_live_edges,
            dirty=dirty_spec,
        )

    def _splice_combined(
        self,
        adj: dict[int, list[int]],
        prev_indptr: np.ndarray,
        prev_indices: np.ndarray,
        dirty_pos: list[int],
        prev_v: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Splice one combined CSR: dirty rows rebuilt, clean runs memcpy'd."""
        order = self._vertex_order
        num_vertices = len(order)
        lengths = np.diff(prev_indptr)
        if dirty_pos:
            lengths = lengths.copy()
            lengths[dirty_pos] = [
                len(adj.get(order[p], _EMPTY_IDS)) for p in dirty_pos
            ]
        if num_vertices > prev_v:
            lengths = np.concatenate(
                [
                    lengths,
                    np.array(
                        [len(adj.get(v, _EMPTY_IDS)) for v in order[prev_v:]],
                        dtype=np.int64,
                    ),
                ]
            )
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        run_start = 0
        for p in dirty_pos:
            if p > run_start:
                indices[indptr[run_start] : indptr[p]] = prev_indices[
                    prev_indptr[run_start] : prev_indptr[p]
                ]
            row = adj.get(order[p], _EMPTY_IDS)
            if row:
                indices[indptr[p] : indptr[p + 1]] = row
            run_start = p + 1
        if prev_v > run_start:
            indices[indptr[run_start] : indptr[prev_v]] = prev_indices[
                prev_indptr[run_start] : prev_indptr[prev_v]
            ]
        for i in range(prev_v, num_vertices):
            row = adj.get(order[i], _EMPTY_IDS)
            if row:
                indices[indptr[i] : indptr[i + 1]] = row
        return indptr, indices

    def _splice_label_csr(
        self,
        by_label: dict[int, dict[int, IntVector]],
        prev_gvptr: np.ndarray,
        prev_glabels: np.ndarray,
        prev_gindptr: np.ndarray,
        prev_indices: np.ndarray,
        dirty_pos: list[int],
        prev_v: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Splice one label-partitioned CSR at (vertex, label)-group granularity."""
        order = self._vertex_order
        num_vertices = len(order)

        def vertex_groups(vertex: int) -> tuple[list[int], list[IntVector]]:
            partitions = by_label.get(vertex)
            if not partitions:
                return [], []
            labels: list[int] = []
            vecs: list[IntVector] = []
            for label, vec in partitions.items():
                if len(vec):
                    labels.append(label)
                    vecs.append(vec)
            return labels, vecs

        gcounts = np.diff(prev_gvptr)
        prev_gsizes = np.diff(prev_gindptr)
        dirty_groups: dict[int, tuple[list[int], list[IntVector]]] = {}
        if dirty_pos:
            gcounts = gcounts.copy()
            for p in dirty_pos:
                groups = vertex_groups(order[p])
                dirty_groups[p] = groups
                gcounts[p] = len(groups[0])
        tail_groups = [vertex_groups(v) for v in order[prev_v:]]
        if tail_groups:
            gcounts = np.concatenate(
                [
                    gcounts,
                    np.array([len(labels) for labels, _ in tail_groups], dtype=np.int64),
                ]
            )
        gvptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(gcounts, out=gvptr[1:])
        total_groups = int(gvptr[-1])
        glabels = np.empty(total_groups, dtype=np.int64)
        gsizes = np.empty(total_groups, dtype=np.int64)

        def fill_vertex_groups(p: int, groups: tuple[list[int], list[IntVector]]) -> None:
            labels, vecs = groups
            g0 = int(gvptr[p])
            for j, (label, vec) in enumerate(zip(labels, vecs)):
                glabels[g0 + j] = label
                gsizes[g0 + j] = len(vec)

        run_start = 0
        for p in dirty_pos:
            if p > run_start:
                glabels[gvptr[run_start] : gvptr[p]] = prev_glabels[
                    prev_gvptr[run_start] : prev_gvptr[p]
                ]
                gsizes[gvptr[run_start] : gvptr[p]] = prev_gsizes[
                    prev_gvptr[run_start] : prev_gvptr[p]
                ]
            fill_vertex_groups(p, dirty_groups[p])
            run_start = p + 1
        if prev_v > run_start:
            glabels[gvptr[run_start] : gvptr[prev_v]] = prev_glabels[
                prev_gvptr[run_start] : prev_gvptr[prev_v]
            ]
            gsizes[gvptr[run_start] : gvptr[prev_v]] = prev_gsizes[
                prev_gvptr[run_start] : prev_gvptr[prev_v]
            ]
        for i, groups in enumerate(tail_groups):
            fill_vertex_groups(prev_v + i, groups)

        gindptr = np.zeros(total_groups + 1, dtype=np.int64)
        np.cumsum(gsizes, out=gindptr[1:])
        indices = np.empty(int(gindptr[-1]), dtype=np.int64)

        def fill_vertex_indices(p: int, groups: tuple[list[int], list[IntVector]]) -> None:
            _, vecs = groups
            g0 = int(gvptr[p])
            for j, vec in enumerate(vecs):
                indices[gindptr[g0 + j] : gindptr[g0 + j + 1]] = vec.view()

        run_start = 0
        for p in dirty_pos:
            if p > run_start:
                src0 = prev_gindptr[prev_gvptr[run_start]]
                src1 = prev_gindptr[prev_gvptr[p]]
                dst0 = gindptr[gvptr[run_start]]
                indices[dst0 : dst0 + (src1 - src0)] = prev_indices[src0:src1]
            fill_vertex_indices(p, dirty_groups[p])
            run_start = p + 1
        if prev_v > run_start:
            src0 = prev_gindptr[prev_gvptr[run_start]]
            src1 = prev_gindptr[prev_gvptr[prev_v]]
            dst0 = gindptr[gvptr[run_start]]
            indices[dst0 : dst0 + (src1 - src0)] = prev_indices[src0:src1]
        for i, groups in enumerate(tail_groups):
            fill_vertex_indices(prev_v + i, groups)
        return gvptr, glabels, gindptr, indices

    @staticmethod
    def _patch_numpy_column(
        prev_col: np.ndarray, live_col: np.ndarray, n: int, dirty_old: list[int]
    ) -> np.ndarray:
        """Edge column rebuilt as: prev prefix (memcpy) + dirty patches + new tail."""
        prev_n = prev_col.shape[0]
        col = np.empty(n, dtype=prev_col.dtype)
        col[:prev_n] = prev_col
        if n > prev_n:
            col[prev_n:] = live_col[prev_n:n]
        if dirty_old:
            col[dirty_old] = live_col[dirty_old]
        return col

    @staticmethod
    def _patch_list_column(
        prev_col: np.ndarray, live_list: list, n: int, dirty_old: list[int], dtype
    ) -> np.ndarray:
        """Like :meth:`_patch_numpy_column` for columns kept as Python lists."""
        prev_n = prev_col.shape[0]
        col = np.empty(n, dtype=dtype)
        col[:prev_n] = prev_col
        if n > prev_n:
            col[prev_n:] = live_list[prev_n:]
        for e in dirty_old:
            col[e] = live_list[e]
        return col

    @property
    def journal_size(self) -> tuple[int, int]:
        """(dirty vertices, dirty edges) accumulated since the last CSR export."""
        return len(self._journal_vertices), len(self._journal_edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"placeholders={self.num_placeholders})"
        )


@dataclass(frozen=True)
class CSRSnapshot:
    """A :class:`DynamicGraph` frozen into flat numpy arrays.

    ``out_indptr``/``out_indices`` (and the ``in_`` pair) are standard CSR:
    the live out-edge ids of the ``i``-th vertex of ``vertex_ids`` are
    ``out_indices[out_indptr[i]:out_indptr[i + 1]]``.  The label-partitioned
    mirror keys the same edge ids by ``(vertex, label)`` group: vertex ``i``
    owns groups ``out_group_vptr[i]:out_group_vptr[i + 1]``; group ``g``
    carries label ``out_group_labels[g]`` and edge ids
    ``out_label_indices[out_group_indptr[g]:out_group_indptr[g + 1]]``.
    The ``edge_*`` columns are indexed by edge id and cover every
    placeholder (live or dead); ``edge_alive`` disambiguates.
    """

    vertex_ids: np.ndarray  #: int64 [V] — vertex ids in insertion order
    vertex_labels: np.ndarray  #: int64 [V]
    out_indptr: np.ndarray  #: int64 [V + 1]
    out_indices: np.ndarray  #: int64 [live out-edges]
    in_indptr: np.ndarray  #: int64 [V + 1]
    in_indices: np.ndarray  #: int64 [live in-edges]
    out_group_vptr: np.ndarray  #: int64 [V + 1] — (vertex, label) group ranges
    out_group_labels: np.ndarray  #: int64 [G_out]
    out_group_indptr: np.ndarray  #: int64 [G_out + 1]
    out_label_indices: np.ndarray  #: int64 [live out-edges]
    in_group_vptr: np.ndarray  #: int64 [V + 1]
    in_group_labels: np.ndarray  #: int64 [G_in]
    in_group_indptr: np.ndarray  #: int64 [G_in + 1]
    in_label_indices: np.ndarray  #: int64 [live in-edges]
    edge_src: np.ndarray  #: int64 [placeholders]
    edge_dst: np.ndarray  #: int64 [placeholders]
    edge_label: np.ndarray  #: int64 [placeholders]
    edge_timestamp: np.ndarray  #: float64 [placeholders]
    edge_alive: np.ndarray  #: uint8 [placeholders]
    num_live_edges: int
    #: dirty-slice spec for the shared-snapshot writer: per array name, the
    #: half-open element ranges that may differ from the *previous* export
    #: (a conservative superset), or ``None`` per-name / for the whole dict
    #: meaning "treat as fully dirty".  Only the incremental splice path
    #: produces ranges; a full rebuild publishes with ``dirty=None``.
    dirty: "dict[str, list[tuple[int, int]] | None] | None" = field(
        default=None, repr=False, compare=False
    )

    def arrays(self) -> dict[str, np.ndarray]:
        """The array fields keyed by name (the shared-memory publication set)."""
        return {
            "vertex_ids": self.vertex_ids,
            "vertex_labels": self.vertex_labels,
            "out_indptr": self.out_indptr,
            "out_indices": self.out_indices,
            "in_indptr": self.in_indptr,
            "in_indices": self.in_indices,
            "out_group_vptr": self.out_group_vptr,
            "out_group_labels": self.out_group_labels,
            "out_group_indptr": self.out_group_indptr,
            "out_label_indices": self.out_label_indices,
            "in_group_vptr": self.in_group_vptr,
            "in_group_labels": self.in_group_labels,
            "in_group_indptr": self.in_group_indptr,
            "in_label_indices": self.in_label_indices,
            "edge_src": self.edge_src,
            "edge_dst": self.edge_dst,
            "edge_label": self.edge_label,
            "edge_timestamp": self.edge_timestamp,
            "edge_alive": self.edge_alive,
        }


class CSRGraphView:
    """Read-only :class:`DynamicGraph` lookalike over :class:`CSRSnapshot` arrays.

    Worker processes build one per published snapshot.  The snapshot
    arrays are zero-copy views into the shared-memory segment; because
    the backtracking enumerator is a pure-Python loop, the view converts
    what it touches into plain Python ints (numpy scalars are ~3x slower
    to index, hash and compare there).  Adjacency slices are converted
    lazily per vertex — a worker only materialises the neighbourhoods
    its work units actually visit — while the edge scalar columns are
    converted once up front because the hot loop indexes them by
    arbitrary edge id.  Labelled candidate pools stay numpy: the fused
    pipeline filters and gathers them vectorized, so no per-edge Python
    conversion happens for them.  Mutating methods are intentionally
    absent.
    """

    def __init__(self, snapshot: CSRSnapshot) -> None:
        self._snapshot = snapshot
        ids = snapshot.vertex_ids.tolist()
        self._position = {vid: i for i, vid in enumerate(ids)}
        self._vertex_ids = ids
        self._vertex_label_list = snapshot.vertex_labels.tolist()
        self._out_indptr = snapshot.out_indptr.tolist()
        self._in_indptr = snapshot.in_indptr.tolist()
        self._out_indices = snapshot.out_indices
        self._in_indices = snapshot.in_indices
        self._out_group_vptr = snapshot.out_group_vptr.tolist()
        self._out_group_labels = snapshot.out_group_labels.tolist()
        self._out_group_indptr = snapshot.out_group_indptr.tolist()
        self._in_group_vptr = snapshot.in_group_vptr.tolist()
        self._in_group_labels = snapshot.in_group_labels.tolist()
        self._in_group_indptr = snapshot.in_group_indptr.tolist()
        self._out_cache: dict[int, list[int]] = {}
        self._in_cache: dict[int, list[int]] = {}
        self._src = snapshot.edge_src.tolist()
        self._dst = snapshot.edge_dst.tolist()
        self._label = snapshot.edge_label.tolist()
        self._timestamp = snapshot.edge_timestamp.tolist()
        self._alive = snapshot.edge_alive.tolist()

    # ------------------------------------------------------------------ vertices
    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._position

    def vertex_label(self, vertex: int) -> int:
        pos = self._position.get(vertex)
        return 0 if pos is None else self._vertex_label_list[pos]

    def vertices(self) -> Iterator[int]:
        return iter(self._vertex_ids)

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_ids)

    # ------------------------------------------------------------------ edges
    def edge(self, edge_id: int) -> EdgeRecord:
        if not self.is_alive(edge_id):
            raise GraphError(f"edge id {edge_id} is not a live edge")
        return EdgeRecord(
            edge_id,
            self._src[edge_id],
            self._dst[edge_id],
            self._label[edge_id],
            self._timestamp[edge_id],
        )

    def is_alive(self, edge_id: int) -> bool:
        return 0 <= edge_id < len(self._src) and bool(self._alive[edge_id])

    def out_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges leaving ``vertex`` (do not mutate)."""
        edges = self._out_cache.get(vertex)
        if edges is None:
            pos = self._position.get(vertex)
            if pos is None:
                return _EMPTY_IDS
            edges = self._out_indices[
                self._out_indptr[pos] : self._out_indptr[pos + 1]
            ].tolist()
            self._out_cache[vertex] = edges
        return edges

    def in_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges entering ``vertex`` (do not mutate)."""
        edges = self._in_cache.get(vertex)
        if edges is None:
            pos = self._position.get(vertex)
            if pos is None:
                return _EMPTY_IDS
            edges = self._in_indices[
                self._in_indptr[pos] : self._in_indptr[pos + 1]
            ].tolist()
            self._in_cache[vertex] = edges
        return edges

    def _label_slice(
        self,
        vertex: int,
        label: int,
        group_vptr: list[int],
        group_labels: list[int],
        group_indptr: list[int],
        indices: np.ndarray,
    ) -> np.ndarray:
        pos = self._position.get(vertex)
        if pos is None:
            return _EMPTY_ARRAY
        for g in range(group_vptr[pos], group_vptr[pos + 1]):
            if group_labels[g] == label:
                return indices[group_indptr[g] : group_indptr[g + 1]]
        return _EMPTY_ARRAY

    def out_edges_with_label(self, vertex: int, label: int) -> np.ndarray:
        """Live out-edges of ``vertex`` carrying ``label`` (zero-copy int64 view)."""
        return self._label_slice(
            vertex,
            label,
            self._out_group_vptr,
            self._out_group_labels,
            self._out_group_indptr,
            self._snapshot.out_label_indices,
        )

    def in_edges_with_label(self, vertex: int, label: int) -> np.ndarray:
        """Live in-edges of ``vertex`` carrying ``label`` (zero-copy int64 view)."""
        return self._label_slice(
            vertex,
            label,
            self._in_group_vptr,
            self._in_group_labels,
            self._in_group_indptr,
            self._snapshot.in_label_indices,
        )

    def candidate_pool(self, vertex: int, out: bool, label: int | None = None):
        """Candidate pool for one extension step (see :meth:`DynamicGraph.candidate_pool`)."""
        if label is None:
            return self.out_edges(vertex) if out else self.in_edges(vertex)
        if out:
            return self.out_edges_with_label(vertex, label)
        return self.in_edges_with_label(vertex, label)

    def endpoint_array(self, edge_ids: np.ndarray, take_dst: bool) -> np.ndarray:
        """Vectorized endpoint gather: dst (or src) vertex per edge id."""
        snapshot = self._snapshot
        column = snapshot.edge_dst if take_dst else snapshot.edge_src
        return column[edge_ids]

    def endpoint_list(self, edge_ids, take_dst: bool) -> list[int]:
        """Scalar endpoint gather for small candidate lists."""
        column = self._dst if take_dst else self._src
        return [column[e] for e in edge_ids]

    def incident_edges(self, vertex: int) -> Iterator[int]:
        yield from self.out_edges(vertex)
        yield from self.in_edges(vertex)

    def out_degree(self, vertex: int) -> int:
        pos = self._position.get(vertex)
        if pos is None:
            return 0
        return self._out_indptr[pos + 1] - self._out_indptr[pos]

    def in_degree(self, vertex: int) -> int:
        pos = self._position.get(vertex)
        if pos is None:
            return 0
        return self._in_indptr[pos + 1] - self._in_indptr[pos]

    def degree(self, vertex: int) -> int:
        return self.out_degree(vertex) + self.in_degree(vertex)

    def _label_group_size(
        self,
        vertex: int,
        label: int,
        group_vptr: list[int],
        group_labels: list[int],
        group_indptr: list[int],
    ) -> int:
        pos = self._position.get(vertex)
        if pos is None:
            return 0
        for g in range(group_vptr[pos], group_vptr[pos + 1]):
            if group_labels[g] == label:
                return group_indptr[g + 1] - group_indptr[g]
        return 0

    def out_label_degree(self, vertex: int, label: int) -> int:
        """Number of live out-edges with ``label`` (O(labels at vertex))."""
        return self._label_group_size(
            vertex, label, self._out_group_vptr, self._out_group_labels, self._out_group_indptr
        )

    def in_label_degree(self, vertex: int, label: int) -> int:
        """Number of live in-edges with ``label`` (O(labels at vertex))."""
        return self._label_group_size(
            vertex, label, self._in_group_vptr, self._in_group_labels, self._in_group_indptr
        )

    def edges(self) -> Iterator[EdgeRecord]:
        for edge_id, alive in enumerate(self._alive):
            if alive:
                yield EdgeRecord(
                    edge_id,
                    self._src[edge_id],
                    self._dst[edge_id],
                    self._label[edge_id],
                    self._timestamp[edge_id],
                )

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        dsts = self._dst
        if label is None:
            return [e for e in self.out_edges(src) if dsts[e] == dst]
        labels = self._label
        return [e for e in self.out_edges(src) if dsts[e] == dst and labels[e] == label]

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_live_edges

    @property
    def num_placeholders(self) -> int:
        return len(self._src)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraphView(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"placeholders={self.num_placeholders})"
        )
