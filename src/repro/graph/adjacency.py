"""Dynamic adjacency-list multigraph with edge-id recycling.

This is the data-graph storage layer described in Section II-A and the
"Memory recycling" paragraph of Section IV-A of the paper:

* each vertex keeps separate lists of its outgoing and incoming edge ids
  so that candidate edges for a query-tree step can be fetched with one
  sequential scan of a single list;
* each edge *instance* has a unique ``edge_id`` used to address its
  attributes and its DEBI row;
* when an edge is deleted it is located in the adjacency list, swapped
  with the last entry and popped (O(degree) locate, O(1) removal), and
  its id is pushed on the free list of its source vertex;
* when a new edge is later inserted at that vertex the id is reused,
  which keeps the number of edge placeholders — and therefore the DEBI
  size — from growing monotonically (Figure 17).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.graph.edge import EdgeRecord, EdgeTriple
from repro.graph.stats import PlaceholderStats
from repro.utils.validation import GraphError


class DynamicGraph:
    """A directed labelled multigraph supporting streaming updates.

    Parameters
    ----------
    recycle_edge_ids:
        When True (default, the paper's design) edge ids of deleted edges
        are reused for later insertions at the same source vertex.  When
        False every insertion allocates a fresh id; this mode exists to
        reproduce the "without reclaiming" curve of Figure 17.
    track_label_degrees:
        Maintain per-vertex, per-label in/out degree counters.  These are
        used by the ``f2``/``f3`` label-degree filters; maintaining them
        costs O(1) per update.
    """

    def __init__(self, recycle_edge_ids: bool = True, track_label_degrees: bool = True) -> None:
        self.recycle_edge_ids = recycle_edge_ids
        self.track_label_degrees = track_label_degrees

        # Edge columns indexed by edge_id.
        self._src: list[int] = []
        self._dst: list[int] = []
        self._label: list[int] = []
        self._timestamp: list[float] = []
        self._alive: list[bool] = []

        # Vertex state.
        self._vertex_labels: dict[int, int] = {}
        self._out: dict[int, list[int]] = defaultdict(list)
        self._in: dict[int, list[int]] = defaultdict(list)
        self._out_label_deg: dict[int, Counter] = defaultdict(Counter)
        self._in_label_deg: dict[int, Counter] = defaultdict(Counter)

        # Edge-id recycling: free ids keyed by the source vertex that owned them.
        self._free_ids: dict[int, list[int]] = defaultdict(list)

        # Resolution of (src, dst, label) triples to live edge ids (multi-edge aware).
        self._triple_index: dict[tuple[int, int, int], list[int]] = defaultdict(list)

        self._num_live_edges = 0
        self.stats = PlaceholderStats()

    # ------------------------------------------------------------------ vertices
    def add_vertex(self, vertex: int, label: int = 0) -> None:
        """Register ``vertex`` with ``label``; later calls may not change the label."""
        existing = self._vertex_labels.get(vertex)
        if existing is None:
            self._vertex_labels[vertex] = label
        elif existing != label and label != 0:
            raise GraphError(
                f"vertex {vertex} already has label {existing}, cannot relabel to {label}"
            )

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._vertex_labels

    def vertex_label(self, vertex: int) -> int:
        """Return the label of ``vertex`` (0 for unlabelled/unknown vertices)."""
        return self._vertex_labels.get(vertex, 0)

    def vertices(self) -> Iterator[int]:
        return iter(self._vertex_labels)

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    # ------------------------------------------------------------------ edges
    def add_edge(
        self,
        src: int,
        dst: int,
        label: int = 0,
        timestamp: float = 0.0,
        src_label: int | None = None,
        dst_label: int | None = None,
    ) -> int:
        """Insert a new edge instance and return its ``edge_id``.

        Parallel edges (same ``src``/``dst``/``label``) are distinct
        instances with distinct ids — this is the multigraph property the
        paper relies on for context-aware matching.
        """
        self.add_vertex(src, src_label if src_label is not None else self.vertex_label(src))
        self.add_vertex(dst, dst_label if dst_label is not None else self.vertex_label(dst))

        edge_id = self._allocate_id(src)
        if edge_id == len(self._src):
            self._src.append(src)
            self._dst.append(dst)
            self._label.append(label)
            self._timestamp.append(timestamp)
            self._alive.append(True)
        else:
            self._src[edge_id] = src
            self._dst[edge_id] = dst
            self._label[edge_id] = label
            self._timestamp[edge_id] = timestamp
            self._alive[edge_id] = True

        self._out[src].append(edge_id)
        self._in[dst].append(edge_id)
        self._triple_index[(src, dst, label)].append(edge_id)
        if self.track_label_degrees:
            self._out_label_deg[src][label] += 1
            self._in_label_deg[dst][label] += 1
        self._num_live_edges += 1
        self.stats.record_insert(placeholders=len(self._src), live=self._num_live_edges)
        return edge_id

    def _allocate_id(self, src: int) -> int:
        if self.recycle_edge_ids:
            free = self._free_ids.get(src)
            if free:
                self.stats.record_recycle()
                return free.pop()
        return len(self._src)

    def delete_edge(self, edge_id: int) -> EdgeRecord:
        """Delete the edge instance ``edge_id`` and return its last record."""
        record = self.edge(edge_id)
        src, dst, label = record.src, record.dst, record.label

        self._remove_from_list(self._out[src], edge_id)
        self._remove_from_list(self._in[dst], edge_id)
        self._remove_from_list(self._triple_index[(src, dst, label)], edge_id)
        if not self._triple_index[(src, dst, label)]:
            del self._triple_index[(src, dst, label)]
        if self.track_label_degrees:
            self._out_label_deg[src][label] -= 1
            self._in_label_deg[dst][label] -= 1

        self._alive[edge_id] = False
        self._num_live_edges -= 1
        if self.recycle_edge_ids:
            self._free_ids[src].append(edge_id)
        self.stats.record_delete(placeholders=len(self._src), live=self._num_live_edges)
        return record

    def delete_edge_instance(self, src: int, dst: int, label: int = 0) -> EdgeRecord:
        """Delete the most recently inserted live edge matching the triple.

        Stream deletions are expressed as triples (the paper negates the
        endpoints on the wire); this resolves the triple to a concrete
        edge instance.
        """
        ids = self._triple_index.get((src, dst, label))
        if not ids:
            raise GraphError(f"no live edge ({src}, {dst}, {label}) to delete")
        return self.delete_edge(ids[-1])

    @staticmethod
    def _remove_from_list(lst: list[int], edge_id: int) -> None:
        # Swap-with-last removal, as described in the paper's memory
        # recycling paragraph: O(position) to find, O(1) to remove.
        try:
            idx = lst.index(edge_id)
        except ValueError as exc:
            raise GraphError(f"edge {edge_id} not present in adjacency list") from exc
        lst[idx] = lst[-1]
        lst.pop()

    # ------------------------------------------------------------------ accessors
    def edge(self, edge_id: int) -> EdgeRecord:
        """Return the :class:`EdgeRecord` for a *live* ``edge_id``."""
        if not self.is_alive(edge_id):
            raise GraphError(f"edge id {edge_id} is not a live edge")
        return EdgeRecord(
            edge_id,
            self._src[edge_id],
            self._dst[edge_id],
            self._label[edge_id],
            self._timestamp[edge_id],
        )

    def is_alive(self, edge_id: int) -> bool:
        return 0 <= edge_id < len(self._src) and self._alive[edge_id]

    def out_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges leaving ``vertex`` (do not mutate)."""
        return self._out.get(vertex, [])

    def in_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges entering ``vertex`` (do not mutate)."""
        return self._in.get(vertex, [])

    def incident_edges(self, vertex: int) -> Iterator[int]:
        """All live edge ids touching ``vertex`` (out first, then in)."""
        yield from self.out_edges(vertex)
        yield from self.in_edges(vertex)

    def out_degree(self, vertex: int) -> int:
        return len(self._out.get(vertex, ()))

    def in_degree(self, vertex: int) -> int:
        return len(self._in.get(vertex, ()))

    def degree(self, vertex: int) -> int:
        return self.out_degree(vertex) + self.in_degree(vertex)

    def out_label_degree(self, vertex: int, label: int) -> int:
        """Number of live out-edges of ``vertex`` carrying ``label``."""
        if not self.track_label_degrees:
            return sum(1 for e in self.out_edges(vertex) if self._label[e] == label)
        return self._out_label_deg.get(vertex, Counter()).get(label, 0)

    def in_label_degree(self, vertex: int, label: int) -> int:
        """Number of live in-edges of ``vertex`` carrying ``label``."""
        if not self.track_label_degrees:
            return sum(1 for e in self.in_edges(vertex) if self._label[e] == label)
        return self._in_label_deg.get(vertex, Counter()).get(label, 0)

    def edges(self) -> Iterator[EdgeRecord]:
        """Iterate over all live edge records."""
        for edge_id in range(len(self._src)):
            if self._alive[edge_id]:
                yield EdgeRecord(
                    edge_id,
                    self._src[edge_id],
                    self._dst[edge_id],
                    self._label[edge_id],
                    self._timestamp[edge_id],
                )

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        """Return live edge ids from ``src`` to ``dst`` (optionally with ``label``)."""
        if label is not None:
            return list(self._triple_index.get((src, dst, label), ()))
        return [e for e in self._out.get(src, ()) if self._dst[e] == dst]

    @property
    def num_edges(self) -> int:
        """Number of currently live edge instances."""
        return self._num_live_edges

    @property
    def num_placeholders(self) -> int:
        """Number of edge slots ever allocated (live + dead, i.e. DEBI rows)."""
        return len(self._src)

    # ------------------------------------------------------------------ bulk helpers
    def apply_insertions(self, triples: Iterable[tuple]) -> list[int]:
        """Insert many edges; each item is (src, dst, label[, timestamp[, src_label, dst_label]])."""
        ids = []
        for item in triples:
            ids.append(self.add_edge(*item))
        return ids

    def copy(self) -> "DynamicGraph":
        """Deep copy of the live graph (dead placeholders are preserved)."""
        clone = DynamicGraph(
            recycle_edge_ids=self.recycle_edge_ids,
            track_label_degrees=self.track_label_degrees,
        )
        clone._src = list(self._src)
        clone._dst = list(self._dst)
        clone._label = list(self._label)
        clone._timestamp = list(self._timestamp)
        clone._alive = list(self._alive)
        clone._vertex_labels = dict(self._vertex_labels)
        clone._out = defaultdict(list, {k: list(v) for k, v in self._out.items()})
        clone._in = defaultdict(list, {k: list(v) for k, v in self._in.items()})
        clone._out_label_deg = defaultdict(Counter, {k: Counter(v) for k, v in self._out_label_deg.items()})
        clone._in_label_deg = defaultdict(Counter, {k: Counter(v) for k, v in self._in_label_deg.items()})
        clone._free_ids = defaultdict(list, {k: list(v) for k, v in self._free_ids.items()})
        clone._triple_index = defaultdict(list, {k: list(v) for k, v in self._triple_index.items()})
        clone._num_live_edges = self._num_live_edges
        return clone

    # ------------------------------------------------------------------ flat-array export
    def export_csr(self) -> "CSRSnapshot":
        """Export the live graph as flat CSR numpy arrays.

        The arrays are the transport format of the shared-memory parallel
        backend (see :mod:`repro.core.shared_snapshot`): they can be copied
        into a ``multiprocessing.shared_memory`` segment with one memcpy
        each and re-attached zero-copy in worker processes, where
        :class:`CSRGraphView` turns them back into the read API of this
        class.  Adjacency-list order is preserved, so a view enumerates
        candidates in the same order as the live graph.
        """
        vertex_ids = list(self._vertex_labels)
        num_vertices = len(vertex_ids)

        def build_csr(adj: dict[int, list[int]]) -> tuple[np.ndarray, np.ndarray]:
            indptr = np.zeros(num_vertices + 1, dtype=np.int64)
            for i, vid in enumerate(vertex_ids):
                indptr[i + 1] = indptr[i] + len(adj.get(vid, ()))
            indices = np.fromiter(
                (eid for vid in vertex_ids for eid in adj.get(vid, ())),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            return indptr, indices

        out_indptr, out_indices = build_csr(self._out)
        in_indptr, in_indices = build_csr(self._in)
        return CSRSnapshot(
            vertex_ids=np.array(vertex_ids, dtype=np.int64),
            vertex_labels=np.fromiter(
                self._vertex_labels.values(), dtype=np.int64, count=num_vertices
            ),
            out_indptr=out_indptr,
            out_indices=out_indices,
            in_indptr=in_indptr,
            in_indices=in_indices,
            edge_src=np.array(self._src, dtype=np.int64),
            edge_dst=np.array(self._dst, dtype=np.int64),
            edge_label=np.array(self._label, dtype=np.int64),
            edge_timestamp=np.array(self._timestamp, dtype=np.float64),
            edge_alive=np.array(self._alive, dtype=np.uint8),
            num_live_edges=self._num_live_edges,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"placeholders={self.num_placeholders})"
        )


@dataclass(frozen=True)
class CSRSnapshot:
    """A :class:`DynamicGraph` frozen into flat numpy arrays.

    ``out_indptr``/``out_indices`` (and the ``in_`` pair) are standard CSR:
    the live out-edge ids of the ``i``-th vertex of ``vertex_ids`` are
    ``out_indices[out_indptr[i]:out_indptr[i + 1]]``.  The ``edge_*``
    columns are indexed by edge id and cover every placeholder (live or
    dead); ``edge_alive`` disambiguates.
    """

    vertex_ids: np.ndarray  #: int64 [V] — vertex ids in insertion order
    vertex_labels: np.ndarray  #: int64 [V]
    out_indptr: np.ndarray  #: int64 [V + 1]
    out_indices: np.ndarray  #: int64 [live out-edges]
    in_indptr: np.ndarray  #: int64 [V + 1]
    in_indices: np.ndarray  #: int64 [live in-edges]
    edge_src: np.ndarray  #: int64 [placeholders]
    edge_dst: np.ndarray  #: int64 [placeholders]
    edge_label: np.ndarray  #: int64 [placeholders]
    edge_timestamp: np.ndarray  #: float64 [placeholders]
    edge_alive: np.ndarray  #: uint8 [placeholders]
    num_live_edges: int

    def arrays(self) -> dict[str, np.ndarray]:
        """The array fields keyed by name (the shared-memory publication set)."""
        return {
            "vertex_ids": self.vertex_ids,
            "vertex_labels": self.vertex_labels,
            "out_indptr": self.out_indptr,
            "out_indices": self.out_indices,
            "in_indptr": self.in_indptr,
            "in_indices": self.in_indices,
            "edge_src": self.edge_src,
            "edge_dst": self.edge_dst,
            "edge_label": self.edge_label,
            "edge_timestamp": self.edge_timestamp,
            "edge_alive": self.edge_alive,
        }


_EMPTY_IDS: list[int] = []


class CSRGraphView:
    """Read-only :class:`DynamicGraph` lookalike over :class:`CSRSnapshot` arrays.

    Worker processes build one per published snapshot.  The snapshot
    arrays are zero-copy views into the shared-memory segment; because
    the backtracking enumerator is a pure-Python loop, the view converts
    what it touches into plain Python ints (numpy scalars are ~3x slower
    to index, hash and compare there).  Adjacency slices are converted
    lazily per vertex — a worker only materialises the neighbourhoods
    its work units actually visit — while the edge scalar columns are
    converted once up front because the hot loop indexes them by
    arbitrary edge id.  Mutating methods are intentionally absent.
    """

    def __init__(self, snapshot: CSRSnapshot) -> None:
        self._snapshot = snapshot
        ids = snapshot.vertex_ids.tolist()
        self._position = {vid: i for i, vid in enumerate(ids)}
        self._vertex_ids = ids
        self._vertex_label_list = snapshot.vertex_labels.tolist()
        self._out_indptr = snapshot.out_indptr.tolist()
        self._in_indptr = snapshot.in_indptr.tolist()
        self._out_indices = snapshot.out_indices
        self._in_indices = snapshot.in_indices
        self._out_cache: dict[int, list[int]] = {}
        self._in_cache: dict[int, list[int]] = {}
        self._src = snapshot.edge_src.tolist()
        self._dst = snapshot.edge_dst.tolist()
        self._label = snapshot.edge_label.tolist()
        self._timestamp = snapshot.edge_timestamp.tolist()
        self._alive = snapshot.edge_alive.tolist()

    # ------------------------------------------------------------------ vertices
    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._position

    def vertex_label(self, vertex: int) -> int:
        pos = self._position.get(vertex)
        return 0 if pos is None else self._vertex_label_list[pos]

    def vertices(self) -> Iterator[int]:
        return iter(self._vertex_ids)

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_ids)

    # ------------------------------------------------------------------ edges
    def edge(self, edge_id: int) -> EdgeRecord:
        if not self.is_alive(edge_id):
            raise GraphError(f"edge id {edge_id} is not a live edge")
        return EdgeRecord(
            edge_id,
            self._src[edge_id],
            self._dst[edge_id],
            self._label[edge_id],
            self._timestamp[edge_id],
        )

    def is_alive(self, edge_id: int) -> bool:
        return 0 <= edge_id < len(self._src) and bool(self._alive[edge_id])

    def out_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges leaving ``vertex`` (do not mutate)."""
        edges = self._out_cache.get(vertex)
        if edges is None:
            pos = self._position.get(vertex)
            if pos is None:
                return _EMPTY_IDS
            edges = self._out_indices[
                self._out_indptr[pos] : self._out_indptr[pos + 1]
            ].tolist()
            self._out_cache[vertex] = edges
        return edges

    def in_edges(self, vertex: int) -> list[int]:
        """Edge ids of live edges entering ``vertex`` (do not mutate)."""
        edges = self._in_cache.get(vertex)
        if edges is None:
            pos = self._position.get(vertex)
            if pos is None:
                return _EMPTY_IDS
            edges = self._in_indices[
                self._in_indptr[pos] : self._in_indptr[pos + 1]
            ].tolist()
            self._in_cache[vertex] = edges
        return edges

    def incident_edges(self, vertex: int) -> Iterator[int]:
        yield from self.out_edges(vertex)
        yield from self.in_edges(vertex)

    def out_degree(self, vertex: int) -> int:
        pos = self._position.get(vertex)
        if pos is None:
            return 0
        return self._out_indptr[pos + 1] - self._out_indptr[pos]

    def in_degree(self, vertex: int) -> int:
        pos = self._position.get(vertex)
        if pos is None:
            return 0
        return self._in_indptr[pos + 1] - self._in_indptr[pos]

    def degree(self, vertex: int) -> int:
        return self.out_degree(vertex) + self.in_degree(vertex)

    def out_label_degree(self, vertex: int, label: int) -> int:
        labels = self._label
        return sum(1 for e in self.out_edges(vertex) if labels[e] == label)

    def in_label_degree(self, vertex: int, label: int) -> int:
        labels = self._label
        return sum(1 for e in self.in_edges(vertex) if labels[e] == label)

    def edges(self) -> Iterator[EdgeRecord]:
        for edge_id, alive in enumerate(self._alive):
            if alive:
                yield EdgeRecord(
                    edge_id,
                    self._src[edge_id],
                    self._dst[edge_id],
                    self._label[edge_id],
                    self._timestamp[edge_id],
                )

    def find_edges(self, src: int, dst: int, label: int | None = None) -> list[int]:
        dsts = self._dst
        if label is None:
            return [e for e in self.out_edges(src) if dsts[e] == dst]
        labels = self._label
        return [e for e in self.out_edges(src) if dsts[e] == dst and labels[e] == label]

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_live_edges

    @property
    def num_placeholders(self) -> int:
        return len(self._src)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraphView(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"placeholders={self.num_placeholders})"
        )
