"""Plain-text rendering of the paper-shaped tables and series.

The benchmark scripts print these tables so the shape of each figure —
who wins, by roughly what factor, where the crossover sits — can be read
straight from ``pytest benchmarks/ --benchmark-only`` output and copied
into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = "{:.4f}",
) -> str:
    """Render an aligned fixed-width table with a title line."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: Mapping[object, float] | Sequence[tuple[object, float]],
                  value_name: str = "value") -> str:
    """Render an (x, y) series as a two-column table."""
    if isinstance(series, Mapping):
        items = list(series.items())
    else:
        items = list(series)
    return format_table(title, ["x", value_name], items)
