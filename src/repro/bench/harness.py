"""Runner helpers that execute each system on a workload and time it.

Every helper returns a :class:`BenchRun` so the benchmark scripts can
build paper-shaped tables without caring which engine produced the
numbers.  All helpers accept pre-built streams (lists of
:class:`~repro.streams.StreamEvent`) so dataset generation cost never
pollutes the measured runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.bigjoin import BigJoinMatcher
from repro.baselines.ceci import CECIMatcher
from repro.baselines.li_tcs import LiTCSMatcher
from repro.baselines.turboflux import TurboFluxMatcher
from repro.core.api import MatchDefinition
from repro.core.engine import EngineConfig, MnemonicEngine, RunResult
from repro.core.parallel import ParallelConfig
from repro.core.registry import MultiQueryEngine, MultiRunResult
from repro.core.supervisor import FaultPolicy
from repro.datasets.queries import graph_from_events
from repro.query.query_graph import QueryGraph
from repro.storage.config import StorageConfig
from repro.streams.broker import StreamBroker
from repro.streams.clock import Clock, WallClock
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind, StreamEvent
from repro.streams.sources import ListSource, ReplaySource, StreamSource


#: floor for the timed section when computing rates: perf_counter deltas on
#: coarse-clock platforms can round a tiny measured section to exactly 0.0
MIN_TIMED_SECONDS = 1e-9


@dataclass
class BenchRun:
    """Outcome of running one system on one (query, stream) pair."""

    system: str
    query_name: str
    seconds: float
    embeddings: int
    #: negative (destroyed) embeddings for insert/delete workloads
    negative_embeddings: int = 0
    #: auxiliary metrics (traversals, stored partials, index entries, ...)
    extra: dict = field(default_factory=dict)
    #: ingest-to-result latency rollup (count/mean/p50/p95/p99/max) for
    #: broker-fed runs; empty when the stream carried no arrival stamps
    latency: dict = field(default_factory=dict)
    #: the engine RunResult when the system is Mnemonic (None otherwise)
    run_result: RunResult | None = None

    @property
    def throughput(self) -> float:
        """Embeddings per second (0 when nothing was found).

        The timed section is clamped to :data:`MIN_TIMED_SECONDS`: a tiny
        run whose wall-clock rounded to <= 0 seconds used to report 0.0
        and silently drop the embeddings it did find.
        """
        found = self.embeddings + self.negative_embeddings
        if found == 0:
            return 0.0
        return found / max(self.seconds, MIN_TIMED_SECONDS)


# ---------------------------------------------------------------------- Mnemonic
def run_mnemonic_stream(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    match_def: MatchDefinition | None = None,
    initial_prefix: int = 0,
    batch_size: int = 1024,
    stream_type: StreamType = StreamType.INSERT_ONLY,
    window: float | None = None,
    stride: float | None = None,
    parallel: ParallelConfig | None = None,
    in_memory_window: int | None = None,
    collect_embeddings: bool = False,
    recycle_edge_ids: bool = True,
    pipeline: str = "serial",
    storage: "StorageConfig | None" = None,
    fault: FaultPolicy | None = None,
    kernel: str = "columnar",
    ingest: str = "columnar",
    query_name: str = "query",
) -> BenchRun:
    """Run the Mnemonic engine over ``stream`` and time the streaming part.

    The first ``initial_prefix`` events are loaded (and indexed) before the
    clock starts, mirroring the paper's setup where the remainder of the
    trace forms the initial graph snapshot.  ``pipeline="pipelined"``
    overlaps batch k+1's mutation/publish work with batch k's pool
    enumeration (results are bit-identical to serial).  Passing a
    ``storage`` config runs the engine durably (journal + checkpoints +
    optional DEBI cold tier) and folds the storage counters into
    ``extra`` so tables can report disk footprint next to throughput.
    A ``fault`` policy opts the run into self-healing (pool respawn and
    redispatch under a retry budget); the supervisor's fault counters are
    folded into ``extra["fault_stats"]`` either way.
    """
    config = EngineConfig(
        stream=StreamConfig(
            stream_type=stream_type,
            batch_size=batch_size,
            window=window,
            stride=stride,
            in_memory_window=in_memory_window,
        ),
        parallel=parallel or ParallelConfig(),
        collect_embeddings=collect_embeddings,
        recycle_edge_ids=recycle_edge_ids,
        pipeline=pipeline,
        storage=storage,
        fault=fault or FaultPolicy(),
        kernel=kernel,
        ingest=ingest,
    )
    # Engine construction spawns the persistent worker pool (process
    # backend), so pool start-up is part of setup — not of the measured
    # streaming section, matching the paper's per-query measurement.
    engine = MnemonicEngine(query, match_def=match_def, config=config)
    try:
        prefix = stream[:initial_prefix]
        suffix = stream[initial_prefix:]
        if prefix:
            engine.load_initial([e for e in prefix if e.kind is EventKind.INSERT])
        start = time.perf_counter()
        result = engine.run(list(suffix))
        elapsed = time.perf_counter() - start
        extra = {
            "filter_traversals": result.total_filter_traversals,
            "candidates_scanned": result.total_candidates_scanned,
            "snapshots": len(result.snapshots),
            "placeholders": engine.graph.num_placeholders,
            "live_edges": engine.graph.num_edges,
            "debi_bits": engine.debi.total_bits_set(),
            "snapshot_exports": engine.snapshot_exports,
            "enumeration_phases": engine.enumeration_phases_with_units,
            "pool_phases": engine.pool_enumeration_phases,
            "fault_stats": engine.fault_stats(),
            "phase_split": result.phase_split(),
        }
        pool = getattr(engine, "_pool", None)
        if pool is not None:
            extra["publish_stats"] = pool.publish_stats
        if storage is not None:
            extra.update(engine.storage_counters())
        return BenchRun(
            system="Mnemonic",
            query_name=query_name,
            seconds=elapsed,
            embeddings=result.total_positive,
            negative_embeddings=result.total_negative,
            extra=extra,
            latency=result.latency_summary() or {},
            run_result=result,
        )
    finally:
        engine.close()


# ---------------------------------------------------------------------- Mnemonic, sharded
def run_sharded_stream(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    shards: int = 1,
    match_def: MatchDefinition | None = None,
    initial_prefix: int = 0,
    batch_size: int = 1024,
    stream_type: StreamType = StreamType.INSERT_ONLY,
    parallel: ParallelConfig | None = None,
    collect_embeddings: bool = False,
    recycle_edge_ids: bool = True,
    kernel: str = "columnar",
    ingest: str = "columnar",
    strategy=None,
    query_name: str = "query",
) -> BenchRun:
    """Run the partition-parallel :class:`~repro.core.shard_router.ShardedEngine`.

    Same measurement protocol as :func:`run_mnemonic_stream` (prefix
    loaded before the clock starts, the streamed suffix timed), with the
    per-shard work report and cross-shard frontier traffic folded into
    ``extra`` so the shard-scaling tables can assert on them.
    """
    from repro.core.shard_router import ShardedEngine

    config = EngineConfig(
        stream=StreamConfig(stream_type=stream_type, batch_size=batch_size),
        parallel=parallel or ParallelConfig(),
        collect_embeddings=collect_embeddings,
        recycle_edge_ids=recycle_edge_ids,
        kernel=kernel,
        ingest=ingest,
        shards=shards,
    )
    engine = ShardedEngine(query, match_def=match_def, config=config, strategy=strategy)
    try:
        prefix = stream[:initial_prefix]
        suffix = stream[initial_prefix:]
        if prefix:
            engine.load_initial([e for e in prefix if e.kind is EventKind.INSERT])
        start = time.perf_counter()
        result = engine.run(list(suffix))
        elapsed = time.perf_counter() - start
        return BenchRun(
            system="Mnemonic-sharded",
            query_name=query_name,
            seconds=elapsed,
            embeddings=result.total_positive,
            negative_embeddings=result.total_negative,
            extra={
                "filter_traversals": result.total_filter_traversals,
                "candidates_scanned": result.total_candidates_scanned,
                "snapshots": len(result.snapshots),
                "shards": shards,
                "shard_stats": engine.shard_stats(),
                "frontier": engine.frontier_stats(),
                "snapshot_exports": engine.snapshot_exports,
                "memory": engine.memory_report(),
                "phase_split": result.phase_split(),
            },
            run_result=result,
        )
    finally:
        engine.close()


# ---------------------------------------------------------------------- Mnemonic, service layer
def run_service_stream(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    match_def: MatchDefinition | None = None,
    initial_prefix: int = 0,
    batch_size: int = 1024,
    max_batch_delay: float | None = None,
    stream_type: StreamType = StreamType.INSERT_ONLY,
    events_per_second: float | None = None,
    parallel: ParallelConfig | None = None,
    collect_embeddings: bool = False,
    pipeline: str = "serial",
    capacity: int = 4096,
    clock: Clock | None = None,
    overload: str = "block",
    fault: FaultPolicy | None = None,
    kernel: str = "columnar",
    query_name: str = "query",
) -> BenchRun:
    """Run the engine behind a :class:`~repro.streams.broker.StreamBroker`.

    This is the service-shaped counterpart of :func:`run_mnemonic_stream`:
    the streamed suffix arrives through a bounded broker (fed by a
    producer thread, so ingest overlaps mutation and enumeration), with
    optional rate control (``events_per_second`` on ``clock``) and
    adaptive batching (``max_batch_delay``).  The returned
    :class:`BenchRun` carries the ingest-to-result latency rollup next
    to the throughput metrics, plus the broker's backpressure counters —
    including shed/rejected events under a non-default ``overload``
    policy, so load-shedding runs report what they dropped next to the
    latency they bought.  A ``fault`` policy opts the engine into
    self-healing (see :func:`run_mnemonic_stream`).
    """
    config = EngineConfig(
        stream=StreamConfig(
            stream_type=stream_type,
            batch_size=batch_size,
            max_batch_delay=max_batch_delay,
        ),
        parallel=parallel or ParallelConfig(),
        collect_embeddings=collect_embeddings,
        pipeline=pipeline,
        fault=fault or FaultPolicy(),
        kernel=kernel,
    )
    engine = MnemonicEngine(query, match_def=match_def, config=config)
    try:
        prefix = stream[:initial_prefix]
        suffix = list(stream[initial_prefix:])
        if prefix:
            engine.load_initial([e for e in prefix if e.kind is EventKind.INSERT])
        clock = clock or WallClock()
        source: StreamSource = ListSource(suffix)
        if events_per_second is not None:
            source = ReplaySource(suffix, events_per_second=events_per_second, clock=clock)
        broker = StreamBroker(
            source=source, capacity=capacity, clock=clock, overload=overload
        )
        start = time.perf_counter()
        result = engine.run(broker)
        elapsed = time.perf_counter() - start
        latency = result.latency_summary() or {}
        broker_stats = broker.stats()
        if broker_stats["shed_events"] or broker_stats["rejected_puts"]:
            # A latency rollup over survivors only is misleading; carry
            # the drop counts alongside so tables can show both.
            latency["shed_events"] = broker_stats["shed_events"]
            latency["rejected_puts"] = broker_stats["rejected_puts"]
        return BenchRun(
            system="Mnemonic-service",
            query_name=query_name,
            seconds=elapsed,
            embeddings=result.total_positive,
            negative_embeddings=result.total_negative,
            extra={
                "filter_traversals": result.total_filter_traversals,
                "candidates_scanned": result.total_candidates_scanned,
                "snapshots": len(result.snapshots),
                "offered_load": events_per_second,
                "max_batch_delay": max_batch_delay,
                "broker": broker.stats(),
                "snapshot_exports": engine.snapshot_exports,
                "enumeration_phases": engine.enumeration_phases_with_units,
                "pool_phases": engine.pool_enumeration_phases,
            },
            latency=result.latency_summary() or {},
            run_result=result,
        )
    finally:
        engine.close()


# ---------------------------------------------------------------------- Mnemonic, multi-query
@dataclass
class MultiQueryBenchRun:
    """Outcome of one shared multi-query run: per-query rows + shared totals."""

    per_query: dict[str, BenchRun]
    seconds: float
    #: total adjacency-pool entries charged across all queries (shared scans
    #: are charged once; compare against the sum over independent engines)
    candidates_scanned: int
    #: shared-memory snapshot publications (process backend; 0 for serial)
    snapshot_exports: int
    #: enumeration phases that had work (== upper bound on exports)
    enumeration_phases: int
    #: phases dispatched to the pool — each must publish exactly one snapshot
    pool_phases: int = 0
    run_result: MultiRunResult | None = None


def run_multi_query_stream(
    queries: Sequence[tuple[str, QueryGraph]],
    stream: Sequence[StreamEvent],
    initial_prefix: int = 0,
    batch_size: int = 1024,
    stream_type: StreamType = StreamType.INSERT_ONLY,
    parallel: ParallelConfig | None = None,
    collect_embeddings: bool = False,
    pipeline: str = "serial",
    kernel: str = "columnar",
    query_names_unique: bool = True,
) -> MultiQueryBenchRun:
    """Run every query as a standing query of one shared multi-query engine.

    The per-query ``BenchRun`` rows carry the same metric names as
    :func:`run_mnemonic_stream`, so the benchmark tables can mix shared
    and independent rows; the shared run additionally reports the
    snapshot-export count (one per batch, not one per query per batch).
    """
    if query_names_unique and len({name for name, _ in queries}) != len(queries):
        raise ValueError("query names must be unique (they key the result rows)")
    config = EngineConfig(
        stream=StreamConfig(stream_type=stream_type, batch_size=batch_size),
        parallel=parallel or ParallelConfig(),
        collect_embeddings=collect_embeddings,
        pipeline=pipeline,
        kernel=kernel,
    )
    with MultiQueryEngine(config=config) as engine:
        name_by_id = {
            engine.register(query, name=name): name for name, query in queries
        }
        prefix = stream[:initial_prefix]
        suffix = stream[initial_prefix:]
        if prefix:
            engine.load_initial([e for e in prefix if e.kind is EventKind.INSERT])
        start = time.perf_counter()
        result = engine.run(list(suffix))
        elapsed = time.perf_counter() - start
        per_query: dict[str, BenchRun] = {}
        for qid, run_result in result.per_query.items():
            per_query[name_by_id[qid]] = BenchRun(
                system="Mnemonic-multi",
                query_name=name_by_id[qid],
                seconds=elapsed,
                embeddings=run_result.total_positive,
                negative_embeddings=run_result.total_negative,
                extra={
                    "filter_traversals": run_result.total_filter_traversals,
                    "candidates_scanned": run_result.total_candidates_scanned,
                    "snapshots": len(run_result.snapshots),
                },
                run_result=run_result,
            )
        return MultiQueryBenchRun(
            per_query=per_query,
            seconds=elapsed,
            candidates_scanned=result.total_candidates_scanned,
            snapshot_exports=engine.snapshot_exports,
            enumeration_phases=engine.enumeration_phases_with_units,
            pool_phases=engine.pool_enumeration_phases,
            run_result=result,
        )


# ---------------------------------------------------------------------- TurboFlux
def run_turboflux_stream(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    match_def: MatchDefinition | None = None,
    initial_prefix: int = 0,
    query_name: str = "query",
) -> BenchRun:
    """Run the TurboFlux-style baseline edge-by-edge over the stream."""
    matcher = TurboFluxMatcher(query, match_def=match_def)
    prefix = stream[:initial_prefix]
    suffix = stream[initial_prefix:]
    for event in prefix:
        if event.kind is EventKind.INSERT:
            matcher.load_edge(event.src, event.dst, event.label,
                              event.src_label, event.dst_label)
        else:
            matcher.delete_edge(event.src, event.dst, event.label)
    positives = 0
    negatives = 0
    start = time.perf_counter()
    for event in suffix:
        if event.kind is EventKind.INSERT:
            positives += len(matcher.insert_edge(event.src, event.dst, event.label,
                                                 event.src_label, event.dst_label))
        else:
            negatives += len(matcher.delete_edge(event.src, event.dst, event.label))
    elapsed = time.perf_counter() - start
    return BenchRun(
        system="TurboFlux",
        query_name=query_name,
        seconds=elapsed,
        embeddings=positives,
        negative_embeddings=negatives,
        extra={
            "traversed_edges": matcher.stats.traversed_edges,
            "state_recomputations": matcher.stats.state_recomputations,
            "suppressed_duplicates": matcher.stats.suppressed_duplicates,
        },
    )


# ---------------------------------------------------------------------- BigJoin
def run_bigjoin_inserts(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    match_def: MatchDefinition | None = None,
    initial_prefix: int = 0,
    batch_size: int = 1024,
    query_name: str = "query",
) -> BenchRun:
    """Run the BigJoin-style delta join over an insert-only stream."""
    matcher = BigJoinMatcher(query, match_def=match_def)
    to_tuple = lambda e: (e.src, e.dst, e.label, e.timestamp, e.src_label, e.dst_label)  # noqa: E731
    prefix = [to_tuple(e) for e in stream[:initial_prefix]]
    suffix = [to_tuple(e) for e in stream[initial_prefix:]]
    if prefix:
        matcher.insert_batch(prefix)
        matcher.stats.embeddings = 0
    embeddings = 0
    start = time.perf_counter()
    for i in range(0, len(suffix), batch_size):
        embeddings += len(matcher.insert_batch(suffix[i : i + batch_size]))
    elapsed = time.perf_counter() - start
    return BenchRun(
        system="BigJoin",
        query_name=query_name,
        seconds=elapsed,
        embeddings=embeddings,
        extra={
            "intermediate_results": matcher.stats.intermediate_results,
            "intersections": matcher.stats.intersections,
        },
    )


# ---------------------------------------------------------------------- CECI
def run_ceci_per_snapshot(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    snapshot_points: Sequence[int],
    match_def: MatchDefinition | None = None,
    query_name: str = "query",
) -> BenchRun:
    """Re-run CECI from scratch at each snapshot point; report the mean per-snapshot time."""
    total = 0.0
    embeddings = 0
    for point in snapshot_points:
        graph = graph_from_events(stream[:point])
        matcher = CECIMatcher(query, match_def=match_def)
        start = time.perf_counter()
        found = matcher.match(graph)
        total += time.perf_counter() - start
        embeddings += len(found)
    mean = total / max(len(snapshot_points), 1)
    return BenchRun(
        system="CECI",
        query_name=query_name,
        seconds=mean,
        embeddings=embeddings,
        extra={"snapshots": len(snapshot_points), "total_seconds": total},
    )


# ---------------------------------------------------------------------- Li et al.
def run_litcs_stream(
    query: QueryGraph,
    stream: Sequence[StreamEvent],
    initial_prefix: int = 0,
    query_name: str = "query",
    strict: bool = False,
) -> BenchRun:
    """Run the Li et al.-style time-constrained matcher over the stream."""
    matcher = LiTCSMatcher(query, strict=strict)
    to_tuple = lambda e: (e.src, e.dst, e.label, e.timestamp, e.src_label, e.dst_label)  # noqa: E731
    for event in stream[:initial_prefix]:
        matcher.insert_edge(*to_tuple(event))
    embeddings = 0
    negatives = 0
    start = time.perf_counter()
    for event in stream[initial_prefix:]:
        if event.kind is EventKind.INSERT:
            embeddings += len(matcher.insert_edge(*to_tuple(event)))
        else:
            negatives += matcher.delete_edge(event.src, event.dst, event.label)
    elapsed = time.perf_counter() - start
    return BenchRun(
        system="Li et al.",
        query_name=query_name,
        seconds=elapsed,
        embeddings=embeddings,
        negative_embeddings=0,
        extra={
            "peak_stored_partials": matcher.stats.peak_stored_partials,
            "evicted_partials": negatives,
        },
    )
