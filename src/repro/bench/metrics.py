"""Derived metrics used by the figure-shaped benchmarks."""

from __future__ import annotations

from typing import Sequence

from repro.core.engine import RunResult


def speedup_table(baseline_seconds: dict[str, float], system_seconds: dict[str, float]) -> dict[str, float]:
    """Per-key speedup of ``system`` over ``baseline`` (baseline / system)."""
    out: dict[str, float] = {}
    for key, base in baseline_seconds.items():
        mine = system_seconds.get(key)
        if mine is None or mine <= 0:
            continue
        out[key] = base / mine
    return out


def cpu_usage_timeline(run_result: RunResult, buckets: int = 20) -> list[tuple[float, float]]:
    """Mean worker utilisation over normalised runtime (the Figure 7 curve).

    Worker busy intervals from every enumeration phase are folded onto a
    single normalised time axis split into ``buckets`` slots; the value of
    each slot is the mean fraction of workers busy during that slot.
    """
    intervals: list[tuple[float, float]] = []
    horizon = 0.0
    offset = 0.0
    worker_count = 1
    for snapshot in run_result.snapshots:
        for outcome in snapshot.enumeration_outcomes:
            worker_count = max(worker_count, len(outcome.worker_stats) or 1)
            for stats in outcome.worker_stats:
                for start, end in stats.busy_intervals:
                    intervals.append((offset + start, offset + end))
            offset += outcome.wall_seconds
    horizon = offset
    if horizon <= 0 or not intervals:
        return [(i / buckets, 0.0) for i in range(buckets)]

    series: list[tuple[float, float]] = []
    bucket_width = horizon / buckets
    for b in range(buckets):
        lo = b * bucket_width
        hi = lo + bucket_width
        busy = 0.0
        for start, end in intervals:
            overlap = min(end, hi) - max(start, lo)
            if overlap > 0:
                busy += overlap
        utilisation = busy / (bucket_width * worker_count)
        series.append(((b + 0.5) / buckets, min(1.0, utilisation)))
    return series


def traversals_per_update(run_result: RunResult) -> float:
    """Mean number of filtering traversals per updated edge (Figure 8 metric)."""
    updates = sum(s.num_insertions + s.num_deletions for s in run_result.snapshots)
    if updates == 0:
        return 0.0
    return run_result.total_filter_traversals / updates


def mean_runtime(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input); the paper reports per-suite averages."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
