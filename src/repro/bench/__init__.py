"""Measurement harness shared by the ``benchmarks/`` suite.

The modules here keep the benchmark files themselves small: each
``benchmarks/test_fig*.py`` builds a workload with :mod:`repro.datasets`,
runs the systems through :mod:`repro.bench.harness`, and prints the
paper-shaped table with :mod:`repro.bench.reporting`.
"""

from repro.bench.harness import (
    BenchRun,
    run_bigjoin_inserts,
    run_ceci_per_snapshot,
    run_litcs_stream,
    run_mnemonic_stream,
    run_turboflux_stream,
)
from repro.bench.metrics import cpu_usage_timeline, speedup_table
from repro.bench.reporting import format_series, format_table

__all__ = [
    "BenchRun",
    "run_mnemonic_stream",
    "run_turboflux_stream",
    "run_bigjoin_inserts",
    "run_ceci_per_snapshot",
    "run_litcs_stream",
    "cpu_usage_timeline",
    "speedup_table",
    "format_table",
    "format_series",
]
