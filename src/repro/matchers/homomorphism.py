"""Subgraph homomorphism.

The paper obtains homomorphism from isomorphism by deleting the
injectivity check (line 23 of Figure 4): distinct query nodes may map to
the same data vertex and a single data edge may witness several query
edges.  Everything else — DEBI content, filtering, enumeration order,
masking — is unchanged.
"""

from __future__ import annotations

from repro.core.api import MatchDefinition


class HomomorphismMatcher(MatchDefinition):
    """Non-injective, label-preserving subgraph matching."""

    name = "homomorphism"
    injective = False
    bind_witnesses = False
