"""Subgraph isomorphism (the paper's Figure 4 example).

A data subgraph matches the query iff there is an *injective* mapping of
query nodes to data vertices preserving node labels, edge existence and
edge labels.  This is the default matching semantics of the engine, so
the matcher only pins down the name and the injective flag — exactly the
"a user implements two small functions" story of the paper, where both
functions happen to be the library defaults.
"""

from __future__ import annotations

from repro.core.api import MatchDefinition


class IsomorphismMatcher(MatchDefinition):
    """Injective, label-preserving subgraph matching."""

    name = "isomorphism"
    injective = True
    bind_witnesses = False
