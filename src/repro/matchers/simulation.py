"""Graph-pattern matching by (dual / strong) simulation.

Simulation relaxes subgraph matching from subgraph-level embeddings to a
binary relation between query nodes and data vertices (Ma et al.,
"Capturing topology in graph pattern matching").  The paper programs
both variants on Mnemonic: dual simulation joins the per-edge candidate
sets maintained in DEBI and verifies duality; strong simulation adds a
locality ball around each candidate match of the query's centre node.

The implementations below expose three entry points:

* :func:`dual_simulation` — from-scratch fixpoint over a data graph;
* :func:`dual_simulation_from_debi` — incremental variant seeded from the
  engine's current DEBI (what the paper's Figure 15 runs per window);
* :func:`strong_simulation` — dual simulation restricted to balls of
  radius equal to the query diameter.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import MnemonicEngine


def _label_candidates(graph: DynamicGraph, query: QueryGraph) -> dict[int, set[int]]:
    """Initial simulation relation: vertices whose label matches each query node."""
    relation: dict[int, set[int]] = {}
    for u in query.nodes():
        label = query.node_label(u)
        if label == WILDCARD_LABEL:
            relation[u] = set(graph.vertices())
        else:
            relation[u] = {v for v in graph.vertices() if graph.vertex_label(v) == label}
    return relation


def _edge_label_ok(query_label: int, data_label: int) -> bool:
    return query_label == WILDCARD_LABEL or query_label == data_label


def _refine(graph: DynamicGraph, query: QueryGraph, relation: dict[int, set[int]]) -> dict[int, set[int]]:
    """Run the dual-simulation fixpoint on an initial relation (in place copy)."""
    sim = {u: set(vs) for u, vs in relation.items()}
    changed = True
    while changed:
        changed = False
        for q_edge in query.edges():
            u, w = q_edge.src, q_edge.dst
            # Forward condition: every match of u needs a successor matching w.
            survivors = set()
            for v in sim[u]:
                ok = any(
                    _edge_label_ok(q_edge.label, graph.edge(eid).label)
                    and graph.edge(eid).dst in sim[w]
                    for eid in graph.out_edges(v)
                )
                if ok:
                    survivors.add(v)
            if survivors != sim[u]:
                sim[u] = survivors
                changed = True
            # Dual (backward) condition: every match of w needs a predecessor matching u.
            survivors = set()
            for v in sim[w]:
                ok = any(
                    _edge_label_ok(q_edge.label, graph.edge(eid).label)
                    and graph.edge(eid).src in sim[u]
                    for eid in graph.in_edges(v)
                )
                if ok:
                    survivors.add(v)
            if survivors != sim[w]:
                sim[w] = survivors
                changed = True
    return sim


def dual_simulation(graph: DynamicGraph, query: QueryGraph) -> dict[int, set[int]]:
    """Compute the maximum dual simulation relation of ``query`` in ``graph``.

    Returns ``{}`` when the relation is empty for some query node (no match).
    """
    query.validate()
    sim = _refine(graph, query, _label_candidates(graph, query))
    if any(not matches for matches in sim.values()):
        return {}
    return sim


def dual_simulation_from_debi(engine: "MnemonicEngine") -> dict[int, set[int]]:
    """Incremental dual simulation: seed the relation from the engine's DEBI.

    The candidate set of a non-root query node is the set of child-side
    endpoints of the data edges whose DEBI bit is set for that node's
    column; the root's candidates come from the ``roots`` bit-vector.
    The usual fixpoint then prunes the (much smaller) seeded relation.
    """
    graph = engine.graph
    tree = engine.tree
    query = engine.query
    relation: dict[int, set[int]] = {}
    relation[tree.root] = {
        v for v in graph.vertices() if engine.debi.is_root(v)
    }
    for tree_edge in tree.tree_edges:
        members: set[int] = set()
        for eid in engine.debi.candidates_for_column(tree_edge.column):
            eid = int(eid)
            if not graph.is_alive(eid):
                continue
            record = graph.edge(eid)
            members.add(engine.index_manager.child_endpoint(record, tree_edge))
        relation[tree_edge.child] = members
    sim = _refine(graph, query, relation)
    if any(not matches for matches in sim.values()):
        return {}
    return sim


def _ball(graph: DynamicGraph, center: int, radius: int) -> set[int]:
    """Vertices within ``radius`` undirected hops of ``center``."""
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for eid in graph.incident_edges(vertex):
            record = graph.edge(eid)
            for neighbour in (record.src, record.dst):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append((neighbour, dist + 1))
    return seen


def _restrict_to_ball(graph: DynamicGraph, ball: set[int]) -> DynamicGraph:
    sub = DynamicGraph(recycle_edge_ids=False)
    for v in ball:
        sub.add_vertex(v, graph.vertex_label(v))
    for v in ball:
        for eid in graph.out_edges(v):
            record = graph.edge(eid)
            if record.dst in ball:
                sub.add_edge(record.src, record.dst, record.label, record.timestamp)
    return sub


def query_diameter(query: QueryGraph) -> int:
    """Undirected diameter of the query graph (radius of strong-simulation balls)."""
    best = 0
    nodes = list(query.nodes())
    for start in nodes:
        dist = {start: 0}
        frontier = deque([start])
        while frontier:
            u = frontier.popleft()
            for e in query.incident_edges(u):
                other = e.other(u)
                if other not in dist:
                    dist[other] = dist[u] + 1
                    frontier.append(other)
        best = max(best, max(dist.values()))
    return best


def strong_simulation(graph: DynamicGraph, query: QueryGraph) -> dict[int, dict[int, set[int]]]:
    """Strong simulation: dual simulation confined to balls around candidate centres.

    Returns a mapping ``center vertex -> dual simulation relation inside
    its ball`` for every centre whose ball admits a non-empty relation
    containing the centre as a match of the query's centre node (we use
    the query-tree root selection heuristic as the centre node).
    """
    query.validate()
    radius = query_diameter(query)
    # Candidate centres: vertices whose label matches any query node's label
    # (the standard formulation uses matches of a designated centre node;
    # using the root keeps the result set comparable across runs).
    from repro.query.query_tree import select_root

    centre_node = select_root(query)
    centre_label = query.node_label(centre_node)
    results: dict[int, dict[int, set[int]]] = {}
    for vertex in graph.vertices():
        if centre_label != WILDCARD_LABEL and graph.vertex_label(vertex) != centre_label:
            continue
        ball = _ball(graph, vertex, radius)
        sub = _restrict_to_ball(graph, ball)
        sim = dual_simulation(sub, query)
        if sim and vertex in sim.get(centre_node, set()):
            results[vertex] = sim
    return results
