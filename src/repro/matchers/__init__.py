"""Subgraph matching variants programmed on top of the Mnemonic API.

Each variant is what an end user of the system would write: a
:class:`~repro.core.api.MatchDefinition` subclass (a few lines each,
mirroring the paper's Figure 4 examples), or — for the simulation
family, whose output is a binary relation rather than embeddings —
functions that consume the engine's DEBI directly.
"""

from repro.matchers.homomorphism import HomomorphismMatcher
from repro.matchers.isomorphism import IsomorphismMatcher
from repro.matchers.simulation import (
    dual_simulation,
    dual_simulation_from_debi,
    strong_simulation,
)
from repro.matchers.temporal import TemporalIsomorphismMatcher

__all__ = [
    "IsomorphismMatcher",
    "HomomorphismMatcher",
    "TemporalIsomorphismMatcher",
    "dual_simulation",
    "dual_simulation_from_debi",
    "strong_simulation",
]
