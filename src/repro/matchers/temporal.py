"""Time-constrained subgraph isomorphism (the Li et al. comparison, Figure 16).

Query edges carry a ``time_rank``; an embedding is accepted only when
the timestamps of its data edges respect the ranks' order — edges with a
smaller rank must not be newer than edges with a larger rank.  Because
the predicate inspects the data edge bound to *every* query edge, the
matcher enables witness binding so non-tree constraints are materialised
instead of being boolean checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.api import MatchDefinition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.enumeration import EnumerationContext
    from repro.core.results import Embedding


class TemporalIsomorphismMatcher(MatchDefinition):
    """Subgraph isomorphism with a temporal-order constraint on query edges.

    Parameters
    ----------
    strict:
        When True, edges with strictly increasing ranks must have strictly
        increasing timestamps; when False (default) ties are allowed.
    """

    name = "temporal-isomorphism"
    injective = True
    bind_witnesses = True

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict

    def accept(self, context: "EnumerationContext", embedding: "Embedding") -> bool:
        ranked: list[tuple[int, float]] = []
        edge_map = embedding.edges()
        for q_edge in context.query.edges():
            if q_edge.time_rank is None:
                continue
            data_edge_id = edge_map.get(q_edge.index)
            if data_edge_id is None:
                # The constraint edge was not bound (should not happen with
                # bind_witnesses=True); be conservative and reject.
                return False
            ranked.append((q_edge.time_rank, context.graph.edge(data_edge_id).timestamp))
        ranked.sort(key=lambda item: item[0])
        for (rank_a, ts_a), (rank_b, ts_b) in zip(ranked, ranked[1:]):
            if rank_a == rank_b:
                continue
            if self.strict and not ts_a < ts_b:
                return False
            if not self.strict and ts_a > ts_b:
                return False
        return True
