"""Query tree: root selection and BFS spanning tree of the query graph.

The query tree (Figure 1(f) of the paper) is a BFS spanning tree of the
query graph rooted at the most selective query node.  Parent/child
relationships ignore edge direction: ``u0`` is the parent of ``u2`` even
if the query edge points from ``u2`` to ``u0``.  Every non-root node
owns one DEBI column (its *tree edge* from its parent); the remaining
query edges are *non-tree* edges verified during enumeration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.query.query_graph import WILDCARD_LABEL, QueryEdge, QueryGraph
from repro.utils.validation import QueryError


@dataclass(frozen=True)
class TreeEdge:
    """A query-tree edge: the query edge connecting ``child`` to its parent."""

    query_edge: QueryEdge
    parent: int
    child: int
    #: DEBI column owned by ``child`` (0-based over non-root nodes, BFS order)
    column: int

    @property
    def parent_is_src(self) -> bool:
        """True when the underlying query edge is directed parent -> child."""
        return self.query_edge.src == self.parent


def select_root(
    query: QueryGraph,
    data_label_frequencies: dict[int, int] | None = None,
) -> int:
    """Pick the most selective query node to use as the query-tree root.

    The default heuristic mirrors common practice (and the paper's
    "most selective node" choice): prefer nodes whose label is rare in
    the data graph (when label statistics are available), break ties by
    higher query degree, then by node id for determinism.
    """
    def selectivity(node: int) -> tuple:
        label = query.node_label(node)
        if data_label_frequencies and label != WILDCARD_LABEL:
            rarity = data_label_frequencies.get(label, 0)
        elif label == WILDCARD_LABEL:
            rarity = float("inf")
        else:
            rarity = 0
        return (rarity, -query.degree(node), node)

    return min(query.nodes(), key=selectivity)


class QueryTree:
    """BFS spanning tree of a query graph plus derived lookup tables."""

    def __init__(
        self,
        query: QueryGraph,
        root: int | None = None,
        data_label_frequencies: dict[int, int] | None = None,
    ) -> None:
        query.validate()
        self.query = query
        self.root = root if root is not None else select_root(query, data_label_frequencies)
        if self.root not in set(query.nodes()):
            raise QueryError(f"root {self.root} is not a query node")

        self.parent: dict[int, int] = {}
        self.children: dict[int, list[int]] = {u: [] for u in query.nodes()}
        self.depth: dict[int, int] = {self.root: 0}
        #: tree edges in BFS discovery order
        self.tree_edges: list[TreeEdge] = []
        #: query-edge index -> TreeEdge for tree edges
        self.tree_edge_by_query_edge: dict[int, TreeEdge] = {}
        #: child node -> TreeEdge
        self.tree_edge_by_child: dict[int, TreeEdge] = {}
        #: query edges not in the tree
        self.non_tree_edges: list[QueryEdge] = []
        #: BFS order of query nodes starting at the root
        self.bfs_order: list[int] = [self.root]

        self._build()

    def _build(self) -> None:
        query = self.query
        visited = {self.root}
        used_edges: set[int] = set()
        queue: deque[int] = deque([self.root])
        column = 0
        while queue:
            node = queue.popleft()
            for edge in query.incident_edges(node):
                other = edge.other(node)
                if other in visited or edge.index in used_edges:
                    continue
                # Parallel query edges to an already-visited node stay non-tree.
                visited.add(other)
                used_edges.add(edge.index)
                tree_edge = TreeEdge(edge, parent=node, child=other, column=column)
                column += 1
                self.tree_edges.append(tree_edge)
                self.tree_edge_by_query_edge[edge.index] = tree_edge
                self.tree_edge_by_child[other] = tree_edge
                self.parent[other] = node
                self.children[node].append(other)
                self.depth[other] = self.depth[node] + 1
                self.bfs_order.append(other)
                queue.append(other)
        self.non_tree_edges = [e for e in query.edges() if e.index not in used_edges]

    # ------------------------------------------------------------------ lookups
    @property
    def num_columns(self) -> int:
        """Number of DEBI columns (= number of non-root query nodes)."""
        return len(self.tree_edges)

    def column_of(self, child: int) -> int:
        """DEBI column owned by non-root query node ``child``."""
        try:
            return self.tree_edge_by_child[child].column
        except KeyError as exc:
            raise QueryError(f"node {child} has no query-tree column (is it the root?)") from exc

    def is_tree_edge(self, query_edge_index: int) -> bool:
        return query_edge_index in self.tree_edge_by_query_edge

    def tree_edge_for(self, query_edge_index: int) -> TreeEdge:
        try:
            return self.tree_edge_by_query_edge[query_edge_index]
        except KeyError as exc:
            raise QueryError(f"query edge {query_edge_index} is not a tree edge") from exc

    def path_to_root(self, node: int) -> list[int]:
        """Nodes from ``node`` up to (and including) the root."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def leaves(self) -> list[int]:
        """Query nodes with no children in the tree."""
        return [u for u, kids in self.children.items() if not kids]

    def diameter_bound(self) -> int:
        """Tree height (bound on how far update effects propagate)."""
        return max(self.depth.values()) if self.depth else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryTree(root={self.root}, tree_edges={len(self.tree_edges)}, "
            f"non_tree_edges={len(self.non_tree_edges)})"
        )
