"""Random query workload generation.

The paper follows TurboFlux's methodology: queries are extracted from
the data graph itself (so every query has at least one embedding), in
two families —

* **tree queries** ``T_k``: acyclic patterns with ``k`` nodes;
* **graph queries** ``G_k``: cyclic patterns with ``k`` nodes obtained by
  adding one or more existing data edges between already-selected nodes.

For the LANL temporal experiments, query edges additionally carry a
``time_rank`` derived from the timestamps of the underlying data edges,
so that time-constrained isomorphism has a meaningful ordering to
enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryGraph
from repro.utils.rng import make_rng
from repro.utils.validation import QueryError, check_positive


@dataclass
class QueryWorkload:
    """A named collection of query suites, e.g. ``{"T_3": [...], "G_6": [...]}``."""

    suites: dict[str, list[QueryGraph]] = field(default_factory=dict)

    def add(self, suite: str, query: QueryGraph) -> None:
        self.suites.setdefault(suite, []).append(query)

    def queries(self, suite: str) -> list[QueryGraph]:
        return self.suites.get(suite, [])

    def suite_names(self) -> list[str]:
        return list(self.suites)

    def __iter__(self):
        for suite, queries in self.suites.items():
            for query in queries:
                yield suite, query

    def total(self) -> int:
        return sum(len(qs) for qs in self.suites.values())


class QueryGenerator:
    """Extract random tree / cyclic queries from a data graph."""

    def __init__(self, graph: DynamicGraph, seed: int | np.random.Generator = 0) -> None:
        if graph.num_edges == 0:
            raise QueryError("cannot extract queries from an empty data graph")
        self.graph = graph
        self.rng = make_rng(seed)
        self._live_edge_ids = [e.edge_id for e in graph.edges()]

    # ------------------------------------------------------------------ single queries
    def tree_query(
        self,
        num_nodes: int,
        with_timestamps: bool = False,
        max_attempts: int = 200,
    ) -> QueryGraph:
        """Extract an acyclic query with ``num_nodes`` nodes."""
        check_positive(num_nodes, "num_nodes")
        if num_nodes < 2:
            raise QueryError("queries need at least 2 nodes")
        for _ in range(max_attempts):
            sample = self._grow_tree(num_nodes)
            if sample is not None:
                return self._to_query_graph(sample, extra_edges=0,
                                            with_timestamps=with_timestamps)
        raise QueryError(
            f"failed to extract a tree query of size {num_nodes} after {max_attempts} attempts; "
            "the data graph may be too small or too disconnected"
        )

    def graph_query(
        self,
        num_nodes: int,
        extra_edges: int = 1,
        with_timestamps: bool = False,
        max_attempts: int = 200,
    ) -> QueryGraph:
        """Extract a cyclic query: a tree core plus ``extra_edges`` closing edges."""
        check_positive(num_nodes, "num_nodes")
        check_positive(extra_edges, "extra_edges")
        for _ in range(max_attempts):
            sample = self._grow_tree(num_nodes)
            if sample is None:
                continue
            query = self._to_query_graph(sample, extra_edges=extra_edges,
                                         with_timestamps=with_timestamps)
            if query.num_edges > query.num_nodes - 1:
                return query
        raise QueryError(
            f"failed to extract a cyclic query of size {num_nodes} after {max_attempts} attempts; "
            "no closing edges found among the sampled vertices"
        )

    # ------------------------------------------------------------------ workloads
    def workload(
        self,
        tree_sizes: tuple[int, ...] = (3, 6, 9, 12),
        graph_sizes: tuple[int, ...] = (6, 9, 12),
        queries_per_suite: int = 5,
        with_timestamps: bool = False,
    ) -> QueryWorkload:
        """Build the paper's T_k / G_k workload (sizes and counts configurable)."""
        check_positive(queries_per_suite, "queries_per_suite")
        workload = QueryWorkload()
        for size in tree_sizes:
            for _ in range(queries_per_suite):
                workload.add(f"T_{size}", self.tree_query(size, with_timestamps))
        for size in graph_sizes:
            for _ in range(queries_per_suite):
                workload.add(f"G_{size}", self.graph_query(size, with_timestamps=with_timestamps))
        return workload

    # ------------------------------------------------------------------ internals
    def _grow_tree(self, num_nodes: int) -> dict | None:
        """Grow a random connected acyclic vertex sample; return its edges."""
        graph = self.graph
        start_eid = int(self._live_edge_ids[self.rng.integers(len(self._live_edge_ids))])
        start = graph.edge(start_eid)
        vertices = [start.src, start.dst]
        vertex_set = {start.src, start.dst}
        if start.src == start.dst:
            return None  # self-loop seeds do not grow trees
        tree_edges = [start]
        frontier = [start.src, start.dst]
        while len(vertex_set) < num_nodes and frontier:
            pivot = frontier[int(self.rng.integers(len(frontier)))]
            candidates = [
                eid for eid in graph.incident_edges(pivot)
                if (graph.edge(eid).src not in vertex_set) != (graph.edge(eid).dst not in vertex_set)
            ]
            if not candidates:
                frontier.remove(pivot)
                continue
            eid = int(candidates[int(self.rng.integers(len(candidates)))])
            record = graph.edge(eid)
            new_vertex = record.dst if record.src in vertex_set else record.src
            vertex_set.add(new_vertex)
            vertices.append(new_vertex)
            frontier.append(new_vertex)
            tree_edges.append(record)
        if len(vertex_set) < num_nodes:
            return None
        return {"vertices": vertices, "tree_edges": tree_edges}

    def _to_query_graph(self, sample: dict, extra_edges: int, with_timestamps: bool) -> QueryGraph:
        graph = self.graph
        vertices: list[int] = sample["vertices"]
        mapping = {v: i for i, v in enumerate(vertices)}
        vertex_set = set(vertices)

        chosen: list = list(sample["tree_edges"])
        if extra_edges > 0:
            used_ids = {e.edge_id for e in chosen}
            closing: list = []
            for v in vertices:
                for eid in graph.out_edges(v):
                    record = graph.edge(eid)
                    if record.dst in vertex_set and record.edge_id not in used_ids:
                        closing.append(record)
            self.rng.shuffle(closing)
            chosen.extend(closing[:extra_edges])

        if with_timestamps:
            ranked = sorted(chosen, key=lambda r: (r.timestamp, r.edge_id))
            ranks = {r.edge_id: rank for rank, r in enumerate(ranked)}
        else:
            ranks = {}

        query = QueryGraph()
        for v in vertices:
            query.add_node(mapping[v], graph.vertex_label(v))
        for record in chosen:
            query.add_edge(
                mapping[record.src],
                mapping[record.dst],
                record.label,
                time_rank=ranks.get(record.edge_id),
            )
        query.validate()
        return query
