"""Query graph representation.

Query graphs are small directed labelled graphs (at most a few dozen
nodes in all of the paper's workloads).  Node and edge labels may be the
wildcard :data:`WILDCARD_LABEL`, which matches any data label — the
paper's example query has wildcard edge labels.  Query edges may carry a
timestamp *rank* used by the time-constrained isomorphism variant: an
embedding must map edges so that their data timestamps respect the
ranks' total/partial order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.utils.validation import QueryError

#: Label value that matches any node/edge label.
WILDCARD_LABEL = -1


@dataclass(frozen=True)
class QueryEdge:
    """A directed query edge.  ``index`` is its canonical position."""

    index: int
    src: int
    dst: int
    label: int = WILDCARD_LABEL
    #: optional temporal rank for time-constrained matching (lower = earlier)
    time_rank: int | None = None

    def endpoints(self) -> tuple[int, int]:
        return (self.src, self.dst)

    def other(self, node: int) -> int:
        """Return the endpoint that is not ``node``."""
        if node == self.src:
            return self.dst
        if node == self.dst:
            return self.src
        raise QueryError(f"node {node} is not an endpoint of query edge {self.index}")

    def touches(self, node: int) -> bool:
        return node == self.src or node == self.dst


class QueryGraph:
    """A small directed, labelled pattern graph.

    Nodes are integers; use :meth:`add_node` to assign labels and
    :meth:`add_edge` to add (possibly parallel) edges.  The graph must be
    weakly connected and non-empty before it is handed to the engine
    (checked by :meth:`validate`).
    """

    def __init__(self) -> None:
        self._node_labels: dict[int, int] = {}
        self._edges: list[QueryEdge] = []
        self._incident: dict[int, list[int]] = {}

    # ------------------------------------------------------------------ construction
    def add_node(self, node: int, label: int = WILDCARD_LABEL) -> None:
        """Add ``node`` with ``label`` (re-adding with the same label is a no-op)."""
        existing = self._node_labels.get(node)
        if existing is not None and existing != label:
            raise QueryError(f"query node {node} already has label {existing}")
        self._node_labels[node] = label
        self._incident.setdefault(node, [])

    def add_edge(
        self,
        src: int,
        dst: int,
        label: int = WILDCARD_LABEL,
        time_rank: int | None = None,
    ) -> QueryEdge:
        """Add a directed query edge; endpoints are auto-added with wildcard labels."""
        if src not in self._node_labels:
            self.add_node(src)
        if dst not in self._node_labels:
            self.add_node(dst)
        edge = QueryEdge(len(self._edges), src, dst, label, time_rank)
        self._edges.append(edge)
        self._incident[src].append(edge.index)
        if dst != src:  # self-loops appear once in the incidence list
            self._incident[dst].append(edge.index)
        return edge

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple],
        node_labels: dict[int, int] | None = None,
    ) -> "QueryGraph":
        """Build a query graph from (src, dst[, label[, time_rank]]) tuples."""
        graph = cls()
        for node, label in (node_labels or {}).items():
            graph.add_node(node, label)
        for item in edges:
            graph.add_edge(*item)
        return graph

    # ------------------------------------------------------------------ accessors
    def node_label(self, node: int) -> int:
        try:
            return self._node_labels[node]
        except KeyError as exc:
            raise QueryError(f"unknown query node {node}") from exc

    def nodes(self) -> Iterator[int]:
        return iter(self._node_labels)

    def edges(self) -> list[QueryEdge]:
        return list(self._edges)

    def edge(self, index: int) -> QueryEdge:
        try:
            return self._edges[index]
        except IndexError as exc:
            raise QueryError(f"unknown query edge index {index}") from exc

    def incident_edges(self, node: int) -> list[QueryEdge]:
        """All query edges touching ``node``."""
        return [self._edges[i] for i in self._incident.get(node, ())]

    def edges_between(self, a: int, b: int) -> list[QueryEdge]:
        """All query edges with endpoint set {a, b} (either direction)."""
        return [
            e for e in self.incident_edges(a)
            if (e.src == a and e.dst == b) or (e.src == b and e.dst == a)
        ]

    def degree(self, node: int) -> int:
        return len(self._incident.get(node, ()))

    def neighbors(self, node: int) -> set[int]:
        """Set of nodes adjacent to ``node`` ignoring direction."""
        return {e.other(node) for e in self.incident_edges(node)}

    @property
    def num_nodes(self) -> int:
        return len(self._node_labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def label_frequencies(self) -> dict[int, int]:
        """Count of query nodes per label (used by root-selection heuristics)."""
        freq: dict[int, int] = {}
        for label in self._node_labels.values():
            freq[label] = freq.get(label, 0) + 1
        return freq

    def out_label_requirement(self, node: int) -> dict[int, int]:
        """For ``f2``: number of outgoing query edges of ``node`` per edge label."""
        req: dict[int, int] = {}
        for e in self.incident_edges(node):
            if e.src == node:
                req[e.label] = req.get(e.label, 0) + 1
        return req

    def in_label_requirement(self, node: int) -> dict[int, int]:
        """For ``f2``: number of incoming query edges of ``node`` per edge label."""
        req: dict[int, int] = {}
        for e in self.incident_edges(node):
            if e.dst == node:
                req[e.label] = req.get(e.label, 0) + 1
        return req

    # ------------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`QueryError` unless the query is non-empty and weakly connected."""
        if self.num_nodes == 0 or self.num_edges == 0:
            raise QueryError("query graph must contain at least one edge")
        seen: set[int] = set()
        stack = [next(iter(self._node_labels))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for e in self.incident_edges(node):
                stack.append(e.other(node))
        if len(seen) != self.num_nodes:
            missing = set(self._node_labels) - seen
            raise QueryError(f"query graph is disconnected; unreachable nodes: {sorted(missing)}")

    def is_tree(self) -> bool:
        """True when the query (ignoring direction) is acyclic and connected."""
        try:
            self.validate()
        except QueryError:
            return False
        return self.num_edges == self.num_nodes - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryGraph(|V|={self.num_nodes}, |E|={self.num_edges})"
