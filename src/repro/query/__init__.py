"""Query model: query graphs, query trees, matching orders and masks.

A *query graph* is the small pattern to search for.  Mnemonic turns it
into a *query tree* (a BFS spanning tree rooted at the most selective
node); the tree edges drive DEBI columns and candidate extension while
the remaining (*non-tree*) edges are verified during enumeration.

For every possible starting query edge the engine needs a dedicated
*matching order* (Section VI, "Matching order computation") and a
*duplicate-elimination mask* (Section VI, "Duplicates Removal"); both
are computed once per query by this package and cached.
"""

from repro.query.generator import QueryGenerator, QueryWorkload
from repro.query.masking import MaskTable
from repro.query.matching_order import ExtensionStep, MatchingOrder, build_matching_orders
from repro.query.query_graph import WILDCARD_LABEL, QueryEdge, QueryGraph
from repro.query.query_tree import QueryTree, TreeEdge

__all__ = [
    "QueryGraph",
    "QueryEdge",
    "WILDCARD_LABEL",
    "QueryTree",
    "TreeEdge",
    "MatchingOrder",
    "ExtensionStep",
    "build_matching_orders",
    "MaskTable",
    "QueryGenerator",
    "QueryWorkload",
]
