"""Per-start-edge matching orders.

Because an update batch can touch any query edge, enumeration may start
from *any* query edge (Section VI, "Matching order computation").  For a
start edge pinning query nodes ``{a, b}``, the order binds the remaining
query nodes so that every newly bound node is adjacent — in the query
tree — to an already-bound node:

1. the nodes on the path from the deeper pinned endpoint up to the root
   (this is the paper's "path from u to the root query node is placed
   first");
2. the rest of the query tree in BFS order.

Each :class:`ExtensionStep` also lists the *verification edges*: every
query edge (tree or non-tree) between the newly bound node and nodes
bound earlier, other than the tree edge used for the extension.  Those
are the constraints the enumerator checks with ``verify_nte``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.query_graph import WILDCARD_LABEL, QueryEdge, QueryGraph
from repro.query.query_tree import QueryTree
from repro.utils.validation import QueryError


@dataclass(frozen=True)
class ExtensionStep:
    """Bind one new query node from an already-bound anchor node."""

    #: query node being bound by this step
    node: int
    #: already-bound query node used to extend (tree parent or child of ``node``)
    anchor: int
    #: the query edge (always a tree edge) connecting anchor and node
    tree_edge_index: int
    #: True when ``anchor`` is the source of that query edge
    anchor_is_src: bool
    #: DEBI column to consult for candidate data edges
    debi_column: int | None
    #: other query edges between ``node`` and already-bound nodes to verify
    verify_edges: tuple[int, ...] = ()
    #: label of the tree edge (WILDCARD_LABEL when unconstrained); selects
    #: the adjacency partition the candidate pool is fetched from
    edge_label: int = WILDCARD_LABEL


@dataclass(frozen=True)
class MatchingOrder:
    """The full enumeration recipe for one starting query edge."""

    #: index of the query edge the work unit pins
    start_edge: int
    #: endpoints of the start edge (src, dst) in query-graph direction
    start_src: int
    start_dst: int
    #: query edges between the two start endpoints other than the start edge
    start_verify_edges: tuple[int, ...]
    #: node-binding steps for the remaining query nodes
    steps: tuple[ExtensionStep, ...]

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def _order_remaining_nodes(tree: QueryTree, bound: set[int]) -> list[int]:
    """Order unbound query nodes: path-to-root first, then BFS order."""
    ordered: list[int] = []
    seen = set(bound)
    # Path from the deeper bound endpoint towards the root.
    deepest = max(bound, key=lambda u: tree.depth[u])
    for node in tree.path_to_root(deepest):
        if node not in seen:
            ordered.append(node)
            seen.add(node)
    # Remaining nodes in BFS order from the root.
    for node in tree.bfs_order:
        if node not in seen:
            ordered.append(node)
            seen.add(node)
    return ordered


def _step_for(tree: QueryTree, query: QueryGraph, node: int, bound: set[int]) -> ExtensionStep:
    """Build the extension step binding ``node`` from the bound set."""
    # The anchor is the tree neighbour (parent or one child) already bound.
    anchor: int | None = None
    tree_edge = None
    parent = tree.parent.get(node)
    if parent is not None and parent in bound:
        anchor = parent
        tree_edge = tree.tree_edge_by_child[node]
    else:
        for child in tree.children[node]:
            if child in bound:
                anchor = child
                tree_edge = tree.tree_edge_by_child[child]
                break
    if anchor is None or tree_edge is None:
        raise QueryError(
            f"matching order construction failed: node {node} has no bound tree neighbour"
        )
    qedge = tree_edge.query_edge
    anchor_is_src = qedge.src == anchor
    # The DEBI column consulted is the one owned by the tree edge itself
    # (i.e. by its child node), regardless of which endpoint is the anchor.
    debi_column = tree_edge.column
    verify = tuple(
        e.index
        for e in query.incident_edges(node)
        if e.index != qedge.index and (e.other(node) in bound or e.other(node) == node)
    )
    return ExtensionStep(
        node=node,
        anchor=anchor,
        tree_edge_index=qedge.index,
        anchor_is_src=anchor_is_src,
        debi_column=debi_column,
        verify_edges=verify,
        edge_label=qedge.label,
    )


def build_matching_order(query: QueryGraph, tree: QueryTree, start_edge: QueryEdge) -> MatchingOrder:
    """Compute the matching order for enumeration starting at ``start_edge``."""
    bound = {start_edge.src, start_edge.dst}
    # Every other query edge whose endpoints are both pinned by the start edge
    # (parallel edges, the reverse edge, and self-loops at either endpoint)
    # must be verified before any extension happens.
    start_verify_set = {
        e.index
        for node in bound
        for e in query.incident_edges(node)
        if e.index != start_edge.index and e.src in bound and e.dst in bound
    }
    start_verify = tuple(sorted(start_verify_set))
    steps: list[ExtensionStep] = []
    for node in _order_remaining_nodes(tree, bound):
        step = _step_for(tree, query, node, bound)
        steps.append(step)
        bound.add(node)
    return MatchingOrder(
        start_edge=start_edge.index,
        start_src=start_edge.src,
        start_dst=start_edge.dst,
        start_verify_edges=start_verify,
        steps=tuple(steps),
    )


def build_matching_orders(query: QueryGraph, tree: QueryTree) -> dict[int, MatchingOrder]:
    """Compute and cache one matching order per query edge (tree and non-tree)."""
    return {edge.index: build_matching_order(query, tree, edge) for edge in query.edges()}
