"""Duplicate-elimination masks (Section VI, "Duplicates Removal").

When a whole batch of insertions is applied to DEBI before enumeration,
an embedding that uses two or more edges of the batch would be emitted
once for every one of those edges.  Mnemonic prevents this with a mask
per starting query edge: when enumeration starts at query-edge position
``i``, query edges at *earlier* canonical positions may not be matched
to edges of the current batch.  An embedding whose batch edges occupy
positions ``S`` is therefore emitted exactly once — from ``min(S)``.

For non-tree start edges one extra condition is required (and encoded in
:attr:`MaskTable.require_no_old_witness`): the pinned non-tree constraint
must have *no* pre-existing witness, otherwise the same node mapping
would also be reachable from a later start position using the old
witness, producing a duplicate.

The canonical position of a query edge is simply its index in the query
graph, matching the paper's Table I layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.query_graph import QueryGraph
from repro.query.query_tree import QueryTree


@dataclass(frozen=True)
class Mask:
    """Mask for one starting query edge."""

    start_edge: int
    #: query edge indexes that may NOT use current-batch edges
    masked_edges: frozenset[int]
    #: True when the start edge is a non-tree edge: the pinned constraint
    #: must not have any witness that predates the batch
    require_no_old_witness: bool

    def is_masked(self, query_edge_index: int) -> bool:
        return query_edge_index in self.masked_edges


class MaskTable:
    """All per-start-edge masks for a query (the paper's Table I)."""

    def __init__(self, query: QueryGraph, tree: QueryTree) -> None:
        self.query = query
        self.tree = tree
        self._masks: dict[int, Mask] = {}
        for edge in query.edges():
            masked = frozenset(range(edge.index))
            self._masks[edge.index] = Mask(
                start_edge=edge.index,
                masked_edges=masked,
                require_no_old_witness=not tree.is_tree_edge(edge.index),
            )

    def mask_for(self, start_edge_index: int) -> Mask:
        return self._masks[start_edge_index]

    def as_table(self) -> list[list[str]]:
        """Render the mask table like the paper's Table I (``*`` marks the start edge)."""
        size = self.query.num_edges
        rows = []
        for start in range(size):
            mask = self._masks[start]
            row = []
            for pos in range(size):
                if pos == start:
                    row.append("*")
                elif mask.is_masked(pos):
                    row.append("1")
                else:
                    row.append("0")
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self._masks)
