"""Append-only, CRC-framed epoch journal.

One journal file per engine.  Each record is framed as::

    magic(4) | kind(1) | epoch(8, signed LE) | length(4, LE) | crc32(4, LE) | payload

where ``crc32`` covers the payload bytes only.  Payloads are pickled
Python values — event-tuple lists for ``INITIAL``/``EPOCH`` records and
query definitions for ``REGISTER``.  The framing lets the scanner detect
every corruption mode the fault-injection suite throws at it: a torn
header (fewer than 21 bytes left), a clobbered magic, a truncated payload
(declared length runs past EOF) and bit flips (CRC mismatch).  Scanning
stops at the first bad frame and reports the byte offset of the last good
one, so recovery replays a strict prefix and truncates the tail before
appending again.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path
from typing import Any

MAGIC = b"MNJ1"
_HEADER = struct.Struct("<4sBqII")  # magic, kind, epoch, payload_len, payload_crc
HEADER_BYTES = _HEADER.size


class RecordKind(IntEnum):
    """Journal record types."""

    INITIAL = 1   #: ``load_initial`` bulk load (insert events, no enumeration)
    EPOCH = 2     #: one sealed batch: (insert event tuples, delete event tuples)
    REGISTER = 3  #: multi-query: a query registered (payload: definition dict)
    UNREGISTER = 4  #: multi-query: a query retired (payload: query id)


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal frame."""

    kind: RecordKind
    epoch: int
    payload: bytes
    #: byte offset of the frame start in the journal file
    offset: int

    def data(self) -> Any:
        """Unpickle the payload."""
        return pickle.loads(self.payload)


@dataclass(frozen=True)
class JournalScan:
    """Result of scanning a journal tail."""

    records: list[JournalRecord]
    #: offset one past the last intact record — the truncation point
    valid_bytes: int
    #: human-readable reason scanning stopped early, or None if clean EOF
    corruption: str | None


def encode_record(kind: RecordKind, epoch: int, payload: bytes) -> bytes:
    """Frame ``payload`` as one journal record."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, int(kind), epoch, len(payload), crc) + payload


def scan_journal(path: str | Path, start: int = 0) -> JournalScan:
    """Decode records from byte offset ``start`` to the first corruption/EOF."""
    path = Path(path)
    if not path.exists():
        return JournalScan(records=[], valid_bytes=start, corruption=None)
    data = path.read_bytes()
    if start > len(data):
        return JournalScan(
            records=[], valid_bytes=len(data),
            corruption=f"journal shorter than checkpoint offset {start}",
        )
    records: list[JournalRecord] = []
    pos = start
    corruption: str | None = None
    while pos < len(data):
        remaining = len(data) - pos
        if remaining < HEADER_BYTES:
            corruption = f"torn header at offset {pos} ({remaining} trailing bytes)"
            break
        magic, kind, epoch, length, crc = _HEADER.unpack_from(data, pos)
        if magic != MAGIC:
            corruption = f"bad magic at offset {pos}"
            break
        if remaining - HEADER_BYTES < length:
            corruption = f"torn payload at offset {pos} (declared {length} bytes)"
            break
        payload = data[pos + HEADER_BYTES : pos + HEADER_BYTES + length]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            corruption = f"CRC mismatch at offset {pos}"
            break
        try:
            record_kind = RecordKind(kind)
        except ValueError:
            corruption = f"unknown record kind {kind} at offset {pos}"
            break
        records.append(JournalRecord(kind=record_kind, epoch=epoch, payload=payload, offset=pos))
        pos += HEADER_BYTES + length
    return JournalScan(records=records, valid_bytes=pos, corruption=corruption)


class JournalWriter:
    """Appends framed records to the journal file.

    Every append flushes to the OS (surviving process death); ``fsync``
    additionally pushes to stable storage per record.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._file = open(self.path, "ab")
        self.offset = self._file.tell()

    def append(self, kind: RecordKind, epoch: int, value: Any) -> int:
        """Pickle ``value``, frame it and append; returns the new end offset."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        frame = encode_record(kind, epoch, payload)
        self._file.write(frame)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.offset += len(frame)
        return self.offset

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    @staticmethod
    def truncate(path: str | Path, valid_bytes: int) -> None:
        """Drop a corrupt tail so future appends extend a clean prefix."""
        path = Path(path)
        if path.exists() and path.stat().st_size > valid_bytes:
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
