"""Configuration for the durable-state subsystem."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.utils.validation import ConfigurationError


@dataclass
class StorageConfig:
    """Knobs for durable state, attached via ``EngineConfig.storage``.

    Parameters
    ----------
    directory:
        Root directory for all durable state of one engine: ``meta.json``,
        ``journal.log``, ``checkpoints/`` and per-query ``debi/`` segment
        directories.  One engine per directory.
    checkpoint_interval:
        Take a checkpoint every this many sealed epochs (``None`` disables
        periodic checkpoints; the initial "checkpoint 0" written when the
        engine attaches is always present so recovery has a base image).
        In pipelined mode a due checkpoint is deferred until the engine is
        quiescent (every applied batch also delivered), so the checkpoint
        never captures mutations whose journal records are not yet sealed.
    fsync:
        When True, fsync the journal after every sealed epoch and each
        checkpoint payload.  Durable against machine crashes, but adds a
        per-epoch latency floor; the default (False) only flushes to the
        OS page cache, which survives process crashes — the failure mode
        the recovery suite simulates.
    debi_hot_rows:
        Hot-row budget per query: DEBI rows (edge ids) below this bound
        stay in one RAM-resident numpy array, rows at or beyond it live in
        mmap'd segment files.  ``None`` keeps the whole DEBI in memory
        (journal + checkpoints still active).
    debi_segment_rows:
        Rows per cold segment file (8 bytes per row on disk).
    keep_checkpoints:
        Number of most recent checkpoints to retain; older ones are
        pruned after a successful save.  At least 2 is recommended so a
        corrupt latest checkpoint can fall back to its predecessor.
    """

    directory: str | Path
    checkpoint_interval: int | None = 8
    fsync: bool = False
    debi_hot_rows: int | None = None
    debi_segment_rows: int = 4096
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if not str(self.directory):
            raise ConfigurationError("storage directory must be a non-empty path")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be positive or None, got {self.checkpoint_interval}"
            )
        if self.debi_hot_rows is not None and self.debi_hot_rows <= 0:
            raise ConfigurationError(
                f"debi_hot_rows must be positive or None, got {self.debi_hot_rows}"
            )
        if self.debi_segment_rows <= 0:
            raise ConfigurationError(
                f"debi_segment_rows must be positive, got {self.debi_segment_rows}"
            )
        if self.keep_checkpoints < 1:
            raise ConfigurationError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )

    @property
    def path(self) -> Path:
        return Path(self.directory)
