"""Per-engine durable-state driver: meta file, journal, checkpoint cadence.

One :class:`EngineStorage` owns one directory::

    <directory>/
        meta.json          engine kind ("single" | "multi") + format version
        journal.log        CRC-framed epoch journal (append-only)
        checkpoints/       ck_<seq>.pkl + ck_<seq>.json pairs
        debi/q<id>/        cold-tier segment files per registered query

The engines call four hooks:

* :meth:`note_applied` — a batch's mutations hit the live graph;
* :meth:`seal_epoch` — a batch's results were *delivered* (stream
  order): the epoch's events are appended to the journal, and a
  checkpoint is taken when due **and** the engine is quiescent
  (every applied batch also sealed).  In pipelined mode mutations run
  ahead of deliveries, so a due checkpoint is deferred until the two
  counters meet again — otherwise the checkpoint image would contain
  mutations whose journal records do not exist yet, and recovery would
  double-apply them on refeed;
* :meth:`note_initial` — ``load_initial``'s bulk insert (journaled as
  one ``INITIAL`` record, applied and sealed at once);
* :meth:`checkpoint_if_due` / :meth:`checkpoint_now` — cadence.

Recovery (:meth:`open_existing`) loads the newest usable checkpoint,
scans the journal from the checkpoint's recorded byte offset, and hands
the decoded tail records to the engine's ``open()`` for replay.  The
journal is truncated at the last intact record before appends resume, so
a torn tail can never be half-replayed twice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.storage.checkpoint import CheckpointError, CheckpointManager
from repro.storage.config import StorageConfig
from repro.storage.journal import JournalRecord, JournalWriter, RecordKind, scan_journal
from repro.storage.recovery import event_tuples
from repro.utils.validation import ConfigurationError

ENGINE_KINDS = ("single", "multi")
FORMAT_VERSION = 1


class StorageError(Exception):
    """Durable state exists but cannot be recovered (no usable checkpoint)."""


@dataclass
class RecoveredState:
    """Everything ``Engine.open`` needs to rebuild and replay."""

    storage: "EngineStorage"
    #: unpickled state of the newest usable checkpoint
    checkpoint_state: Any
    #: decoded journal records from the checkpoint offset to the last intact one
    records: list[JournalRecord]
    #: summary surfaced as ``engine.recovery_info``
    info: dict = field(default_factory=dict)


class EngineStorage:
    def __init__(self, config: StorageConfig, kind: str) -> None:
        if kind not in ENGINE_KINDS:
            raise ValueError(f"engine kind must be one of {ENGINE_KINDS}, got {kind!r}")
        self.config = config
        self.kind = kind
        self.directory = config.path
        self.checkpoints = CheckpointManager(
            self.directory / "checkpoints",
            keep=config.keep_checkpoints,
            fsync=config.fsync,
        )
        self._journal: JournalWriter | None = None
        #: False while ``open()`` replays the journal: hooks become no-ops
        self.recording = False
        self._applied = 0
        self._sealed = 0
        self._since_checkpoint = 0
        self._checkpoint_due = False
        self._checkpoints_written = 0
        self._last_sealed_number: int | None = None

    # ------------------------------------------------------------------ paths
    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.log"

    @property
    def meta_path(self) -> Path:
        return self.directory / "meta.json"

    def debi_directory(self, query_id: int) -> Path:
        return self.directory / "debi" / f"q{query_id}"

    # ------------------------------------------------------------------ attach
    @staticmethod
    def has_state(directory: str | Path) -> bool:
        directory = Path(directory)
        return (directory / "meta.json").exists() or (directory / "journal.log").exists()

    @staticmethod
    def peek_kind(directory: str | Path) -> str:
        """Read the engine kind from an existing state directory."""
        meta_path = Path(directory) / "meta.json"
        if not meta_path.exists():
            raise StorageError(f"no durable state at {directory} (meta.json missing)")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        kind = meta.get("kind")
        if kind not in ENGINE_KINDS:
            raise StorageError(f"unrecognised engine kind {kind!r} in {meta_path}")
        return kind

    @classmethod
    def create(cls, config: StorageConfig, kind: str) -> "EngineStorage":
        """Attach a *fresh* engine to an empty (or new) directory."""
        directory = config.path
        directory.mkdir(parents=True, exist_ok=True)
        if cls.has_state(directory):
            raise ConfigurationError(
                f"storage directory {directory} already contains durable state; "
                "recover it with MnemonicEngine.open / MultiQueryEngine.open / "
                "MnemonicService.open instead of constructing a fresh engine"
            )
        storage = cls(config, kind)
        storage.meta_path.write_text(
            json.dumps({
                "kind": kind,
                "format": FORMAT_VERSION,
                # cold-tier geometry is structural state: a recovery that
                # does not pass an explicit config re-adopts it, so a
                # spilling engine stays spilling across restarts
                "debi_hot_rows": config.debi_hot_rows,
                "debi_segment_rows": config.debi_segment_rows,
            }),
            encoding="utf-8",
        )
        storage._journal = JournalWriter(storage.journal_path, fsync=config.fsync)
        storage.recording = True
        return storage

    @classmethod
    def open_existing(cls, config: StorageConfig, kind: str) -> RecoveredState:
        """Load the newest usable checkpoint + the intact journal tail.

        The returned storage is still in replay mode (``recording`` is
        False); the engine's ``open()`` replays ``records`` and then
        calls :meth:`finish_recovery`.
        """
        from dataclasses import replace

        directory = config.path
        found_kind = cls.peek_kind(directory)
        if found_kind != kind:
            raise ConfigurationError(
                f"durable state at {directory} belongs to a {found_kind!r} engine, "
                f"not {kind!r}; use MnemonicService.open to dispatch on the kind"
            )
        meta = json.loads((directory / "meta.json").read_text(encoding="utf-8"))
        if config.debi_hot_rows is None and meta.get("debi_hot_rows") is not None:
            config = replace(
                config,
                debi_hot_rows=meta["debi_hot_rows"],
                debi_segment_rows=meta.get("debi_segment_rows", config.debi_segment_rows),
            )
        storage = cls(config, kind)
        try:
            state, ck_meta = storage.checkpoints.load_latest()
        except CheckpointError as exc:
            raise StorageError(str(exc)) from exc
        scan = scan_journal(storage.journal_path, start=int(ck_meta["journal_offset"]))
        storage._applied = storage._sealed = int(ck_meta.get("sealed", 0))
        last = ck_meta.get("last_sealed_number")
        storage._last_sealed_number = None if last is None else int(last)
        for record in scan.records:
            if record.kind in (RecordKind.EPOCH, RecordKind.INITIAL):
                storage._applied += 1
                storage._sealed += 1
                storage._since_checkpoint += 1
            if record.kind == RecordKind.EPOCH:
                storage._last_sealed_number = record.epoch
        info = {
            "checkpoint_seq": int(ck_meta.get("seq", 0)),
            "checkpoint_sealed": int(ck_meta.get("sealed", 0)),
            "replayed_records": len(scan.records),
            "last_sealed_number": storage._last_sealed_number,
            "corruption": scan.corruption,
            "journal_valid_bytes": scan.valid_bytes,
        }
        return RecoveredState(
            storage=storage, checkpoint_state=state, records=scan.records, info=info
        )

    def finish_recovery(self, valid_bytes: int) -> None:
        """Truncate the corrupt tail (if any) and reopen the journal for appends."""
        JournalWriter.truncate(self.journal_path, valid_bytes)
        self._journal = JournalWriter(self.journal_path, fsync=self.config.fsync)
        self.recording = True

    # ------------------------------------------------------------------ hooks
    def note_applied(self) -> None:
        if self.recording:
            self._applied += 1

    def note_initial(self, events: Sequence) -> None:
        """Journal a ``load_initial`` bulk insert (applied + sealed at once)."""
        if not self.recording:
            return
        assert self._journal is not None
        self._journal.append(RecordKind.INITIAL, -1, event_tuples(events))
        self._applied += 1
        self._sealed += 1
        self._since_checkpoint += 1

    def seal_epoch(
        self,
        number: int,
        insertions: Sequence,
        deletions: Sequence,
        state_fn: Callable[[], Any],
    ) -> None:
        """Journal one delivered batch; checkpoint when due and quiescent."""
        if not self.recording:
            return
        assert self._journal is not None
        self._journal.append(
            RecordKind.EPOCH, number, (event_tuples(insertions), event_tuples(deletions))
        )
        self._sealed += 1
        self._since_checkpoint += 1
        self._last_sealed_number = number
        interval = self.config.checkpoint_interval
        if interval is not None and self._since_checkpoint >= interval:
            self._checkpoint_due = True
        if self._checkpoint_due and self._applied == self._sealed:
            self.checkpoint_now(state_fn)

    def append_register(self, query_id: int, definition: dict) -> None:
        if self.recording:
            assert self._journal is not None
            self._journal.append(RecordKind.REGISTER, query_id, definition)

    def append_unregister(self, query_id: int) -> None:
        if self.recording:
            assert self._journal is not None
            self._journal.append(RecordKind.UNREGISTER, query_id, query_id)

    # ------------------------------------------------------------------ checkpoints
    def quiescent(self) -> bool:
        """Every applied batch also delivered (safe to snapshot)."""
        return self._applied == self._sealed

    def checkpoint_now(self, state_fn: Callable[[], Any]) -> None:
        """Snapshot the engine state; callers must ensure quiescence."""
        if not self.recording:
            return
        assert self._journal is not None
        meta = {
            "sealed": self._sealed,
            "last_sealed_number": self._last_sealed_number,
            "journal_offset": self._journal.offset,
        }
        self.checkpoints.save(self._sealed, state_fn(), meta)
        self._since_checkpoint = 0
        self._checkpoint_due = False
        self._checkpoints_written += 1

    # ------------------------------------------------------------------ accounting
    @property
    def last_sealed_number(self) -> int | None:
        return self._last_sealed_number

    @property
    def sealed_epochs(self) -> int:
        return self._sealed

    def counters(self) -> dict:
        journal_bytes = (
            self.journal_path.stat().st_size if self.journal_path.exists() else 0
        )
        return {
            "journal_bytes": journal_bytes,
            "sealed_epochs": self._sealed,
            "applied_batches": self._applied,
            "checkpoints_written": self._checkpoints_written,
        }

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
