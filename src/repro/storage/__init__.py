"""Durable state for standing queries: spillable DEBI, journal, checkpoints.

The paper's Table III advertises a disk-backed DEBI with a storage/runtime
trade-off; this package supplies the disk tier plus the recovery machinery
that lets standing queries survive process restarts:

* :mod:`repro.storage.config` — :class:`StorageConfig`, the knob bundle
  attached to :class:`repro.core.engine.EngineConfig`;
* :mod:`repro.storage.spill` — :class:`TieredBitMatrix`, a drop-in
  replacement for :class:`repro.utils.bitset.BitMatrix` whose rows beyond
  a hot budget live in mmap'd segment files;
* :mod:`repro.storage.journal` — the append-only, CRC-framed epoch
  journal sealed once per delivered :class:`~repro.core.pipeline.CompletedBatch`;
* :mod:`repro.storage.checkpoint` — atomic checkpoint files with JSON
  sidecars and corruption fallback;
* :mod:`repro.storage.runtime` — :class:`EngineStorage`, the per-engine
  driver that owns all of the above;
* :mod:`repro.storage.recovery` — journal replay mirroring the
  :class:`~repro.core.pipeline.BatchPipeline` mutation order.
"""

from repro.storage.config import StorageConfig
from repro.storage.journal import JournalRecord, RecordKind, scan_journal
from repro.storage.runtime import EngineStorage, StorageError
from repro.storage.spill import TieredBitMatrix

__all__ = [
    "StorageConfig",
    "EngineStorage",
    "StorageError",
    "TieredBitMatrix",
    "JournalRecord",
    "RecordKind",
    "scan_journal",
]
