"""Atomic checkpoints with JSON sidecars and corruption fallback.

A checkpoint ``ck_<seq>.pkl`` is the pickled engine state (graph, query
definitions, DEBI word buffers, counters); its sidecar ``ck_<seq>.json``
records the payload CRC/size plus the journal byte offset the checkpoint
corresponds to.  Both are written to temp files and ``os.replace``d, and
the sidecar is written *after* the payload, so a crash mid-save leaves at
worst a payload without a sidecar — which the loader treats as "no such
checkpoint" and skips.  ``load_latest`` walks checkpoints newest-first
and falls back past any that are missing a sidecar, fail the CRC, or do
not unpickle; only if *no* checkpoint is usable does it raise.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import zlib
from pathlib import Path
from typing import Any


class CheckpointError(Exception):
    """No usable checkpoint could be loaded."""


_CK_RE = re.compile(r"^ck_(\d+)\.pkl$")


class CheckpointManager:
    def __init__(self, directory: str | Path, keep: int = 2, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.fsync = fsync

    # -- paths ------------------------------------------------------------
    def _payload_path(self, seq: int) -> Path:
        return self.directory / f"ck_{seq:012d}.pkl"

    def _sidecar_path(self, seq: int) -> Path:
        return self.directory / f"ck_{seq:012d}.json"

    def sequence_numbers(self) -> list[int]:
        """All checkpoint sequence numbers on disk (payload present), ascending."""
        seqs = []
        for entry in self.directory.iterdir():
            match = _CK_RE.match(entry.name)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    # -- save -------------------------------------------------------------
    def save(self, seq: int, state: Any, meta: dict) -> Path:
        """Atomically persist ``state`` as checkpoint ``seq`` and prune old ones."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        sidecar = dict(meta)
        sidecar["seq"] = seq
        sidecar["payload_bytes"] = len(payload)
        sidecar["payload_crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        self._write_atomic(self._payload_path(seq), payload)
        self._write_atomic(
            self._sidecar_path(seq), json.dumps(sidecar, sort_keys=True).encode("utf-8")
        )
        self._prune()
        return self._payload_path(seq)

    def _write_atomic(self, path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _prune(self) -> None:
        for seq in self.sequence_numbers()[: -self.keep]:
            self._payload_path(seq).unlink(missing_ok=True)
            self._sidecar_path(seq).unlink(missing_ok=True)

    # -- load -------------------------------------------------------------
    def load_latest(self) -> tuple[Any, dict]:
        """Return ``(state, sidecar_meta)`` of the newest *usable* checkpoint.

        Unusable checkpoints (missing sidecar, size/CRC mismatch, unpickle
        failure) are skipped in favour of older ones; raises
        :class:`CheckpointError` when none survive.
        """
        failures: list[str] = []
        for seq in reversed(self.sequence_numbers()):
            try:
                return self._load(seq)
            except (OSError, ValueError, json.JSONDecodeError, pickle.UnpicklingError,
                    EOFError, AttributeError, ImportError) as exc:
                failures.append(f"ck_{seq}: {exc}")
        raise CheckpointError(
            "no usable checkpoint in "
            f"{self.directory}" + (f" ({'; '.join(failures)})" if failures else "")
        )

    def _load(self, seq: int) -> tuple[Any, dict]:
        sidecar_path = self._sidecar_path(seq)
        if not sidecar_path.exists():
            raise ValueError("sidecar missing (checkpoint incomplete)")
        meta = json.loads(sidecar_path.read_text(encoding="utf-8"))
        payload = self._payload_path(seq).read_bytes()
        if len(payload) != meta.get("payload_bytes"):
            raise ValueError(
                f"payload size {len(payload)} != recorded {meta.get('payload_bytes')}"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != meta.get("payload_crc"):
            raise ValueError("payload CRC mismatch")
        return pickle.loads(payload), meta
