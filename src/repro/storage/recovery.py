"""Journal replay: re-apply sealed epochs in pipeline mutation order.

Replay is mutation-only — no enumeration runs, no results are produced.
It re-executes exactly the graph/DEBI updates that
:class:`repro.core.pipeline.BatchPipeline` performed for each sealed
epoch, in the same order:

1. insert phase: every event's ``graph.add_edge`` first, then one
   ``index_manager.handle_insertions(new_ids)`` per registered query;
2. delete phase: ``resolve_deletions`` picks the doomed edge ids, each
   doomed edge's DEBI rows are captured *before* the graph delete, then
   the graph delete, DEBI row clears, and finally one
   ``index_manager.handle_deletions`` per query.

Determinism hinges on two properties proven by the recovery suite: edge
ids are allocated from the pickled free-list (checkpointed with the
graph), so replayed inserts receive the ids the original run used; and
``resolve_deletions`` breaks ties deterministically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.streams.events import EventKind, StreamEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.registry import QueryRuntime
    from repro.graph.adjacency import DynamicGraph


def event_tuples(events: Iterable[StreamEvent]) -> list[tuple]:
    """Flatten events for journal payloads (plain tuples pickle compactly).

    Accepts either an iterable of :class:`StreamEvent` or a columnar
    :class:`~repro.streams.events.EventColumns` decode of the same batch;
    the columnar path serializes straight from the arrays, producing
    value-identical tuples without re-walking per-event attributes.
    """
    columnar = getattr(events, "event_tuples", None)
    if columnar is not None:
        return columnar()
    return [
        (int(e.kind), e.src, e.dst, e.label, e.timestamp, e.src_label, e.dst_label)
        for e in events
    ]


def events_from_tuples(rows: Iterable[Sequence]) -> list[StreamEvent]:
    """Inverse of :func:`event_tuples`."""
    return [
        StreamEvent(
            kind=EventKind(kind), src=src, dst=dst, label=label,
            timestamp=timestamp, src_label=src_label, dst_label=dst_label,
        )
        for kind, src, dst, label, timestamp, src_label, dst_label in rows
    ]


def replay_insertions(
    graph: "DynamicGraph",
    slots: dict[int, "QueryRuntime"],
    insertions: Sequence[StreamEvent],
) -> None:
    """Insert phase of one epoch (also used for INITIAL records)."""
    if not insertions:
        return
    new_ids = [
        graph.add_edge(
            e.src, e.dst, e.label, e.timestamp,
            src_label=e.src_label, dst_label=e.dst_label,
        )
        for e in insertions
    ]
    for runtime in slots.values():
        runtime.index_manager.handle_insertions(new_ids)


def replay_epoch(
    graph: "DynamicGraph",
    slots: dict[int, "QueryRuntime"],
    insertions: Sequence[StreamEvent],
    deletions: Sequence[StreamEvent],
) -> None:
    """Re-apply one sealed epoch's mutations to graph + every query's DEBI."""
    from repro.core.registry import resolve_deletions

    replay_insertions(graph, slots, insertions)
    if deletions:
        doomed = resolve_deletions(graph, deletions)
        deleted = []
        for edge_id in doomed:
            masks = {qid: runtime.debi.row(edge_id) for qid, runtime in slots.items()}
            record = graph.delete_edge(edge_id)
            for runtime in slots.values():
                runtime.debi.clear_edge(edge_id)
            deleted.append((record, masks))
        for qid, runtime in slots.items():
            runtime.index_manager.handle_deletions(
                [(record, masks[qid]) for record, masks in deleted]
            )
