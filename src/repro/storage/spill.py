"""A BitMatrix with a RAM-resident hot tier and mmap'd cold segments.

:class:`TieredBitMatrix` mirrors the full interface of
:class:`repro.utils.bitset.BitMatrix` (the paper's DEBI row store) but
keeps only the first ``hot_rows`` rows in a numpy array; rows at or
beyond the budget live in fixed-size ``np.memmap`` segment files under a
per-query directory.  :class:`~repro.core.debi.DEBI` swaps its row matrix
for a tiered one in place (``DEBI.enable_spill``), which keeps every
existing reference — ``IndexManager``, ``EnumerationContext``, the CSR
snapshot writer — working untouched: they only ever call the BitMatrix
interface.

Row layout: row ``r`` is hot iff ``r < hot_rows``; otherwise it lives in
segment ``(r - hot_rows) // segment_rows`` at offset
``(r - hot_rows) % segment_rows``.  Segment files are created on demand
(zero-filled by the OS) and any stale files in the directory are removed
at construction — cold content is always reconstructed from checkpoint +
journal replay, never trusted from a previous process.

Vectorized bulk operations (``column_mask``, ``filter_rows_with_column``)
split their row index arrays into the hot part (one gather) and cold
parts grouped by segment (one gather per touched segment), so streaming
enumeration over a mostly-hot working set stays a handful of numpy calls.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

_WORD_BITS = 64
_SEG_RE = re.compile(r"^seg_(\d+)\.bin$")


class TieredBitMatrix:
    """Drop-in BitMatrix replacement with an mmap'd cold tier."""

    def __init__(
        self,
        width: int,
        directory: str | Path,
        hot_rows: int,
        segment_rows: int = 4096,
    ) -> None:
        check_positive(width, "width")
        if width > _WORD_BITS:
            raise ValueError(
                f"TieredBitMatrix supports at most {_WORD_BITS} columns, got {width}"
            )
        check_positive(hot_rows, "hot_rows")
        check_positive(segment_rows, "segment_rows")
        self.width = width
        self.hot_rows = hot_rows
        self.segment_rows = segment_rows
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        for entry in self.directory.iterdir():
            if _SEG_RE.match(entry.name):
                entry.unlink()
        # the hot budget is allocated eagerly: one word per row keeps every
        # hot access a single array index with no growth bookkeeping
        self._hot = np.zeros(hot_rows, dtype=np.uint64)
        self._segments: dict[int, np.memmap] = {}
        self._nrows = 0
        #: cumulative counters surfaced by benchmarks / memory reports
        self.cold_reads = 0
        self.cold_writes = 0

    # -- tier plumbing -----------------------------------------------------
    def _segment_path(self, seg: int) -> Path:
        return self.directory / f"seg_{seg:08d}.bin"

    def _segment(self, seg: int, create: bool) -> np.memmap | None:
        segment = self._segments.get(seg)
        if segment is None and create:
            segment = np.memmap(
                self._segment_path(seg), dtype=np.uint64, mode="w+",
                shape=(self.segment_rows,),
            )
            self._segments[seg] = segment
        return segment

    def _locate(self, row: int) -> tuple[int, int]:
        cold = row - self.hot_rows
        return cold // self.segment_rows, cold % self.segment_rows

    def _ensure(self, row: int) -> None:
        if row + 1 > self._nrows:
            self._nrows = row + 1

    def _read_word(self, row: int) -> int:
        if row >= self._nrows:
            return 0
        if row < self.hot_rows:
            return int(self._hot[row])
        seg, off = self._locate(row)
        segment = self._segments.get(seg)
        if segment is None:
            return 0
        self.cold_reads += 1
        return int(segment[off])

    def _write_word(self, row: int, word: int) -> None:
        self._ensure(row)
        if row < self.hot_rows:
            self._hot[row] = np.uint64(word)
            return
        seg, off = self._locate(row)
        if word == 0 and seg not in self._segments:
            return  # missing segments read as zero; don't materialize for a clear
        segment = self._segment(seg, create=True)
        assert segment is not None
        segment[off] = np.uint64(word)
        self.cold_writes += 1

    # -- single-bit operations --------------------------------------------
    def set(self, row: int, col: int) -> None:
        self._check_col(col)
        check_non_negative(row, "row")
        self._write_word(row, self._read_word_for_update(row) | (1 << col))

    def clear(self, row: int, col: int) -> None:
        self._check_col(col)
        check_non_negative(row, "row")
        if row >= self._nrows:
            return
        self._write_word(row, self._read_word(row) & ~(1 << col))

    def get(self, row: int, col: int) -> bool:
        self._check_col(col)
        check_non_negative(row, "row")
        return bool((self._read_word(row) >> col) & 1)

    def _read_word_for_update(self, row: int) -> int:
        # like _read_word but without the _nrows guard: a set() on a fresh
        # row reads the current (zero) word before or-ing the new bit in
        if row < self.hot_rows:
            return int(self._hot[row])
        seg, off = self._locate(row)
        segment = self._segments.get(seg)
        return 0 if segment is None else int(segment[off])

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.width:
            raise IndexError(f"column {col} out of range [0, {self.width})")

    # -- row operations ----------------------------------------------------
    def get_row(self, row: int) -> int:
        check_non_negative(row, "row")
        return self._read_word(row)

    def set_row(self, row: int, mask: int) -> None:
        check_non_negative(row, "row")
        if mask < 0 or mask >= (1 << self.width):
            raise ValueError(f"mask {mask:#x} does not fit in {self.width} bits")
        self._write_word(row, mask)

    def clear_row(self, row: int) -> None:
        if row < self._nrows:
            self._write_word(row, 0)

    def row_any(self, row: int) -> bool:
        return self._read_word(row) != 0

    # -- bulk operations ----------------------------------------------------
    def _gather(self, idx: np.ndarray) -> np.ndarray:
        """Gather the row words for an int64 index array (zeros when unwritten)."""
        gathered = np.zeros(len(idx), dtype=np.uint64)
        valid = idx < self._nrows
        hot = valid & (idx < self.hot_rows)
        gathered[hot] = self._hot[idx[hot]]
        cold = valid & ~hot
        if np.any(cold):
            cold_idx = idx[cold] - self.hot_rows
            segs = cold_idx // self.segment_rows
            offs = cold_idx % self.segment_rows
            vals = np.zeros(len(cold_idx), dtype=np.uint64)
            for seg in np.unique(segs):
                segment = self._segments.get(int(seg))
                if segment is None:
                    continue
                members = segs == seg
                vals[members] = segment[offs[members]]
            gathered[cold] = vals
            self.cold_reads += int(np.count_nonzero(cold))
        return gathered

    def filter_rows_with_column(self, rows, col: int) -> list[int]:
        self._check_col(col)
        n = len(rows)
        if n == 0:
            return []
        idx = np.asarray(rows, dtype=np.int64)
        hits = (self._gather(idx) & np.uint64(1 << col)) != 0
        return [int(r) for r, hit in zip(rows, hits) if hit]

    def column_mask(self, rows: np.ndarray, col: int) -> np.ndarray:
        self._check_col(col)
        return (self._gather(rows) & np.uint64(1 << col)) != 0

    def set_rows_col(self, rows: np.ndarray, col: int) -> None:
        """Set bit ``col`` on every row in ``rows``, tier-aware.

        The hot part is one fancy-indexed OR; cold parts are grouped by
        segment (one scatter per touched segment).  Segments are only
        materialized when they actually receive a write, matching the
        scalar :meth:`set` path.
        """
        self._check_col(col)
        idx = np.asarray(rows, dtype=np.int64)
        if idx.shape[0] == 0:
            return
        check_non_negative(int(idx.min()), "row")
        self._ensure(int(idx.max()))
        mask = np.uint64(1 << col)
        hot = idx < self.hot_rows
        if np.any(hot):
            self._hot[idx[hot]] |= mask
        cold = ~hot
        if np.any(cold):
            cold_idx = idx[cold] - self.hot_rows
            segs = cold_idx // self.segment_rows
            offs = cold_idx % self.segment_rows
            for seg in np.unique(segs):
                segment = self._segment(int(seg), create=True)
                assert segment is not None
                members = segs == seg
                segment[offs[members]] |= mask
                self.cold_writes += int(np.count_nonzero(members))

    def clear_rows(self, rows: np.ndarray) -> None:
        """Clear every bit of every row in ``rows``, tier-aware.

        Rows beyond the written range are ignored; cold segments that were
        never materialized already read as zero and are left missing.
        """
        idx = np.asarray(rows, dtype=np.int64)
        if idx.shape[0] == 0:
            return
        check_non_negative(int(idx.min()), "row")
        idx = idx[idx < self._nrows]
        if idx.shape[0] == 0:
            return
        hot = idx < self.hot_rows
        if np.any(hot):
            self._hot[idx[hot]] = 0
        cold = ~hot
        if np.any(cold):
            cold_idx = idx[cold] - self.hot_rows
            segs = cold_idx // self.segment_rows
            offs = cold_idx % self.segment_rows
            for seg in np.unique(segs):
                segment = self._segments.get(int(seg))
                if segment is None:
                    continue  # never materialized: already reads as zero
                members = segs == seg
                segment[offs[members]] = 0
                self.cold_writes += int(np.count_nonzero(members))

    def get_rows(self, rows: np.ndarray) -> np.ndarray:
        """Gather the full row words for ``rows`` (uint64 array), tier-aware."""
        return self._gather(np.asarray(rows, dtype=np.int64))

    def _live_chunks(self):
        """Yield ``(base_row, words)`` views covering rows [0, _nrows)."""
        if self._nrows == 0:
            return
        hot_live = min(self._nrows, self.hot_rows)
        if hot_live:
            yield 0, self._hot[:hot_live]
        for seg in sorted(self._segments):
            base = self.hot_rows + seg * self.segment_rows
            if base >= self._nrows:
                continue
            end = min(base + self.segment_rows, self._nrows)
            yield base, self._segments[seg][: end - base]

    def count(self) -> int:
        total = 0
        for _, words in self._live_chunks():
            total += int(np.unpackbits(np.ascontiguousarray(words).view(np.uint8)).sum())
        return total

    def column_count(self, col: int) -> int:
        self._check_col(col)
        mask = np.uint64(1 << col)
        return sum(int(np.count_nonzero(words & mask)) for _, words in self._live_chunks())

    def rows_with_column(self, col: int) -> np.ndarray:
        self._check_col(col)
        mask = np.uint64(1 << col)
        parts = [
            np.nonzero(words & mask)[0] + base for base, words in self._live_chunks()
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts).astype(np.int64, copy=False)

    def clear_all(self) -> None:
        self._hot[:] = 0
        for segment in self._segments.values():
            segment[:] = 0

    # -- buffer export / restore --------------------------------------------
    def export_words(self) -> tuple[np.ndarray, int]:
        """Materialize a contiguous copy of rows [0, _nrows).

        Unlike the in-memory BitMatrix this cannot alias storage (rows are
        scattered across tiers); callers (shared-memory snapshot writer,
        checkpointing) copy the result anyway.
        """
        out = np.zeros(self._nrows, dtype=np.uint64)
        for base, words in self._live_chunks():
            out[base : base + len(words)] = words
        return out, self._nrows

    def load_words(self, rows: np.ndarray, nrows: int) -> None:
        """Overwrite all content with a contiguous word buffer (checkpoint restore)."""
        rows = np.asarray(rows, dtype=np.uint64)
        self.clear_all()
        self._nrows = nrows
        hot_live = min(nrows, self.hot_rows)
        self._hot[:hot_live] = rows[:hot_live]
        pos = self.hot_rows
        seg = 0
        while pos < nrows:
            end = min(pos + self.segment_rows, nrows)
            segment = self._segment(seg, create=True)
            assert segment is not None
            segment[: end - pos] = rows[pos:end]
            self.cold_writes += end - pos
            pos = end
            seg += 1

    # -- durability ----------------------------------------------------------
    def flush(self) -> None:
        """Flush every cold segment to its backing file."""
        for segment in self._segments.values():
            segment.flush()

    def remap(self) -> None:
        """Flush, drop and re-open every segment mapping.

        Exercised by the fault-injection suite: reads after a remap must be
        identical to reads against the original mappings.
        """
        self.flush()
        segs = sorted(self._segments)
        self._segments = {}
        for seg in segs:
            self._segments[seg] = np.memmap(
                self._segment_path(seg), dtype=np.uint64, mode="r+",
                shape=(self.segment_rows,),
            )

    # -- accounting ----------------------------------------------------------
    @property
    def spilled_rows(self) -> int:
        """Live rows resident in the cold tier."""
        return max(0, self._nrows - self.hot_rows)

    @property
    def disk_bytes(self) -> int:
        """Bytes of cold-segment files backing this matrix."""
        return len(self._segments) * self.segment_rows * 8

    def nbytes(self) -> int:
        """RAM footprint of the live rows (hot tier only)."""
        return int(min(self._nrows, self.hot_rows) * self._hot.itemsize)

    def __len__(self) -> int:
        return self._nrows
