"""The stream broker: a bounded ingest queue decoupling arrival from processing.

The paper's harness iterates a pre-materialised event list, so "ingest"
is free and instantaneous.  A service is different: events *arrive*
(from a socket, a message bus, a replayed trace) while the engine is
busy mutating the graph and enumerating, and the two sides must be
decoupled without letting an unbounded backlog hide overload.

:class:`StreamBroker` is that decoupling point:

* a **bounded ring buffer** of ``(event, arrival)`` pairs — arrival is
  stamped from the broker's :class:`~repro.streams.clock.Clock` at
  enqueue time and is the anchor of end-to-end latency accounting;
* **two ingest modes**: *pull* (a producer thread iterates a
  :class:`~repro.streams.sources.StreamSource` — e.g. a rate-controlled
  :class:`~repro.streams.sources.ReplaySource` — so arrival overlaps
  the engine's mutation and enumeration work) and *push* (callers
  :meth:`put` events directly; this is what the
  :class:`~repro.core.service.MnemonicService` facade uses);
* **backpressure**: a full buffer blocks the producer instead of
  dropping or buffering without bound, so offered load beyond the
  engine's capacity shows up as producer stall (counted in
  :attr:`blocked_puts`), not as silent memory growth;
* **watermark tracking**: the largest *event* timestamp enqueued so
  far, for consumers that reason about event time rather than arrival
  time.

The broker is itself a :class:`~repro.streams.sources.StreamSource`
(iterating it yields events until the stream is closed and drained), and
additionally offers :meth:`poll` with a timeout — the primitive the
adaptive batcher uses to flush a partial batch when no event arrives
before its deadline.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.streams.clock import Clock, WallClock
from repro.streams.events import StreamEvent
from repro.streams.sources import StreamSource
from repro.utils.validation import ReproError, check_in, check_positive


class BrokerClosedError(ReproError):
    """Raised when putting into a broker that has been closed or stopped."""


class BrokerOverloadError(ReproError):
    """Raised by :meth:`StreamBroker.put` under the ``reject`` overload policy."""


#: how a full broker treats an incoming event (see :class:`StreamBroker`)
OVERLOAD_POLICIES = ("block", "shed-oldest", "reject")


class _Timeout:
    """Sentinel type returned by :meth:`StreamBroker.poll` on timeout."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<broker poll timeout>"


#: returned by :meth:`StreamBroker.poll` when the timeout elapsed with no event
POLL_TIMEOUT = _Timeout()


class StreamBroker:
    """A bounded, clock-stamping ingest queue between a source and the engine.

    Parameters
    ----------
    source:
        Optional pull-mode source.  When given, :meth:`ensure_started`
        (called by the engines' ``run``) spawns a daemon producer thread
        that iterates it and :meth:`put`\\ s every event, blocking on
        backpressure.  Without a source the broker runs in push mode.
    capacity:
        Ring-buffer bound; what happens when it is reached is decided by
        ``overload``.
    clock:
        Arrival-stamp time source (defaults to :class:`WallClock`).
    overload:
        Full-buffer policy.  ``"block"`` (default) applies backpressure:
        the producer waits for space.  ``"shed-oldest"`` drops the oldest
        *buffered* event to make room — bounded staleness for sources
        where the newest data matters most (counted in
        :attr:`shed_events`).  ``"reject"`` refuses the incoming event
        with :class:`BrokerOverloadError` — load shedding at the door,
        the policy a network front door maps to 429s (counted in
        :attr:`rejected_puts`).
    """

    def __init__(
        self,
        source: StreamSource | None = None,
        capacity: int = 4096,
        clock: Clock | None = None,
        overload: str = "block",
    ) -> None:
        check_positive(capacity, "capacity")
        check_in(overload, OVERLOAD_POLICIES, "overload")
        self.capacity = capacity
        self.overload = overload
        self.clock: Clock = clock or WallClock()
        self._source = source
        self._thread: threading.Thread | None = None
        self._buffer: deque[tuple[StreamEvent, float]] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._aborted = False
        #: largest event timestamp enqueued so far (event time, not arrival time)
        self.watermark = float("-inf")
        self.enqueued = 0
        self.dequeued = 0
        #: put() calls that had to wait for space at least once (backpressure)
        self.blocked_puts = 0
        #: buffered events dropped by the "shed-oldest" overload policy
        self.shed_events = 0
        #: incoming events refused by the "reject" overload policy
        self.rejected_puts = 0
        self.max_depth = 0

    # ------------------------------------------------------------------ producer side
    def put(self, event: StreamEvent, timeout: float | None = None) -> float:
        """Enqueue one event, blocking while the buffer is full; returns its arrival stamp.

        ``timeout`` bounds the wait in clock-seconds; on expiry the event
        is rejected with a ``TimeoutError`` so callers can surface
        overload instead of blocking forever.  Under a
        :class:`~repro.streams.clock.VirtualClock` a timed wait elapses
        instantly without yielding to other threads (the determinism
        contract), so a bounded-timeout put on a full buffer fails even
        if a concurrent consumer would have freed a slot in time — use
        the wall clock where real cross-thread timing matters.
        """
        with self._not_full:
            if len(self._buffer) >= self.capacity and not self._closed:
                if self.overload == "reject":
                    self.rejected_puts += 1
                    raise BrokerOverloadError(
                        f"broker buffer full ({self.capacity} events); "
                        "event rejected by the 'reject' overload policy"
                    )
                if self.overload == "shed-oldest":
                    # Make room by dropping the oldest *buffered* event:
                    # the producer never stalls, at the cost of losing the
                    # stalest data.  The ledger invariant becomes
                    # ``enqueued - dequeued - shed_events == depth``.
                    self._buffer.popleft()
                    self.shed_events += 1
                else:
                    self.blocked_puts += 1
            deadline = None if timeout is None else self.clock.now() + timeout
            while len(self._buffer) >= self.capacity and not self._closed:
                remaining = None if deadline is None else deadline - self.clock.now()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"broker buffer full ({self.capacity} events) for {timeout} seconds"
                    )
                self.clock.wait(self._not_full, remaining)
            if self._closed:
                raise BrokerClosedError("cannot put into a closed broker")
            arrival = self.clock.now()
            self._buffer.append((event, arrival))
            self.enqueued += 1
            self.max_depth = max(self.max_depth, len(self._buffer))
            if event.timestamp > self.watermark:
                self.watermark = event.timestamp
            self._not_empty.notify()
            return arrival

    def close(self) -> None:
        """No further events will arrive; consumers drain what is buffered."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def stop(self, join_timeout: float | None = 1.0) -> None:
        """Close *and* discard: wake a blocked producer, join its thread.

        Buffered events are kept (a consumer may still drain them); the
        producer's next :meth:`put` fails with :class:`BrokerClosedError`,
        which the pull-mode thread treats as a normal shutdown.  The join
        is bounded by ``join_timeout`` (real seconds): a producer mid
        wall-clock sleep (e.g. a timestamp-faithful replay across a long
        event gap) cannot be interrupted, so it is left to exit on its
        next ``put`` — it is a daemon thread and holds no broker state.
        """
        with self._lock:
            self._aborted = True
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(join_timeout)

    def join(self, timeout: float | None = None) -> None:
        """Wait (real time) for the pull-mode producer thread to finish.

        Useful when a test wants every arrival stamped before consumption
        starts; a no-op in push mode.
        """
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)

    def ensure_started(self) -> bool:
        """Spawn the pull-mode producer thread once; True when this call started it."""
        with self._lock:
            if self._source is None or self._thread is not None or self._closed:
                return False
            self._thread = threading.Thread(
                target=self._produce, name="stream-broker-producer", daemon=True
            )
        self._thread.start()
        return True

    def _produce(self) -> None:
        try:
            for event in self._source:
                self.put(event)
        except BrokerClosedError:
            pass  # stop() aborted a blocked put: normal shutdown
        finally:
            self.close()

    # ------------------------------------------------------------------ consumer side
    def poll(self, timeout: float | None = None):
        """Next ``(event, arrival)`` pair, :data:`POLL_TIMEOUT`, or None.

        * an event is available (or arrives in time) — ``(event, arrival)``;
        * the stream is closed and fully drained — ``None``;
        * ``timeout`` clock-seconds elapsed first — :data:`POLL_TIMEOUT`
          (the adaptive batcher's cue to flush a partial batch).
        """
        with self._not_empty:
            deadline = None if timeout is None else self.clock.now() + timeout
            while not self._buffer:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - self.clock.now()
                if remaining is not None and remaining <= 0:
                    return POLL_TIMEOUT
                self.clock.wait(self._not_empty, remaining)
            item = self._buffer.popleft()
            self.dequeued += 1
            self._not_full.notify()
            return item

    def __iter__(self) -> Iterator[StreamEvent]:
        """Drain events (without arrival stamps) until closed and empty."""
        while True:
            item = self.poll(None)
            if item is None:
                return
            yield item[0]

    # ------------------------------------------------------------------ introspection
    @property
    def depth(self) -> int:
        """Events currently buffered (enqueued but not yet consumed)."""
        with self._lock:
            return len(self._buffer)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> dict[str, float]:
        """Ingest counters for benchmark tables and service dashboards."""
        with self._lock:
            return {
                "enqueued": self.enqueued,
                "dequeued": self.dequeued,
                "depth": len(self._buffer),
                "max_depth": self.max_depth,
                "blocked_puts": self.blocked_puts,
                "shed_events": self.shed_events,
                "rejected_puts": self.rejected_puts,
                "watermark": self.watermark,
            }


@contextmanager
def producing(source):
    """Drive a (possibly-broker) stream source for the duration of a run.

    The engines' ``run()`` methods wrap their consumption loop in this:
    a :class:`StreamBroker` source gets its pull-mode producer thread
    started (so arrival overlaps processing) and — if this call started
    it — stopped on the way out, which also unblocks a producer stuck on
    backpressure when a run is abandoned mid-stream.  Non-broker sources
    pass through untouched.
    """
    broker = source if isinstance(source, StreamBroker) else None
    started = broker.ensure_started() if broker is not None else False
    try:
        yield source
    finally:
        if started:
            broker.stop()
