"""Clocks for the streaming service layer.

Every time-dependent component of the ingest path — the
:class:`~repro.streams.broker.StreamBroker`'s arrival stamps, the
rate-controlled :class:`~repro.streams.sources.ReplaySource`, adaptive
batch-delay flushing, and end-to-end latency accounting — reads time
through a :class:`Clock` instead of calling :func:`time.monotonic`
directly.  Production code uses :class:`WallClock`; tests use
:class:`VirtualClock`, which advances only when someone sleeps or waits
on it, so time-based behaviour (delay flushes, replay pacing, latency
stamps) is exactly reproducible without real sleeps.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """The time source used across the ingest path.

    ``wait(condition, timeout)`` is the broker's building block for
    timed polls: it must return after at most ``timeout`` clock-seconds
    (or when the condition is notified), with the condition's lock held
    on entry and exit, exactly like :meth:`threading.Condition.wait`.
    """

    def now(self) -> float:  # pragma: no cover - protocol
        ...

    def sleep(self, seconds: float) -> None:  # pragma: no cover - protocol
        ...

    def wait(self, condition: threading.Condition, timeout: float | None) -> None:  # pragma: no cover
        ...


class WallClock:
    """Real time: monotonic reads, real sleeps, real condition waits."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait(self, condition: threading.Condition, timeout: float | None) -> None:
        condition.wait(timeout)


class VirtualClock:
    """Deterministic manual time: sleeping *is* advancing.

    ``sleep`` and timed ``wait`` advance the clock immediately instead
    of blocking, so a rate-controlled replay or a batch-delay flush runs
    in microseconds of real time while observing exactly the virtual
    timeline the test scripted.  ``advance`` is the explicit test hook.
    The clock is thread-safe: a producer thread replaying events and the
    consuming generator may share one instance.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (never backwards); returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds!r} seconds")
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.advance(seconds)

    def wait(self, condition: threading.Condition, timeout: float | None) -> None:
        # A timed wait on virtual time costs no real time: the timeout
        # elapses instantly (the caller's retry loop re-checks state and
        # sees the deadline passed) and the condition's lock is never
        # released — a concurrently running thread gets no window to
        # change the waited-on state, so e.g. a bounded-timeout
        # `broker.put` on a full buffer times out deterministically even
        # if a consumer would have freed a slot "in time".  That is the
        # determinism contract; use a WallClock where real cross-thread
        # timing matters.  An untimed wait has no deadline to advance
        # to, so it blocks for real until notified.
        if timeout is None:
            condition.wait()
        else:
            self.advance(timeout)
