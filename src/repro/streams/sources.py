"""Stream sources: adapters that present events to the snapshot generator.

Four families of source cover the scenarios between "replay a list" and
"live service traffic":

* :class:`ListSource` / :class:`IterableSource` — finite in-memory
  sources (the benchmark harness and tests);
* :class:`CSVTraceSource` — a replayable file-backed trace;
* :class:`ReplaySource` — rate-controlled replay of a finite source on
  a :class:`~repro.streams.clock.Clock`, so offered-load experiments run
  against real time (``WallClock``) or a deterministic virtual timeline
  (``VirtualClock``) without wall-clock flakiness;
* :class:`PushSource` — a thread-safe callback source that application
  code pushes events into.

Any of them can feed a :class:`~repro.streams.broker.StreamBroker` so
event arrival overlaps engine work.
"""

from __future__ import annotations

import csv
import queue
from typing import Iterable, Iterator, Protocol, Sequence

from repro.streams.clock import Clock, WallClock
from repro.streams.events import EventKind, StreamEvent
from repro.utils.validation import ConfigurationError, check_positive


class StreamSource(Protocol):
    """Anything that can be iterated to yield :class:`StreamEvent` objects."""

    def __iter__(self) -> Iterator[StreamEvent]:  # pragma: no cover - protocol
        ...


class ListSource:
    """A finite, replayable in-memory source (used heavily in tests)."""

    def __init__(self, events: Iterable[StreamEvent]) -> None:
        self._events = list(events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class IterableSource:
    """Wraps a one-shot iterable (e.g. a generator over a trace file).

    The underlying iterable is materialised on first iteration, so the
    source is safely replayable: historically a second pass over a
    generator-backed source silently yielded nothing, which made a
    re-run (e.g. a benchmark warm-up followed by the measured pass)
    process an empty stream without any error.  For traces too large to
    materialise, stream them through a
    :class:`~repro.streams.broker.StreamBroker` instead of replaying.
    """

    def __init__(self, iterable: Iterable[StreamEvent]) -> None:
        self._iterable: Iterable[StreamEvent] | None = iterable
        self._events: list[StreamEvent] | None = None

    def __iter__(self) -> Iterator[StreamEvent]:
        if self._events is None:
            self._events = list(self._iterable)
            self._iterable = None  # release the exhausted generator
        return iter(self._events)

    def __len__(self) -> int:
        if self._events is None:
            raise TypeError(
                "IterableSource has no length until its first iteration "
                "materialises the underlying iterable"
            )
        return len(self._events)


#: on-disk column order used by :class:`CSVTraceSource`
CSV_FIELDS = ("kind", "src", "dst", "label", "timestamp", "src_label", "dst_label")
_KIND_TOKENS = {
    "insert": EventKind.INSERT, "i": EventKind.INSERT, "+": EventKind.INSERT,
    "0": EventKind.INSERT,
    "delete": EventKind.DELETE, "d": EventKind.DELETE, "-": EventKind.DELETE,
    "1": EventKind.DELETE,
}


class CSVTraceSource:
    """A replayable trace file: one event per row, ``CSV_FIELDS`` column order.

    The file is re-opened on every iteration, so the source behaves like
    :class:`ListSource` without holding the trace in memory.  Rows
    starting with ``#`` and a leading header row (``kind,src,...``) are
    skipped; the ``kind`` column accepts ``insert``/``delete``, ``i``/``d``,
    ``+``/``-`` or the :class:`~repro.streams.events.EventKind` integers.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def __iter__(self) -> Iterator[StreamEvent]:
        with open(self.path, newline="", encoding="utf-8") as fh:
            seen_data = False
            for row_number, row in enumerate(csv.reader(fh), start=1):
                if not row or row[0].startswith("#"):
                    continue
                if not seen_data and row[0].strip().lower() == "kind":
                    continue  # header row (wherever comments left it)
                seen_data = True
                yield self._parse(row, row_number)

    def _parse(self, row: Sequence[str], row_number: int) -> StreamEvent:
        if not 3 <= len(row) <= len(CSV_FIELDS):
            raise ConfigurationError(
                f"{self.path}:{row_number}: expected 3-{len(CSV_FIELDS)} columns "
                f"({', '.join(CSV_FIELDS)}), got {len(row)}"
            )
        kind = _KIND_TOKENS.get(row[0].strip().lower())
        if kind is None:
            raise ConfigurationError(
                f"{self.path}:{row_number}: unknown event kind {row[0]!r}"
            )
        try:
            src, dst = int(row[1]), int(row[2])
            label = int(row[3]) if len(row) > 3 else 0
            timestamp = float(row[4]) if len(row) > 4 else 0.0
            src_label = int(row[5]) if len(row) > 5 else 0
            dst_label = int(row[6]) if len(row) > 6 else 0
        except ValueError as exc:
            raise ConfigurationError(f"{self.path}:{row_number}: {exc}") from None
        return StreamEvent(kind, src, dst, label, timestamp, src_label, dst_label)

    @staticmethod
    def write(path: str, events: Iterable[StreamEvent]) -> int:
        """Write ``events`` in the source's format; returns the row count."""
        count = 0
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(CSV_FIELDS)
            for event in events:
                writer.writerow([
                    "insert" if event.is_insert else "delete",
                    event.src, event.dst, event.label, event.timestamp,
                    event.src_label, event.dst_label,
                ])
                count += 1
        return count


class ReplaySource:
    """Rate-controlled replay of a finite source against a clock.

    Exactly one pacing mode must be chosen:

    ``events_per_second``
        Uniform offered load: event ``i`` is due ``i / rate`` seconds
        after the replay starts (the fig18 latency-vs-load benchmark).
    ``speed``
        Timestamp-faithful replay: inter-event gaps follow the events'
        own timestamps, scaled by ``speed`` (2.0 = twice as fast).

    With a :class:`~repro.streams.clock.WallClock` the replay really
    sleeps; with a :class:`~repro.streams.clock.VirtualClock` sleeping
    advances the virtual timeline instantly, so tests exercise the exact
    same pacing logic deterministically.  The source is replayable; each
    iteration restarts the schedule at the clock's current time.
    """

    def __init__(
        self,
        events: Iterable[StreamEvent],
        events_per_second: float | None = None,
        speed: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if (events_per_second is None) == (speed is None):
            raise ConfigurationError(
                "ReplaySource needs exactly one of events_per_second or speed"
            )
        if events_per_second is not None:
            check_positive(events_per_second, "events_per_second")
        if speed is not None:
            check_positive(speed, "speed")
        self._events = list(events)
        self.events_per_second = events_per_second
        self.speed = speed
        self.clock: Clock = clock or WallClock()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[StreamEvent]:
        if not self._events:
            return
        start = self.clock.now()
        first_ts = self._events[0].timestamp
        for index, event in enumerate(self._events):
            if self.events_per_second is not None:
                due = start + index / self.events_per_second
            else:
                due = start + max(event.timestamp - first_ts, 0.0) / self.speed
            lag = due - self.clock.now()
            if lag > 0:
                self.clock.sleep(lag)
            yield event


class PushSource:
    """A thread-safe callback source: application code pushes, a consumer iterates.

    The minimal adapter between "my code produces events" and the
    iterator-shaped ingest path: :meth:`push` enqueues (blocking when a
    ``maxsize`` bound is hit), :meth:`close` ends the stream, and
    iteration yields events until closed and drained.  For arrival
    stamping, backpressure counters and adaptive batching, prefer
    pushing straight into a :class:`~repro.streams.broker.StreamBroker`
    (via :class:`~repro.core.service.MnemonicService`); this class is
    for simple pipelines that only need an iterable.
    """

    _WAKE = object()
    #: how long a blocked consumer goes between closed-flag re-checks
    _POLL_SECONDS = 0.05

    def __init__(self, maxsize: int = 0) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self._closed = False

    def push(self, event: StreamEvent) -> None:
        if self._closed:
            raise ConfigurationError("cannot push into a closed PushSource")
        self._queue.put(event)

    def close(self) -> None:
        """End the stream; buffered events are still delivered.

        Never blocks: consumers terminate off the ``closed`` flag, and
        the queued marker (dropped when a bounded queue is full) only
        wakes a blocked consumer early.
        """
        self._closed = True
        try:
            self._queue.put_nowait(self._WAKE)
        except queue.Full:
            pass  # a full queue means the consumer is about to wake anyway

    def __iter__(self) -> Iterator[StreamEvent]:
        while True:
            try:
                item = self._queue.get(timeout=self._POLL_SECONDS)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is self._WAKE:
                continue  # re-check the flag; drains events racing in behind it
            yield item
