"""Stream sources: adapters that present events to the snapshot generator."""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol

from repro.streams.events import StreamEvent


class StreamSource(Protocol):
    """Anything that can be iterated to yield :class:`StreamEvent` objects."""

    def __iter__(self) -> Iterator[StreamEvent]:  # pragma: no cover - protocol
        ...


class ListSource:
    """A finite, replayable in-memory source (used heavily in tests)."""

    def __init__(self, events: Iterable[StreamEvent]) -> None:
        self._events = list(events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class IterableSource:
    """Wraps a one-shot iterable (e.g. a generator over a trace file)."""

    def __init__(self, iterable: Iterable[StreamEvent]) -> None:
        self._iterable = iterable
        self._consumed = False

    def __iter__(self) -> Iterator[StreamEvent]:
        if self._consumed:
            raise RuntimeError("IterableSource can only be iterated once")
        self._consumed = True
        return iter(self._iterable)
