"""Stream event model and wire encodings.

Every element of an input stream is a :class:`StreamEvent`: an edge
insertion or deletion carrying the endpoint ids, endpoint labels, the
edge label and an event timestamp.

The LSBench dataset used in the paper encodes deletions by negating both
endpoints of a previously inserted triple — ``(-1, -3, l)`` deletes
``(1, 3, l)``.  :func:`decode_lsbench_triple` / :func:`encode_lsbench_triple`
implement that convention so synthetic LSBench streams round-trip through
the same wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class EventKind(IntEnum):
    """Whether a stream event inserts or deletes an edge instance."""

    INSERT = 0
    DELETE = 1


@dataclass(frozen=True)
class StreamEvent:
    """One edge-level event on the input stream."""

    kind: EventKind
    src: int
    dst: int
    label: int = 0
    timestamp: float = 0.0
    src_label: int = 0
    dst_label: int = 0

    @property
    def is_insert(self) -> bool:
        return self.kind is EventKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is EventKind.DELETE

    def as_triple(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.label)

    @staticmethod
    def insert(src: int, dst: int, label: int = 0, timestamp: float = 0.0,
               src_label: int = 0, dst_label: int = 0) -> "StreamEvent":
        """Convenience constructor for an insertion event."""
        return StreamEvent(EventKind.INSERT, src, dst, label, timestamp, src_label, dst_label)

    @staticmethod
    def delete(src: int, dst: int, label: int = 0, timestamp: float = 0.0,
               src_label: int = 0, dst_label: int = 0) -> "StreamEvent":
        """Convenience constructor for a deletion event."""
        return StreamEvent(EventKind.DELETE, src, dst, label, timestamp, src_label, dst_label)


def encode_lsbench_triple(event: StreamEvent) -> tuple[int, int, int]:
    """Encode an event using the LSBench convention (negated endpoints = delete).

    Vertex ids are shifted by one on the wire so that vertex 0 remains
    representable (``-0`` would be ambiguous).
    """
    src, dst = event.src + 1, event.dst + 1
    if event.is_delete:
        return (-src, -dst, event.label)
    return (src, dst, event.label)


def decode_lsbench_triple(triple: tuple[int, int, int], timestamp: float = 0.0) -> StreamEvent:
    """Decode a wire triple produced by :func:`encode_lsbench_triple`."""
    src, dst, label = triple
    if (src < 0) != (dst < 0):
        raise ValueError(f"malformed LSBench triple {triple!r}: endpoint signs disagree")
    if src < 0:
        return StreamEvent.delete(-src - 1, -dst - 1, label, timestamp)
    return StreamEvent.insert(src - 1, dst - 1, label, timestamp)
