"""Stream event model and wire encodings.

Every element of an input stream is a :class:`StreamEvent`: an edge
insertion or deletion carrying the endpoint ids, endpoint labels, the
edge label and an event timestamp.

The LSBench dataset used in the paper encodes deletions by negating both
endpoints of a previously inserted triple — ``(-1, -3, l)`` deletes
``(1, 3, l)``.  :func:`decode_lsbench_triple` / :func:`encode_lsbench_triple`
implement that convention so synthetic LSBench streams round-trip through
the same wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Sequence

import numpy as np


class EventKind(IntEnum):
    """Whether a stream event inserts or deletes an edge instance."""

    INSERT = 0
    DELETE = 1


@dataclass(frozen=True)
class StreamEvent:
    """One edge-level event on the input stream."""

    kind: EventKind
    src: int
    dst: int
    label: int = 0
    timestamp: float = 0.0
    src_label: int = 0
    dst_label: int = 0

    @property
    def is_insert(self) -> bool:
        return self.kind is EventKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is EventKind.DELETE

    def as_triple(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.label)

    @staticmethod
    def insert(src: int, dst: int, label: int = 0, timestamp: float = 0.0,
               src_label: int = 0, dst_label: int = 0) -> "StreamEvent":
        """Convenience constructor for an insertion event."""
        return StreamEvent(EventKind.INSERT, src, dst, label, timestamp, src_label, dst_label)

    @staticmethod
    def delete(src: int, dst: int, label: int = 0, timestamp: float = 0.0,
               src_label: int = 0, dst_label: int = 0) -> "StreamEvent":
        """Convenience constructor for a deletion event."""
        return StreamEvent(EventKind.DELETE, src, dst, label, timestamp, src_label, dst_label)


@dataclass
class EventColumns:
    """A same-kind event batch decoded once into contiguous columns.

    The columnar ingest path decodes a sealed batch's events into int64
    (and one float64) numpy columns exactly once, then threads the column
    arrays through graph mutation (`DynamicGraph.apply_insert_columns`),
    index maintenance (`IndexManager.handle_insert_columns`) and journal
    sealing — instead of re-reading ``StreamEvent`` attributes per edge at
    every layer.  All events in one ``EventColumns`` share ``kind``; the
    batcher already splits insertions from deletions.
    """

    kind: EventKind
    src: np.ndarray
    dst: np.ndarray
    label: np.ndarray
    timestamp: np.ndarray
    src_label: np.ndarray
    dst_label: np.ndarray
    #: the original events, kept so per-event consumers (resolve_deletions,
    #: replay fallbacks) never need to re-materialize dataclass instances
    events: tuple = field(default=(), repr=False, compare=False)

    @classmethod
    def from_events(cls, kind: EventKind,
                    events: Sequence[StreamEvent]) -> "EventColumns":
        """Decode ``events`` (all of ``kind``) into contiguous columns."""
        events = tuple(events)
        n = len(events)
        src = np.empty(n, dtype=np.int64)
        dst = np.empty(n, dtype=np.int64)
        label = np.empty(n, dtype=np.int64)
        timestamp = np.empty(n, dtype=np.float64)
        src_label = np.empty(n, dtype=np.int64)
        dst_label = np.empty(n, dtype=np.int64)
        for i, event in enumerate(events):
            src[i] = event.src
            dst[i] = event.dst
            label[i] = event.label
            timestamp[i] = event.timestamp
            src_label[i] = event.src_label
            dst_label[i] = event.dst_label
        return cls(kind, src, dst, label, timestamp, src_label, dst_label, events)

    def __len__(self) -> int:
        return int(self.src.shape[0])

    def take(self, indices: Iterable[int]) -> "EventColumns":
        """Return a new batch holding the rows at ``indices`` (in order)."""
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray)
                         else indices, dtype=np.int64)
        events = tuple(self.events[int(i)] for i in idx) if self.events else ()
        return EventColumns(
            self.kind, self.src[idx], self.dst[idx], self.label[idx],
            self.timestamp[idx], self.src_label[idx], self.dst_label[idx],
            events,
        )

    def event_tuples(self) -> list[tuple]:
        """Journal tuples, value-identical to ``recovery.event_tuples``.

        ``.tolist()`` yields native Python ints/floats, so the pickled
        payload round-trips to the same :class:`StreamEvent` values as the
        per-event path.
        """
        kind = int(self.kind)
        return [
            (kind, s, d, lb, ts, sl, dl)
            for s, d, lb, ts, sl, dl in zip(
                self.src.tolist(), self.dst.tolist(), self.label.tolist(),
                self.timestamp.tolist(), self.src_label.tolist(),
                self.dst_label.tolist(),
            )
        ]


def encode_lsbench_triple(event: StreamEvent) -> tuple[int, int, int]:
    """Encode an event using the LSBench convention (negated endpoints = delete).

    Vertex ids are shifted by one on the wire so that vertex 0 remains
    representable (``-0`` would be ambiguous).
    """
    src, dst = event.src + 1, event.dst + 1
    if event.is_delete:
        return (-src, -dst, event.label)
    return (src, dst, event.label)


def decode_lsbench_triple(triple: tuple[int, int, int], timestamp: float = 0.0) -> StreamEvent:
    """Decode a wire triple produced by :func:`encode_lsbench_triple`."""
    src, dst, label = triple
    if (src < 0) != (dst < 0):
        raise ValueError(f"malformed LSBench triple {triple!r}: endpoint signs disagree")
    if src < 0:
        return StreamEvent.delete(-src - 1, -dst - 1, label, timestamp)
    return StreamEvent.insert(src - 1, dst - 1, label, timestamp)
