"""Stream ingestion and snapshot generation.

Mnemonic consumes an edge *stream* and turns it into a sequence of
*snapshots*: each snapshot is the last stable state of the data graph
plus the batch of insertions and deletions made since then
(Algorithm 1, the ``getSnapshot`` loop).  The user controls the
snapshotting behaviour through a :class:`repro.streams.StreamConfig`
(stream type, batch size, window size, stride).

Three stream types are supported, matching the paper's evaluation:

* ``insert_only`` — e.g. the NetFlow backbone trace (Figure 6);
* ``insert_delete`` — e.g. LSBench with explicit deletions encoded by
  negating endpoints (Figure 9);
* ``sliding_window`` — e.g. LANL with a 24-hour window and a fixed
  stride; edges are dropped from the tail of the window automatically
  (Figures 10, 15, 17 and Table III).
"""

from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import StreamEvent, EventKind, decode_lsbench_triple, encode_lsbench_triple
from repro.streams.generator import Snapshot, SnapshotGenerator
from repro.streams.sources import IterableSource, ListSource, StreamSource

__all__ = [
    "StreamConfig",
    "StreamType",
    "StreamEvent",
    "EventKind",
    "Snapshot",
    "SnapshotGenerator",
    "StreamSource",
    "ListSource",
    "IterableSource",
    "decode_lsbench_triple",
    "encode_lsbench_triple",
]
