"""Stream ingestion and snapshot generation.

Mnemonic consumes an edge *stream* and turns it into a sequence of
*snapshots*: each snapshot is the last stable state of the data graph
plus the batch of insertions and deletions made since then
(Algorithm 1, the ``getSnapshot`` loop).  The user controls the
snapshotting behaviour through a :class:`repro.streams.StreamConfig`
(stream type, batch size, adaptive batch delay, window size, stride).

Three stream types are supported, matching the paper's evaluation:

* ``insert_only`` — e.g. the NetFlow backbone trace (Figure 6);
* ``insert_delete`` — e.g. LSBench with explicit deletions encoded by
  negating endpoints (Figure 9);
* ``sliding_window`` — e.g. LANL with a 24-hour window and a fixed
  stride; edges are dropped from the tail of the window automatically
  (Figures 10, 15, 17 and Table III).

For live-service scenarios the module additionally provides the
ingestion layer that decouples event arrival from processing: a bounded
:class:`~repro.streams.broker.StreamBroker` with backpressure and
arrival stamping, :class:`~repro.streams.clock.Clock` implementations
(wall and deterministic virtual time), and rate-controlled / file /
push sources in :mod:`repro.streams.sources`.
"""

from repro.streams.broker import POLL_TIMEOUT, BrokerClosedError, StreamBroker
from repro.streams.clock import Clock, VirtualClock, WallClock
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import (
    EventKind,
    StreamEvent,
    decode_lsbench_triple,
    encode_lsbench_triple,
)
from repro.streams.fanout import FanoutStats, ShardFanout
from repro.streams.generator import Snapshot, SnapshotBatcher, SnapshotGenerator
from repro.streams.sources import (
    CSVTraceSource,
    IterableSource,
    ListSource,
    PushSource,
    ReplaySource,
    StreamSource,
)

__all__ = [
    "StreamConfig",
    "StreamType",
    "StreamEvent",
    "EventKind",
    "Snapshot",
    "SnapshotBatcher",
    "SnapshotGenerator",
    "StreamSource",
    "ListSource",
    "IterableSource",
    "CSVTraceSource",
    "PushSource",
    "ReplaySource",
    "StreamBroker",
    "BrokerClosedError",
    "POLL_TIMEOUT",
    "ShardFanout",
    "FanoutStats",
    "Clock",
    "WallClock",
    "VirtualClock",
    "decode_lsbench_triple",
    "encode_lsbench_triple",
]
