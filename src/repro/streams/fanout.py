"""Shard fan-out: split one edge stream into per-shard sub-streams.

The sharded engine routes mutations internally, but an ingest tier that
already knows the partition layout can split the stream *before* it
reaches the engines — one broker (or socket, or queue partition) per
shard, each carrying only the events its shard stores.  That is the
deployment shape the scatter-gather design assumes, and this module is
its in-process model: :class:`ShardFanout` applies the same
:class:`~repro.core.sharding.PartitionStrategy` the engine uses and
delivers every event to the shard(s) owning its endpoints — both
shards when the edge crosses the partition boundary, mirroring the
router's replication rule, so each sub-stream is self-contained for its
shard's adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.sharding import PartitionStrategy
from repro.streams.broker import StreamBroker
from repro.streams.events import StreamEvent
from repro.utils.validation import ConfigurationError


@dataclass
class FanoutStats:
    """Delivery ledger for one fan-out instance."""

    #: events consumed from the input stream
    events: int = 0
    #: per-shard deliveries (an event landing on two shards counts twice)
    deliveries: list[int] = field(default_factory=list)
    #: events whose endpoints are owned by different shards
    boundary_events: int = 0

    def replication_factor(self) -> float:
        """Mean deliveries per event (1.0 = perfectly shard-local stream)."""
        if not self.events:
            return 0.0
        return sum(self.deliveries) / self.events


class ShardFanout:
    """Route stream events to the shard(s) owning their endpoints.

    Stateless with respect to the stream (ownership is re-derived from
    the pure strategy, exactly as the engine's partition map does at
    first sight), so a fan-out can sit in a different process from the
    engines without coordination.
    """

    def __init__(
        self,
        strategy: PartitionStrategy,
        num_shards: int,
        brokers: Sequence[StreamBroker] | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if brokers is not None and len(brokers) != num_shards:
            raise ConfigurationError(
                f"expected {num_shards} brokers, got {len(brokers)}"
            )
        self.strategy = strategy
        self.num_shards = num_shards
        self.brokers = list(brokers) if brokers is not None else None
        self.stats = FanoutStats(deliveries=[0] * num_shards)

    def route(self, event: StreamEvent) -> tuple[int, ...]:
        """The shard indices that must see ``event`` (1 or 2 of them)."""
        src_owner = self.strategy.shard_of(event.src, event.src_label, self.num_shards)
        dst_owner = self.strategy.shard_of(event.dst, event.dst_label, self.num_shards)
        if src_owner == dst_owner:
            return (src_owner,)
        return (src_owner, dst_owner)

    def deliver(self, event: StreamEvent) -> tuple[int, ...]:
        """Route one event, updating stats and feeding attached brokers."""
        targets = self.route(event)
        self.stats.events += 1
        if len(targets) > 1:
            self.stats.boundary_events += 1
        for shard in targets:
            self.stats.deliveries[shard] += 1
            if self.brokers is not None:
                self.brokers[shard].put(event)
        return targets

    def fan_out(self, events: Iterable[StreamEvent]) -> list[list[StreamEvent]]:
        """Split ``events`` into per-shard sub-streams (order-preserving)."""
        streams: list[list[StreamEvent]] = [[] for _ in range(self.num_shards)]
        for event in events:
            for shard in self.deliver(event):
                streams[shard].append(event)
        return streams

    def fan_out_columns(self, columns) -> list:
        """Columnar :meth:`fan_out`: split decoded event columns per shard.

        Ownership comes from the same pure strategy but is computed once
        per endpoint column instead of per event, and each sub-stream is
        produced by an index ``take`` on the batch columns — no
        per-event object churn.  Stats match :meth:`fan_out` to the
        digit; attached brokers are not fed (a columnar sub-stream is
        handed to the shard engine directly, not replayed event-wise).
        """
        import numpy as np

        n = len(columns)
        shard_of = self.strategy.shard_of
        num_shards = self.num_shards
        src_owner = np.fromiter(
            (shard_of(int(v), int(lab), num_shards)
             for v, lab in zip(columns.src.tolist(), columns.src_label.tolist())),
            dtype=np.int64, count=n,
        )
        dst_owner = np.fromiter(
            (shard_of(int(v), int(lab), num_shards)
             for v, lab in zip(columns.dst.tolist(), columns.dst_label.tolist())),
            dtype=np.int64, count=n,
        )
        boundary = src_owner != dst_owner
        self.stats.events += n
        self.stats.boundary_events += int(boundary.sum())
        streams = []
        for shard in range(num_shards):
            member = (src_owner == shard) | (dst_owner == shard)
            rows = np.nonzero(member)[0]
            self.stats.deliveries[shard] += int(rows.shape[0])
            streams.append(columns.take(rows))
        return streams
