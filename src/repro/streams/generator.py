"""Snapshot generation from an event stream.

The snapshot generator is the first of the three Mnemonic components
(Figure 2).  It groups the raw event stream into *snapshots*: each
snapshot carries the batch of insertions and deletions to be applied on
top of the previous graph state.

Three behaviours are implemented, selected by
:class:`repro.streams.StreamConfig.stream_type`:

* **insert_only** — every ``batch_size`` insertion events become one
  snapshot; deletion events are rejected.
* **insert_delete** — events of both kinds are grouped; deletions that
  cancel an insertion from the *same* batch are elided (the pair is a
  net no-op and the engine never sees it).
* **sliding_window** — events must arrive in non-decreasing timestamp
  order.  The window advances by ``stride`` time units per snapshot; the
  snapshot contains the events whose timestamps fall inside the new
  stride plus synthetic deletions for every edge that has slid out of
  the ``window``.

The first two share one incremental implementation,
:class:`SnapshotBatcher`, which also supports *adaptive batching*
(:attr:`~repro.streams.StreamConfig.max_batch_delay`): a snapshot is
sealed when the size cap is reached **or** its first event has been
pending longer than the delay, whichever comes first.  When the source
is a :class:`~repro.streams.broker.StreamBroker` the generator polls
with a deadline so a partial batch is flushed even while the stream is
idle, and every snapshot is stamped with the arrival time of its first
event — the anchor of ingest-to-result latency accounting.  With
``max_batch_delay=None`` (the default) batching is fixed-size and
bit-identical to the historical generator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.streams.broker import POLL_TIMEOUT, StreamBroker
from repro.streams.clock import Clock
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind, StreamEvent
from repro.streams.sources import StreamSource
from repro.utils.validation import ConfigurationError


@dataclass
class Snapshot:
    """One unit of work handed to the engine's main loop."""

    number: int
    insertions: list[StreamEvent] = field(default_factory=list)
    deletions: list[StreamEvent] = field(default_factory=list)
    #: largest event timestamp included so far (window high edge)
    watermark: float = 0.0
    #: arrival stamp (broker clock) of the batch's first event, when known
    first_arrival: float | None = None
    #: arrival stamp at which the batch was sealed (size cap, deadline or EOS)
    sealed_at: float | None = None
    #: lazy one-shot columnar decodes (see :meth:`insert_columns`)
    _insert_cols: object = field(default=None, repr=False, compare=False)
    _delete_cols: object = field(default=None, repr=False, compare=False)

    @property
    def insert_batch_size(self) -> int:
        return len(self.insertions)

    @property
    def delete_batch_size(self) -> int:
        return len(self.deletions)

    @property
    def is_empty(self) -> bool:
        return not self.insertions and not self.deletions

    def insert_columns(self):
        """Decoded int64 columns for ``insertions`` (cached, None when empty).

        Sealed batches are immutable, so the decode happens once per
        batch no matter how many consumers ask — engine ingest, shard
        fan-out and the journal all share the same arrays.
        """
        if self._insert_cols is None and self.insertions:
            from repro.streams.events import EventColumns, EventKind

            self._insert_cols = EventColumns.from_events(
                EventKind.INSERT, self.insertions
            )
        return self._insert_cols

    def delete_columns(self):
        """Decoded int64 columns for ``deletions`` (cached, None when empty)."""
        if self._delete_cols is None and self.deletions:
            from repro.streams.events import EventColumns, EventKind

            self._delete_cols = EventColumns.from_events(
                EventKind.DELETE, self.deletions
            )
        return self._delete_cols


class SnapshotBatcher:
    """Incremental insert/insert-delete batching shared by pull and push paths.

    :class:`SnapshotGenerator` drives it from an iterator;
    :class:`~repro.core.service.MnemonicService` drives it one event at
    a time from ``submit()``/``poll()``.  Sealing rules:

    * size: a batch reaching ``config.batch_size`` events seals at once;
    * delay (only when ``config.max_batch_delay`` is set): an incoming
      event whose arrival is ``max_batch_delay`` or more after the open
      batch's first arrival seals the pending batch *before* joining the
      next one, and :meth:`flush` seals a partial batch when the caller's
      deadline (see :meth:`poll_timeout`) expires with no event.

    With ``max_batch_delay=None`` only the size rule fires, which is
    exactly the historical fixed-size behaviour.
    """

    def __init__(
        self,
        config: StreamConfig,
        next_number: Callable[[], int],
    ) -> None:
        if config.stream_type is StreamType.SLIDING_WINDOW:
            raise ConfigurationError(
                "SnapshotBatcher handles insert_only / insert_delete streams; "
                "sliding windows are generated by SnapshotGenerator directly"
            )
        self.config = config
        self._insert_delete = config.stream_type is StreamType.INSERT_DELETE
        self._next_number = next_number
        self._inserts: list[StreamEvent] = []
        self._deletes: list[StreamEvent] = []
        #: monotone max event timestamp over the whole stream (not per batch)
        self._watermark = 0.0
        self._first_arrival: float | None = None
        self._last_arrival: float | None = None

    # ------------------------------------------------------------------ state
    @property
    def pending_events(self) -> int:
        """Events in the open (unsealed) batch."""
        return len(self._inserts) + len(self._deletes)

    def deadline(self) -> float | None:
        """Arrival time at which the open batch must flush (None: no deadline)."""
        if self.config.max_batch_delay is None or self._first_arrival is None:
            return None
        return self._first_arrival + self.config.max_batch_delay

    def poll_timeout(self, now: float) -> float | None:
        """How long a broker poll may wait before the open batch must flush."""
        deadline = self.deadline()
        if deadline is None:
            return None
        return max(deadline - now, 0.0)

    def deadline_expired(self, now: float) -> bool:
        deadline = self.deadline()
        return deadline is not None and now >= deadline

    # ------------------------------------------------------------------ feeding
    def offer(self, event: StreamEvent, arrival: float) -> list[Snapshot]:
        """Feed one event; returns the snapshots this event sealed (0, 1 or 2)."""
        if not self._insert_delete and event.kind is not EventKind.INSERT:
            raise ConfigurationError(
                "insert_only stream received a deletion event; "
                "use stream_type='insert_delete' instead"
            )
        sealed: list[Snapshot] = []
        delay = self.config.max_batch_delay
        if (
            delay is not None
            and self._first_arrival is not None
            and arrival - self._first_arrival >= delay
        ):
            sealed.append(self._seal(sealed_at=self._last_arrival))
        if self._first_arrival is None:
            self._first_arrival = arrival
        self._last_arrival = arrival
        if event.timestamp > self._watermark:
            self._watermark = event.timestamp
        if self._insert_delete and event.kind is EventKind.DELETE:
            if not self._cancel_matching_insert(event):
                self._deletes.append(event)
            elif self.pending_events == 0:
                # The cancellation emptied the open batch: drop its arrival
                # stamp, or the dead deadline would pin broker polls to a
                # zero timeout (a hot spin while idle) and the next event
                # would seal an empty snapshot with a bogus latency.
                self._first_arrival = None
        else:
            self._inserts.append(event)
        if self.pending_events >= self.config.batch_size:
            sealed.append(self._seal(sealed_at=arrival))
        return sealed

    def flush(self, sealed_at: float | None = None) -> Snapshot | None:
        """Seal the open batch (deadline expiry or end of stream); None when empty."""
        if self.pending_events == 0:
            return None
        return self._seal(sealed_at=sealed_at if sealed_at is not None else self._last_arrival)

    def _seal(self, sealed_at: float | None) -> Snapshot:
        snapshot = Snapshot(
            self._next_number(),
            insertions=self._inserts,
            deletions=self._deletes,
            watermark=self._watermark,
            first_arrival=self._first_arrival,
            sealed_at=sealed_at,
        )
        self._inserts, self._deletes = [], []
        self._first_arrival = None
        return snapshot

    def _cancel_matching_insert(self, delete: StreamEvent) -> bool:
        """Drop the latest same-triple insertion pending in this batch, if any."""
        inserts = self._inserts
        for idx in range(len(inserts) - 1, -1, -1):
            if inserts[idx].as_triple() == delete.as_triple():
                inserts.pop(idx)
                return True
        return False


class SnapshotGenerator:
    """Turns a :class:`StreamSource` into an iterator of :class:`Snapshot` objects."""

    def __init__(self, source: StreamSource, config: StreamConfig) -> None:
        self.source = source
        self.config = config
        self._snapshot_counter = 0

    # ------------------------------------------------------------------ public
    @property
    def clock(self) -> Clock | None:
        """The arrival clock for latency stamping — broker sources only.

        Only a broker-fed stream stamps snapshots with *clock* arrival
        times; plain sources (including a bare :class:`ReplaySource`,
        which also carries a ``clock`` attribute for pacing) fall back
        to event timestamps, and subtracting those from a clock reading
        would fabricate nonsense latencies — so no clock is exposed.
        """
        if isinstance(self.source, StreamBroker):
            return self.source.clock
        return None

    def __iter__(self) -> Iterator[Snapshot]:
        if self.config.stream_type is StreamType.SLIDING_WINDOW:
            yield from self._iter_sliding_window()
        else:
            yield from self._iter_batched()

    def snapshots(self) -> list[Snapshot]:
        """Materialise the whole stream as a list of snapshots."""
        return list(self)

    # ------------------------------------------------------------------ modes
    def _next_number(self) -> int:
        number = self._snapshot_counter
        self._snapshot_counter += 1
        return number

    def _iter_batched(self) -> Iterator[Snapshot]:
        """Insert-only / insert-delete batching (fixed-size or adaptive)."""
        batcher = SnapshotBatcher(self.config, self._next_number)
        if isinstance(self.source, StreamBroker):
            yield from self._iter_broker(batcher, self.source)
        else:
            # Plain sources have no arrival clock; event time doubles as
            # arrival time, so an adaptive delay follows the events' own
            # timestamps (deterministic, replayable).
            for event in self.source:
                yield from batcher.offer(event, arrival=event.timestamp)
        final = batcher.flush()
        if final is not None:
            yield final

    def _iter_broker(self, batcher: SnapshotBatcher, broker: StreamBroker) -> Iterator[Snapshot]:
        """Deadline-driven consumption: poll with the open batch's time budget.

        A poll that times out means the open batch's first event has
        been pending for ``max_batch_delay``: flush it even though the
        size cap was never reached.  ``poll`` returning None means the
        broker is closed and drained; the trailing partial batch is
        flushed by the caller.
        """
        clock = broker.clock
        while True:
            item = broker.poll(batcher.poll_timeout(clock.now()))
            if item is None:
                return
            if item is POLL_TIMEOUT:
                snapshot = batcher.flush(sealed_at=clock.now())
                if snapshot is not None:
                    yield snapshot
                continue
            event, arrival = item
            yield from batcher.offer(event, arrival)

    def _iter_sliding_window(self) -> Iterator[Snapshot]:
        window = float(self.config.window)  # type: ignore[arg-type]
        stride = float(self.config.stride)  # type: ignore[arg-type]
        live: deque[StreamEvent] = deque()  # inserted events still inside the window
        pending: list[StreamEvent] = []
        stride_end: float | None = None
        last_ts = float("-inf")

        def build_snapshot(upper: float) -> Snapshot:
            inserts = list(pending)
            pending.clear()
            low = upper - window
            deletes: list[StreamEvent] = []
            # Edges inserted in *earlier* snapshots that have now expired.
            while live and live[0].timestamp <= low:
                expired = live.popleft()
                deletes.append(
                    StreamEvent.delete(
                        expired.src, expired.dst, expired.label, expired.timestamp,
                        expired.src_label, expired.dst_label,
                    )
                )
            # Newly inserted edges enter the live window unless they already expired.
            for event in inserts:
                if event.timestamp > low:
                    live.append(event)
                else:
                    deletes.append(
                        StreamEvent.delete(event.src, event.dst, event.label, event.timestamp,
                                           event.src_label, event.dst_label)
                    )
            return Snapshot(self._next_number(), insertions=inserts, deletions=deletes,
                            watermark=upper)

        for event in self.source:
            if event.kind is not EventKind.INSERT:
                raise ConfigurationError(
                    "sliding_window streams manage deletions implicitly; "
                    "explicit deletion events are not allowed"
                )
            if event.timestamp < last_ts:
                raise ConfigurationError(
                    "sliding_window streams require non-decreasing timestamps "
                    f"(got {event.timestamp} after {last_ts})"
                )
            last_ts = event.timestamp
            if stride_end is None:
                stride_end = event.timestamp + stride
            while event.timestamp >= stride_end:
                yield build_snapshot(stride_end)
                stride_end += stride
            pending.append(event)
        if pending and stride_end is not None:
            yield build_snapshot(stride_end)
