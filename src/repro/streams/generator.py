"""Snapshot generation from an event stream.

The snapshot generator is the first of the three Mnemonic components
(Figure 2).  It groups the raw event stream into *snapshots*: each
snapshot carries the batch of insertions and deletions to be applied on
top of the previous graph state.

Three behaviours are implemented, selected by
:class:`repro.streams.StreamConfig.stream_type`:

* **insert_only** — every ``batch_size`` insertion events become one
  snapshot; deletion events are rejected.
* **insert_delete** — events of both kinds are grouped; deletions that
  cancel an insertion from the *same* batch are elided (the pair is a
  net no-op and the engine never sees it).
* **sliding_window** — events must arrive in non-decreasing timestamp
  order.  The window advances by ``stride`` time units per snapshot; the
  snapshot contains the events whose timestamps fall inside the new
  stride plus synthetic deletions for every edge that has slid out of
  the ``window``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind, StreamEvent
from repro.streams.sources import StreamSource
from repro.utils.validation import ConfigurationError


@dataclass
class Snapshot:
    """One unit of work handed to the engine's main loop."""

    number: int
    insertions: list[StreamEvent] = field(default_factory=list)
    deletions: list[StreamEvent] = field(default_factory=list)
    #: largest event timestamp included so far (window high edge)
    watermark: float = 0.0

    @property
    def insert_batch_size(self) -> int:
        return len(self.insertions)

    @property
    def delete_batch_size(self) -> int:
        return len(self.deletions)

    @property
    def is_empty(self) -> bool:
        return not self.insertions and not self.deletions


class SnapshotGenerator:
    """Turns a :class:`StreamSource` into an iterator of :class:`Snapshot` objects."""

    def __init__(self, source: StreamSource, config: StreamConfig) -> None:
        self.source = source
        self.config = config
        self._snapshot_counter = 0

    # ------------------------------------------------------------------ public
    def __iter__(self) -> Iterator[Snapshot]:
        if self.config.stream_type is StreamType.INSERT_ONLY:
            yield from self._iter_insert_only()
        elif self.config.stream_type is StreamType.INSERT_DELETE:
            yield from self._iter_insert_delete()
        else:
            yield from self._iter_sliding_window()

    def snapshots(self) -> list[Snapshot]:
        """Materialise the whole stream as a list of snapshots."""
        return list(self)

    # ------------------------------------------------------------------ modes
    def _next_number(self) -> int:
        number = self._snapshot_counter
        self._snapshot_counter += 1
        return number

    def _iter_insert_only(self) -> Iterator[Snapshot]:
        batch: list[StreamEvent] = []
        watermark = 0.0
        for event in self.source:
            if event.kind is not EventKind.INSERT:
                raise ConfigurationError(
                    "insert_only stream received a deletion event; "
                    "use stream_type='insert_delete' instead"
                )
            batch.append(event)
            watermark = max(watermark, event.timestamp)
            if len(batch) >= self.config.batch_size:
                yield Snapshot(self._next_number(), insertions=batch, watermark=watermark)
                batch = []
        if batch:
            yield Snapshot(self._next_number(), insertions=batch, watermark=watermark)

    def _iter_insert_delete(self) -> Iterator[Snapshot]:
        inserts: list[StreamEvent] = []
        deletes: list[StreamEvent] = []
        watermark = 0.0
        for event in self.source:
            watermark = max(watermark, event.timestamp)
            if event.kind is EventKind.INSERT:
                inserts.append(event)
            else:
                cancelled = self._cancel_matching_insert(inserts, event)
                if not cancelled:
                    deletes.append(event)
            if len(inserts) + len(deletes) >= self.config.batch_size:
                yield Snapshot(self._next_number(), insertions=inserts, deletions=deletes,
                               watermark=watermark)
                inserts, deletes = [], []
        if inserts or deletes:
            yield Snapshot(self._next_number(), insertions=inserts, deletions=deletes,
                           watermark=watermark)

    @staticmethod
    def _cancel_matching_insert(inserts: list[StreamEvent], delete: StreamEvent) -> bool:
        """Drop the latest same-triple insertion pending in this batch, if any."""
        for idx in range(len(inserts) - 1, -1, -1):
            if inserts[idx].as_triple() == delete.as_triple():
                inserts.pop(idx)
                return True
        return False

    def _iter_sliding_window(self) -> Iterator[Snapshot]:
        window = float(self.config.window)  # type: ignore[arg-type]
        stride = float(self.config.stride)  # type: ignore[arg-type]
        live: deque[StreamEvent] = deque()  # inserted events still inside the window
        pending: list[StreamEvent] = []
        stride_end: float | None = None
        last_ts = float("-inf")

        def build_snapshot(upper: float) -> Snapshot:
            inserts = list(pending)
            pending.clear()
            low = upper - window
            deletes: list[StreamEvent] = []
            # Edges inserted in *earlier* snapshots that have now expired.
            while live and live[0].timestamp <= low:
                expired = live.popleft()
                deletes.append(
                    StreamEvent.delete(
                        expired.src, expired.dst, expired.label, expired.timestamp,
                        expired.src_label, expired.dst_label,
                    )
                )
            # Newly inserted edges enter the live window unless they already expired.
            for event in inserts:
                if event.timestamp > low:
                    live.append(event)
                else:
                    deletes.append(
                        StreamEvent.delete(event.src, event.dst, event.label, event.timestamp,
                                           event.src_label, event.dst_label)
                    )
            return Snapshot(self._next_number(), insertions=inserts, deletions=deletes,
                            watermark=upper)

        for event in self.source:
            if event.kind is not EventKind.INSERT:
                raise ConfigurationError(
                    "sliding_window streams manage deletions implicitly; "
                    "explicit deletion events are not allowed"
                )
            if event.timestamp < last_ts:
                raise ConfigurationError(
                    "sliding_window streams require non-decreasing timestamps "
                    f"(got {event.timestamp} after {last_ts})"
                )
            last_ts = event.timestamp
            if stride_end is None:
                stride_end = event.timestamp + stride
            while event.timestamp >= stride_end:
                yield build_snapshot(stride_end)
                stride_end += stride
            pending.append(event)
        if pending and stride_end is not None:
            yield build_snapshot(stride_end)
