"""Stream configuration (the paper's user-supplied "stream configurations")."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import ConfigurationError, check_positive


class StreamType(str, Enum):
    """Supported stream semantics."""

    INSERT_ONLY = "insert_only"
    INSERT_DELETE = "insert_delete"
    SLIDING_WINDOW = "sliding_window"


@dataclass
class StreamConfig:
    """Knobs that customise snapshot generation and retention.

    Attributes
    ----------
    stream_type:
        One of :class:`StreamType`.  ``SLIDING_WINDOW`` automatically
        produces deletions for edges whose timestamp falls out of the
        window; the other two only relay explicit stream events.
    batch_size:
        Maximum number of events grouped into one snapshot.  Batch size 1
        reproduces strictly per-edge processing (the TurboFlux regime);
        the paper's default is 16K.
    max_batch_delay:
        Adaptive batching: when set, a snapshot is flushed as soon as
        *either* ``batch_size`` events accumulated *or* this many
        seconds passed since the batch's first event — whichever comes
        first — so batches stay small under low load (bounding per-event
        latency) and grow to ``batch_size`` under bursts (amortising
        per-snapshot cost).  Time is arrival time when the source is a
        :class:`~repro.streams.broker.StreamBroker` (its clock also
        drives partial-batch flushes while the stream is idle), and the
        events' own timestamps for plain sources.  ``None`` (default)
        preserves fixed-size batching bit-identically.  Applies to
        ``INSERT_ONLY`` and ``INSERT_DELETE`` streams; ``SLIDING_WINDOW``
        snapshots are already time-driven by ``stride``.
    window:
        Length of the sliding window, in the stream's time units.  Only
        used for ``SLIDING_WINDOW`` streams.
    stride:
        How far the window advances between snapshots, in time units.
        Only used for ``SLIDING_WINDOW`` streams.  Each snapshot then
        contains all events inside the new stride plus deletions of the
        edges that slid out of the window.
    in_memory_window:
        When set, the engine spills edges (and their DEBI rows) older
        than this many events to the external store (Table III).
    """

    stream_type: StreamType = StreamType.INSERT_ONLY
    batch_size: int = 16 * 1024
    max_batch_delay: float | None = None
    window: float | None = None
    stride: float | None = None
    in_memory_window: int | None = None

    @property
    def max_batch_size(self) -> int:
        """Alias naming the size cap next to ``max_batch_delay`` (== batch_size)."""
        return self.batch_size

    def __post_init__(self) -> None:
        if isinstance(self.stream_type, str):
            self.stream_type = StreamType(self.stream_type)
        check_positive(self.batch_size, "batch_size")
        if self.max_batch_delay is not None:
            check_positive(self.max_batch_delay, "max_batch_delay")
            if self.stream_type is StreamType.SLIDING_WINDOW:
                raise ConfigurationError(
                    "max_batch_delay applies to insert_only / insert_delete "
                    "streams; sliding_window snapshots are already time-driven "
                    "by `stride`"
                )
        if self.stream_type is StreamType.SLIDING_WINDOW:
            if self.window is None or self.stride is None:
                raise ConfigurationError(
                    "sliding_window streams require both `window` and `stride`"
                )
            check_positive(self.window, "window")
            check_positive(self.stride, "stride")
            if self.stride > self.window:
                raise ConfigurationError(
                    f"stride ({self.stride}) must not exceed window ({self.window})"
                )
        if self.in_memory_window is not None:
            check_positive(self.in_memory_window, "in_memory_window")
