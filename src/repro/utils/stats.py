"""Small, dependency-free summary statistics (latency rollups).

The service layer reports per-snapshot ingest-to-result latencies;
benchmark tables and ``RunResult.latency_summary()`` roll them up into
the usual service percentiles.  Implemented in plain Python (linear
interpolation between order statistics, the same definition as
``numpy.percentile``'s default) so core result types never depend on
numpy being importable in worker processes.
"""

from __future__ import annotations

from typing import Iterable


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Raises :class:`ValueError` on an empty input — callers decide what an
    absent distribution means; this module does not invent a zero.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence is undefined")
    return _percentile_sorted(ordered, q)


def _percentile_sorted(ordered: list[float], q: float) -> float:
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def latency_summary(values: Iterable[float]) -> dict[str, float] | None:
    """The standard service rollup: count/mean/p50/p95/p99/max.

    Returns None for an empty input so "no latency data" (plain list
    replays have no arrival stamps) stays distinct from "zero latency".
    """
    ordered = sorted(values)
    if not ordered:
        return None
    return {
        "count": float(len(ordered)),
        "mean": sum(ordered) / len(ordered),
        "p50": _percentile_sorted(ordered, 50.0),
        "p95": _percentile_sorted(ordered, 95.0),
        "p99": _percentile_sorted(ordered, 99.0),
        "max": ordered[-1],
    }
