"""Shared low-level utilities used across the Mnemonic reproduction.

The helpers in this package are deliberately small and dependency-free
(beyond :mod:`numpy`).  They provide the growable bitsets backing DEBI,
deterministic RNG construction for the synthetic datasets, lightweight
timers used by the benchmark harness, and argument-validation helpers.
"""

from repro.utils.bitset import BitMatrix, BitVector
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timers import Timeline, Timer, WallTimer
from repro.utils.validation import (
    ConfigurationError,
    GraphError,
    QueryError,
    ReproError,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "BitMatrix",
    "BitVector",
    "make_rng",
    "spawn_rngs",
    "Timeline",
    "Timer",
    "WallTimer",
    "ReproError",
    "ConfigurationError",
    "GraphError",
    "QueryError",
    "check_non_negative",
    "check_positive",
    "check_type",
]
