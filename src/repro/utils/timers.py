"""Lightweight timing utilities used by the engine and benchmark harness.

The paper reports per-phase runtimes (index management vs. enumeration,
Table III) and per-core CPU utilisation over the lifetime of a query
(Figure 7).  ``Timer`` accumulates named phase durations; ``Timeline``
records (timestamp, value) samples, e.g. worker busy fractions.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class WallTimer:
    """A simple start/stop wall-clock timer."""

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("WallTimer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Timer:
    """Accumulates named phase durations.

    >>> t = Timer()
    >>> with t.phase("filtering"):
    ...     pass
    >>> "filtering" in t.totals
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Return the accumulated duration of phase ``name`` (0.0 if never run)."""
        return self.totals.get(name, 0.0)

    def fraction(self, name: str) -> float:
        """Return phase ``name``'s share of the total measured time."""
        grand = sum(self.totals.values())
        if grand == 0:
            return 0.0
        return self.totals.get(name, 0.0) / grand

    def merge(self, other: "Timer") -> None:
        """Fold another timer's totals into this one."""
        for name, value in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + value
        for name, value in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + value

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)


@dataclass
class Timeline:
    """A sequence of (relative timestamp, value) samples.

    Used to reproduce Figure 7 (per-worker utilisation over runtime):
    each worker appends busy-fraction samples, and the harness normalises
    timestamps to percent-of-runtime.
    """

    samples: list[tuple[float, float]] = field(default_factory=list)
    _origin: float = field(default_factory=time.perf_counter)

    def record(self, value: float, timestamp: float | None = None) -> None:
        ts = time.perf_counter() if timestamp is None else timestamp
        self.samples.append((ts - self._origin, value))

    def normalised(self) -> list[tuple[float, float]]:
        """Return samples with timestamps rescaled to [0, 1]."""
        if not self.samples:
            return []
        t_max = max(ts for ts, _ in self.samples)
        if t_max == 0:
            return [(0.0, v) for _, v in self.samples]
        return [(ts / t_max, v) for ts, v in self.samples]

    def mean(self) -> float:
        """Mean sample value (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(v for _, v in self.samples) / len(self.samples)
