"""Growable numpy-backed bitsets.

DEBI stores one small bitmap per data edge (one bit per non-root query
node) and one large bit-vector over data vertices (``roots``).  Both are
implemented here on top of flat ``numpy`` arrays so that bulk operations
(counting, popcount, row clears) are vectorized, while individual
get/set/clear operations stay O(1).

Two classes are provided:

``BitVector``
    A growable vector of bits addressed by a non-negative integer index.

``BitMatrix``
    A growable matrix of rows x ``width`` bits where ``width`` is fixed at
    construction time (the number of non-root query nodes) and rows are
    addressed by edge id.  Because query graphs in this problem domain are
    small (|V_Q| <= 64 in all of the paper's workloads) each row fits in a
    single 64-bit word, which keeps per-edge updates a single array write.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

_WORD_BITS = 64


class BitVector:
    """A growable bit vector with O(1) get/set/clear.

    Parameters
    ----------
    initial_capacity:
        Number of bits to pre-allocate.  The vector grows automatically
        (geometric doubling) whenever a larger index is written.
    """

    __slots__ = ("_words", "_nbits")

    def __init__(self, initial_capacity: int = 1024) -> None:
        check_positive(initial_capacity, "initial_capacity")
        nwords = (initial_capacity + _WORD_BITS - 1) // _WORD_BITS
        self._words = np.zeros(max(nwords, 1), dtype=np.uint64)
        self._nbits = 0

    def _ensure(self, index: int) -> None:
        needed_words = index // _WORD_BITS + 1
        if needed_words > self._words.shape[0]:
            new_size = max(needed_words, self._words.shape[0] * 2)
            grown = np.zeros(new_size, dtype=np.uint64)
            grown[: self._words.shape[0]] = self._words
            self._words = grown
        if index + 1 > self._nbits:
            self._nbits = index + 1

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        check_non_negative(index, "index")
        self._ensure(index)
        self._words[index // _WORD_BITS] |= np.uint64(1 << (index % _WORD_BITS))

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0 (no-op for indexes never written)."""
        check_non_negative(index, "index")
        if index >= self._nbits:
            return
        self._words[index // _WORD_BITS] &= np.uint64(
            ~(1 << (index % _WORD_BITS)) & (2**_WORD_BITS - 1)
        )

    def get(self, index: int) -> bool:
        """Return bit ``index`` (False for indexes never written)."""
        check_non_negative(index, "index")
        if index >= self._nbits:
            return False
        word = int(self._words[index // _WORD_BITS])
        return bool((word >> (index % _WORD_BITS)) & 1)

    def assign(self, index: int, value: bool) -> None:
        """Set bit ``index`` to ``value``."""
        if value:
            self.set(index)
        else:
            self.clear(index)

    def count(self) -> int:
        """Return the number of set bits."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def clear_all(self) -> None:
        """Reset every bit to 0 while keeping the allocated capacity."""
        self._words[:] = 0

    def __len__(self) -> int:
        return self._nbits

    def __contains__(self, index: int) -> bool:
        return self.get(index)

    # -- buffer export / attach ---------------------------------------------
    def export_words(self) -> tuple[np.ndarray, int]:
        """Return ``(words, nbits)`` where ``words`` is a view of the live words.

        ``words`` aliases this vector's storage (no copy); callers copy it
        into a shared-memory segment and re-attach with :meth:`from_words`.
        """
        nwords = (self._nbits + _WORD_BITS - 1) // _WORD_BITS
        return self._words[:nwords], self._nbits

    @classmethod
    def from_words(cls, words: np.ndarray, nbits: int) -> "BitVector":
        """Wrap an existing uint64 word buffer (zero-copy attach).

        The result is a *read-mostly* view: reads are exact, but writing a
        bit beyond the buffer would silently reallocate private storage, so
        attached vectors must be treated as read-only.
        """
        vec = cls.__new__(cls)
        vec._words = np.asarray(words, dtype=np.uint64)
        vec._nbits = nbits
        return vec

    def load_words(self, words: np.ndarray, nbits: int) -> None:
        """Overwrite all content from an exported word buffer (in place).

        The writable inverse of :meth:`from_words`, used by checkpoint
        restore: existing references to this vector stay valid.
        """
        words = np.asarray(words, dtype=np.uint64)
        if words.shape[0] > self._words.shape[0]:
            self._words = np.array(words, dtype=np.uint64, copy=True)
        else:
            self._words[: words.shape[0]] = words
            self._words[words.shape[0] :] = 0
        self._nbits = nbits

    def get_many(self, indices: np.ndarray) -> np.ndarray:
        """Boolean mask over an int64 index array: is each bit set?

        The vectorized counterpart of :meth:`get` — one word gather plus
        one shift/and over the whole array.  Indexes beyond the written
        range read as False, mirroring the scalar semantics.
        """
        idx = np.asarray(indices, dtype=np.int64)
        out = np.zeros(idx.shape[0], dtype=bool)
        valid = (idx >= 0) & (idx < self._nbits)
        vi = idx[valid]
        words = self._words[vi // _WORD_BITS]
        shifts = (vi % _WORD_BITS).astype(np.uint64)
        out[valid] = (words >> shifts) & np.uint64(1) != 0
        return out

    def iter_set(self):
        """Yield the indexes of all set bits in increasing order."""
        nonzero_words = np.nonzero(self._words)[0]
        for w in nonzero_words:
            word = int(self._words[w])
            base = int(w) * _WORD_BITS
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def to_set(self) -> set[int]:
        """Return the set of all set-bit indexes."""
        return set(self.iter_set())


class BitMatrix:
    """A growable matrix of rows of ``width`` bits (width <= 64).

    Rows are addressed by non-negative integer ids (edge ids).  Each row
    is a single 64-bit word, so reading or writing a full row is one array
    access and testing or flipping a single bit is O(1).
    """

    __slots__ = ("_rows", "_nrows", "width")

    def __init__(self, width: int, initial_rows: int = 1024) -> None:
        check_positive(width, "width")
        if width > _WORD_BITS:
            raise ValueError(
                f"BitMatrix supports at most {_WORD_BITS} columns, got {width}; "
                "query graphs larger than 64 nodes are out of scope"
            )
        check_positive(initial_rows, "initial_rows")
        self.width = width
        self._rows = np.zeros(initial_rows, dtype=np.uint64)
        self._nrows = 0

    # -- growth -----------------------------------------------------------
    def _ensure(self, row: int) -> None:
        if row >= self._rows.shape[0]:
            new_size = max(row + 1, self._rows.shape[0] * 2)
            grown = np.zeros(new_size, dtype=np.uint64)
            grown[: self._rows.shape[0]] = self._rows
            self._rows = grown
        if row + 1 > self._nrows:
            self._nrows = row + 1

    # -- single-bit operations --------------------------------------------
    def set(self, row: int, col: int) -> None:
        """Set bit (row, col)."""
        self._check_col(col)
        check_non_negative(row, "row")
        self._ensure(row)
        self._rows[row] |= np.uint64(1 << col)

    def clear(self, row: int, col: int) -> None:
        """Clear bit (row, col)."""
        self._check_col(col)
        check_non_negative(row, "row")
        if row >= self._nrows:
            return
        self._rows[row] &= np.uint64(~(1 << col) & (2**_WORD_BITS - 1))

    def get(self, row: int, col: int) -> bool:
        """Return bit (row, col); False for rows never written."""
        self._check_col(col)
        check_non_negative(row, "row")
        if row >= self._nrows:
            return False
        return bool((int(self._rows[row]) >> col) & 1)

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.width:
            raise IndexError(f"column {col} out of range [0, {self.width})")

    # -- row operations ----------------------------------------------------
    def get_row(self, row: int) -> int:
        """Return the full row as a Python int bitmask."""
        check_non_negative(row, "row")
        if row >= self._nrows:
            return 0
        return int(self._rows[row])

    def set_row(self, row: int, mask: int) -> None:
        """Overwrite the full row with ``mask``."""
        check_non_negative(row, "row")
        if mask < 0 or mask >= (1 << self.width):
            raise ValueError(f"mask {mask:#x} does not fit in {self.width} bits")
        self._ensure(row)
        self._rows[row] = np.uint64(mask)

    def clear_row(self, row: int) -> None:
        """Clear every bit of ``row`` (used when an edge id is recycled)."""
        if row < self._nrows:
            self._rows[row] = 0

    def row_any(self, row: int) -> bool:
        """Return True if any bit of ``row`` is set."""
        return self.get_row(row) != 0

    # -- buffer export / attach ---------------------------------------------
    def export_words(self) -> tuple[np.ndarray, int]:
        """Return ``(rows, nrows)`` where ``rows`` is a view of the live rows.

        ``rows`` aliases this matrix's storage (no copy); callers copy it
        into a shared-memory segment and re-attach with :meth:`from_words`.
        """
        return self._rows[: self._nrows], self._nrows

    @classmethod
    def from_words(cls, rows: np.ndarray, width: int, nrows: int | None = None) -> "BitMatrix":
        """Wrap an existing uint64 row buffer (zero-copy attach).

        Like :meth:`BitVector.from_words`, the attached matrix must be
        treated as read-only: writing a row beyond the buffer reallocates
        private storage and severs the aliasing.
        """
        check_positive(width, "width")
        matrix = cls.__new__(cls)
        matrix.width = width
        matrix._rows = np.asarray(rows, dtype=np.uint64)
        matrix._nrows = len(matrix._rows) if nrows is None else nrows
        return matrix

    def load_words(self, rows: np.ndarray, nrows: int) -> None:
        """Overwrite all content from an exported row buffer (in place).

        The writable inverse of :meth:`from_words`, used by checkpoint
        restore: existing references to this matrix stay valid.
        """
        rows = np.asarray(rows, dtype=np.uint64)
        if rows.shape[0] > self._rows.shape[0]:
            self._rows = np.array(rows, dtype=np.uint64, copy=True)
        else:
            self._rows[: rows.shape[0]] = rows
            self._rows[rows.shape[0] :] = 0
        self._nrows = nrows

    # -- bulk operations ----------------------------------------------------
    def filter_rows_with_column(self, rows, col: int) -> list[int]:
        """Return the subset of ``rows`` whose bit ``col`` is set (vectorized).

        This is the hot path of candidate fetching during enumeration: the
        adjacency list of the anchor vertex is filtered against one DEBI
        column.  A single vectorized gather-and-mask replaces per-row
        scalar lookups.
        """
        self._check_col(col)
        n = len(rows)
        if n == 0:
            return []
        if n < 8:  # small lists: plain Python is faster than array round-trips
            mask = 1 << col
            limit = self._nrows
            rows_arr = self._rows
            return [r for r in rows if r < limit and int(rows_arr[r]) & mask]
        idx = np.asarray(rows, dtype=np.int64)
        valid = idx < self._nrows
        gathered = np.zeros(n, dtype=np.uint64)
        gathered[valid] = self._rows[idx[valid]]
        hits = (gathered & np.uint64(1 << col)) != 0
        return [int(r) for r, hit in zip(rows, hits) if hit]

    def column_mask(self, rows: np.ndarray, col: int) -> np.ndarray:
        """Boolean mask over ``rows`` (int64 array): is bit ``col`` set per row?

        The vectorized core of the fused candidate pipeline: one gather +
        one bitwise-and over a whole adjacency partition, instead of one
        scalar lookup per edge.  Rows beyond the written range read as 0.
        """
        self._check_col(col)
        valid = rows < self._nrows
        gathered = np.zeros(len(rows), dtype=np.uint64)
        gathered[valid] = self._rows[rows[valid]]
        return (gathered & np.uint64(1 << col)) != 0

    def set_rows_col(self, rows: np.ndarray, col: int) -> None:
        """Set bit ``col`` on every row in ``rows`` (vectorized bulk write).

        The columnar-ingest counterpart of :meth:`set`: one fancy-indexed
        OR over the whole id array.  Duplicate row ids are safe — numpy's
        buffered fancy assignment applies the (idempotent) OR once.
        """
        self._check_col(col)
        idx = np.asarray(rows, dtype=np.int64)
        if idx.shape[0] == 0:
            return
        check_non_negative(int(idx.min()), "row")
        self._ensure(int(idx.max()))
        self._rows[idx] |= np.uint64(1 << col)

    def clear_rows(self, rows: np.ndarray) -> None:
        """Clear every bit of every row in ``rows`` (vectorized bulk clear).

        The bulk counterpart of :meth:`clear_row`; rows beyond the written
        range are ignored, mirroring the scalar semantics.
        """
        idx = np.asarray(rows, dtype=np.int64)
        if idx.shape[0] == 0:
            return
        check_non_negative(int(idx.min()), "row")
        self._rows[idx[idx < self._nrows]] = 0

    def get_rows(self, rows: np.ndarray) -> np.ndarray:
        """Gather the full row words for ``rows`` (uint64 array).

        Rows beyond the written range read as 0, mirroring :meth:`get_row`.
        """
        idx = np.asarray(rows, dtype=np.int64)
        gathered = np.zeros(idx.shape[0], dtype=np.uint64)
        valid = idx < self._nrows
        gathered[valid] = self._rows[idx[valid]]
        return gathered

    def count(self) -> int:
        """Total number of set bits across all rows."""
        if self._nrows == 0:
            return 0
        return int(np.unpackbits(self._rows[: self._nrows].view(np.uint8)).sum())

    def column_count(self, col: int) -> int:
        """Number of rows with bit ``col`` set."""
        self._check_col(col)
        if self._nrows == 0:
            return 0
        mask = np.uint64(1 << col)
        return int(np.count_nonzero(self._rows[: self._nrows] & mask))

    def rows_with_column(self, col: int) -> np.ndarray:
        """Return the row ids whose bit ``col`` is set."""
        self._check_col(col)
        if self._nrows == 0:
            return np.empty(0, dtype=np.int64)
        mask = np.uint64(1 << col)
        return np.nonzero(self._rows[: self._nrows] & mask)[0]

    def clear_all(self) -> None:
        """Reset the matrix to all zeros while keeping the capacity."""
        self._rows[:] = 0

    def nbytes(self) -> int:
        """Approximate memory footprint of the live rows in bytes."""
        return int(self._nrows * self._rows.itemsize)

    def __len__(self) -> int:
        return self._nrows
