"""Deterministic fault injection for the self-healing execution layer.

The supervisor (:mod:`repro.core.supervisor`) promises that worker
crashes, hangs and corrupt IPC messages are survived without changing
results.  Proving that needs *reproducible* faults: this module lets a
test (or :mod:`benchmarks.perf_smoke`'s ``self_healing_parity`` gate)
arm a :class:`FaultPlan` in the parent process, and the pool's forked
workers inherit the armed state and misbehave on cue.

Three fault kinds are supported, mirroring the failure modes the
recovery path must handle:

``kill``
    The worker SIGKILLs itself when its per-process unit counter reaches
    ``kill_at_unit`` — a hard crash mid-epoch, detected parent-side by
    the liveness poll.

``hang``
    The worker sleeps for ``hang_seconds`` instead of enumerating — a
    wedged worker, detected only by the per-epoch deadline.

``torn message``
    The worker replaces one result tuple with a truncated one — a
    corrupt IPC payload the parent must reject without crashing.

Each kind carries a *budget* counting how many pool **generations** are
armed: :func:`pool_spawning` (called by the pool constructor, in the
parent, before the workers fork) consumes one budget unit and freezes
the armed state the children inherit, so "kill one worker in each of the
first k generations" is expressed as ``FaultPlan(kill_at_unit=1,
kills=k)``.  A fourth budget, ``thread_failures``, fires in-process on
the thread backend (:func:`thread_unit`) to exercise the
``thread -> serial`` rung of the degradation ladder.

Every hook is a no-op (one module-attribute check) when no plan is
installed, so production runs pay nothing.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass


class InjectedFault(RuntimeError):
    """Raised by the in-process fault hooks (thread backend injection)."""


@dataclass
class FaultPlan:
    """What to break, when, and for how many pool generations.

    ``*_at_unit`` counters are 1-based and per worker *process*: a
    worker triggers its armed fault when starting its Nth work unit.
    Arming applies to every worker of a generation — whichever worker
    reaches the threshold first fires (others may too), which keeps the
    trigger deterministic under dynamic chunk scheduling: some worker
    always processes a unit, so an armed generation always faults.
    """

    #: SIGKILL a worker at its Nth unit, for the next ``kills`` generations
    kill_at_unit: int | None = None
    kills: int = 0
    #: sleep ``hang_seconds`` at the Nth unit, for ``hangs`` generations
    hang_at_unit: int | None = None
    hangs: int = 0
    hang_seconds: float = 3600.0
    #: replace one result tuple with a torn one, for ``torn_messages`` generations
    torn_at_unit: int | None = None
    torn_messages: int = 0
    #: raise :class:`InjectedFault` from a thread-backend worker, in-process
    thread_failures: int = 0


@dataclass
class _ArmedFaults:
    """The per-generation fault state frozen at fork time."""

    generation: int
    kill_at_unit: int | None = None
    hang_at_unit: int | None = None
    hang_seconds: float = 0.0
    torn_at_unit: int | None = None
    #: per-process consumption flag (each forked worker owns its copy)
    torn_sent: bool = False


_PLAN: FaultPlan | None = None
_ARMED: _ArmedFaults | None = None
_GENERATION = 0
#: per-process work-unit counter (only ever advanced inside pool workers)
_UNITS = 0


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` for pools spawned from this process on."""
    global _PLAN, _ARMED, _GENERATION
    _PLAN = plan
    _ARMED = None
    _GENERATION = 0


def clear() -> None:
    """Disarm fault injection (safe to call when nothing is installed)."""
    global _PLAN, _ARMED
    _PLAN = None
    _ARMED = None


def active() -> FaultPlan | None:
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """``with injected(FaultPlan(...)):`` — install for the block, then clear."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ---------------------------------------------------------------------- parent-side hooks
def pool_spawning() -> None:
    """Freeze the next pool generation's faults (call before forking workers).

    Consumes one unit of each non-empty budget; the resulting armed
    state is inherited by the children the caller is about to fork.
    Parent-side mutations after the fork never reach them.
    """
    global _ARMED, _GENERATION
    if _PLAN is None:
        _ARMED = None
        return
    plan = _PLAN
    armed = _ArmedFaults(generation=_GENERATION)
    _GENERATION += 1
    if plan.kills > 0 and plan.kill_at_unit is not None:
        plan.kills -= 1
        armed.kill_at_unit = plan.kill_at_unit
    if plan.hangs > 0 and plan.hang_at_unit is not None:
        plan.hangs -= 1
        armed.hang_at_unit = plan.hang_at_unit
        armed.hang_seconds = plan.hang_seconds
    if plan.torn_messages > 0 and plan.torn_at_unit is not None:
        plan.torn_messages -= 1
        armed.torn_at_unit = plan.torn_at_unit
    _ARMED = armed


# ---------------------------------------------------------------------- worker-side hooks
def worker_unit(worker_id: int) -> None:
    """Per-unit hook inside a pool worker: trigger an armed kill or hang."""
    global _UNITS
    if _ARMED is None:
        return
    _UNITS += 1
    if _ARMED.kill_at_unit is not None and _UNITS >= _ARMED.kill_at_unit:
        os.kill(os.getpid(), signal.SIGKILL)
    if _ARMED.hang_at_unit is not None and _UNITS >= _ARMED.hang_at_unit:
        _ARMED.hang_at_unit = None  # hang once, not on every later unit
        time.sleep(_ARMED.hang_seconds)


def worker_message(message: tuple) -> tuple:
    """Result-queue hook inside a pool worker: tear one armed message."""
    if _ARMED is None or _ARMED.torn_at_unit is None or _ARMED.torn_sent:
        return message
    if _UNITS >= _ARMED.torn_at_unit:
        _ARMED.torn_sent = True
        # Keep the (kind, epoch) prefix so the parent routes it to the
        # right in-flight state before choking on the missing payload.
        return message[:3]
    return message


# ---------------------------------------------------------------------- in-process hooks
def thread_unit() -> None:
    """Per-unit hook on the thread backend: raise one armed failure."""
    if _PLAN is None or _PLAN.thread_failures <= 0:
        return
    _PLAN.thread_failures -= 1
    raise InjectedFault("injected thread-backend failure")
