"""Deterministic random number generator helpers.

All synthetic dataset generators and query extractors accept a ``seed``
and construct their generators through :func:`make_rng` so that every
experiment in this repository is exactly reproducible.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may already be a generator (returned unchanged), ``None``
    (non-deterministic entropy), or any integer.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Used by the process-pool enumeration backend so that workers draw
    from non-overlapping streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
