"""Error types and argument validation helpers.

Every public entry point of the library validates its inputs eagerly and
raises one of the exception types defined here, so that user errors are
reported close to their source rather than deep inside the matching
engine.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a stream / engine configuration value is invalid."""


class GraphError(ReproError):
    """Raised on invalid graph mutations (unknown edge ids, double deletes...)."""


class QueryError(ReproError):
    """Raised when a query graph is malformed (disconnected, empty, ...)."""


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is an ``expected`` instance."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be of type {expected!r}, got {type(value).__name__}"
        )


def check_positive(value: float, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(value: float, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value!r}")


def check_in(value: Any, allowed, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {sorted(allowed)!r}, got {value!r}")
