"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs (`pip install -e .`) work in offline environments where pip
cannot create an isolated build environment (no network access to fetch
the build backend).
"""

from setuptools import setup

setup()
