"""Property-based tests for the dynamic graph store (recycling invariants)."""

from hypothesis import given, settings, strategies as st

from repro.graph.adjacency import DynamicGraph

# A small universe of vertices and labels keeps collisions (parallel edges,
# repeated deletes) frequent, which is where the interesting behaviour lives.
_events = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=6),   # src
        st.integers(min_value=0, max_value=6),   # dst
        st.integers(min_value=0, max_value=2),   # label
    ),
    max_size=80,
)


def apply_events(graph: DynamicGraph, events):
    """Apply events, skipping deletes with no live target; return the live multiset."""
    from collections import Counter

    live = Counter()
    for kind, src, dst, label in events:
        if kind == "insert":
            graph.add_edge(src, dst, label)
            live[(src, dst, label)] += 1
        else:
            if live[(src, dst, label)] > 0:
                graph.delete_edge_instance(src, dst, label)
                live[(src, dst, label)] -= 1
    return +live


class TestGraphStoreProperties:
    @given(_events, st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_live_edges_match_reference_multiset(self, events, recycle):
        graph = DynamicGraph(recycle_edge_ids=recycle)
        live = apply_events(graph, events)
        from collections import Counter

        stored = Counter((r.src, r.dst, r.label) for r in graph.edges())
        assert stored == live
        assert graph.num_edges == sum(live.values())

    @given(_events)
    @settings(max_examples=80, deadline=None)
    def test_live_edge_ids_are_unique_and_consistent(self, events):
        graph = DynamicGraph()
        apply_events(graph, events)
        ids = [r.edge_id for r in graph.edges()]
        assert len(ids) == len(set(ids))
        for record in graph.edges():
            assert record.edge_id in graph.out_edges(record.src)
            assert record.edge_id in graph.in_edges(record.dst)
            assert graph.edge(record.edge_id) == record

    @given(_events)
    @settings(max_examples=60, deadline=None)
    def test_recycling_never_exceeds_unrecycled_placeholders(self, events):
        recycled = DynamicGraph(recycle_edge_ids=True)
        plain = DynamicGraph(recycle_edge_ids=False)
        apply_events(recycled, events)
        apply_events(plain, events)
        assert recycled.num_placeholders <= plain.num_placeholders
        # Placeholders are bounded below by the peak number of live edges.
        assert recycled.num_placeholders >= recycled.num_edges

    @given(_events)
    @settings(max_examples=60, deadline=None)
    def test_adjacency_and_degree_counters_agree(self, events):
        graph = DynamicGraph()
        apply_events(graph, events)
        for vertex in graph.vertices():
            assert graph.out_degree(vertex) == len(graph.out_edges(vertex))
            assert graph.in_degree(vertex) == len(graph.in_edges(vertex))
            for label in range(3):
                assert graph.out_label_degree(vertex, label) == sum(
                    1 for e in graph.out_edges(vertex) if graph.edge(e).label == label
                )
                assert graph.in_label_degree(vertex, label) == sum(
                    1 for e in graph.in_edges(vertex) if graph.edge(e).label == label
                )
