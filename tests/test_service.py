"""Tests for the streaming service layer: broker-fed engine runs, adaptive
batching end to end, latency accounting, and the MnemonicService facade."""

import pytest

from repro.core.api import MnemonicService as LazyMnemonicService
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.registry import MultiQueryEngine
from repro.core.service import MnemonicService
from repro.query.query_graph import QueryGraph
from repro.streams.broker import StreamBroker
from repro.streams.clock import VirtualClock
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import StreamEvent
from repro.streams.generator import SnapshotGenerator
from repro.streams.sources import ListSource, ReplaySource
from repro.utils.stats import latency_summary, percentile
from repro.utils.validation import ConfigurationError

A, B, C = 1, 2, 3


def path_query():
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: A, 1: B, 2: C})


def path_events(n=6, ts0=0.0):
    """Disjoint A->B->C chains: every completed event pair is one new match."""
    events = []
    for i in range(n):
        pair = i // 2
        if i % 2 == 0:
            events.append(StreamEvent.insert(100 + pair, 500 + pair, timestamp=ts0 + i,
                                             src_label=A, dst_label=B))
        else:
            events.append(StreamEvent.insert(500 + pair, 900 + pair, timestamp=ts0 + i,
                                             src_label=B, dst_label=C))
    return events


def _engine(batch_size=4, max_batch_delay=None, stream_type=StreamType.INSERT_ONLY):
    return MnemonicEngine(
        path_query(),
        config=EngineConfig(
            stream=StreamConfig(
                stream_type=stream_type,
                batch_size=batch_size,
                max_batch_delay=max_batch_delay,
            )
        ),
    )


def _identities(run_result):
    return {
        e.identity()
        for s in run_result.snapshots
        for e in s.positive_embeddings + s.negative_embeddings
    }


class TestStatsHelpers:
    def test_percentile_interpolates(self):
        values = [0.0, 1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == pytest.approx(3.8)
        assert percentile(values, 100) == 4.0
        assert percentile([7.0], 99) == 7.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_latency_summary(self):
        summary = latency_summary([3.0, 1.0, 2.0])
        assert summary["count"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0
        assert latency_summary([]) is None


class TestBrokerFedEngineRuns:
    def test_broker_run_matches_list_run(self):
        events = path_events(10)
        with _engine() as engine:
            expected = engine.run(list(events))
        clock = VirtualClock()
        broker = StreamBroker(
            source=ReplaySource(events, events_per_second=50.0, clock=clock),
            capacity=4, clock=clock,
        )
        with _engine() as engine:
            actual = engine.run(broker)
        assert _identities(actual) == _identities(expected)
        assert actual.total_positive == expected.total_positive
        assert [s.num_insertions for s in actual.snapshots] == [
            s.num_insertions for s in expected.snapshots
        ]
        # every snapshot of a broker-fed run carries an ingest latency
        assert len(actual.snapshot_latencies()) == len(actual.snapshots)
        summary = actual.latency_summary()
        assert summary is not None and summary["p50"] <= summary["p99"]
        # the plain list run has no arrival stamps, hence no latency data
        assert expected.latency_summary() is None

    def test_adaptive_delay_flushes_small_batches(self):
        # 6 events, one per virtual second, size cap 100, delay 2.5s:
        # batches must flush on time, not wait for the cap.
        events = path_events(6)
        clock = VirtualClock()
        broker = StreamBroker(
            source=ReplaySource(events, events_per_second=1.0, clock=clock),
            capacity=16, clock=clock,
        )
        # Replay fully before consuming: with every arrival stamped
        # (0..5s, one per virtual second) the delay rule deterministically
        # splits the stream at the >= 2.5s arrival gaps.
        broker.ensure_started()
        broker.join(5.0)
        with _engine(batch_size=100, max_batch_delay=2.5) as engine:
            result = engine.run(broker)
        assert [s.num_insertions for s in result.snapshots] == [3, 3]
        assert result.total_positive == 3
        # Latency includes the queue wait (the whole replay here), so the
        # stream's 5s arrival span is the deterministic bound, not the delay.
        for latency in result.snapshot_latencies():
            assert 0.0 <= latency <= 5.0 + 1e-9

    def test_multi_query_broker_run(self):
        events = path_events(8)
        clock = VirtualClock()
        broker = StreamBroker(
            source=ReplaySource(events, events_per_second=20.0, clock=clock),
            capacity=8, clock=clock,
        )
        config = EngineConfig(stream=StreamConfig(batch_size=3))
        with MultiQueryEngine(config=config) as engine:
            qid = engine.register(path_query())
            result = engine.run(broker)
        with _engine(batch_size=3) as engine:
            expected = engine.run(list(events))
        assert _identities(result.per_query[qid]) == _identities(expected)
        assert result.latency_summary() is not None
        per_query_latencies = result.per_query[qid].snapshot_latencies()
        assert len(per_query_latencies) == len(result.snapshots)


class TestAdaptiveBatchingPlainSources:
    def test_bare_replay_source_reports_no_latency(self):
        # Regression: a ReplaySource fed straight to engine.run() (no
        # broker) also carries a `clock` attribute for pacing; using it
        # for completion stamps against event-time arrival stamps
        # fabricated nonsense latencies.  Only broker-fed runs measure.
        source = ReplaySource(path_events(4), events_per_second=1000.0,
                              clock=VirtualClock())
        generator_clock = SnapshotGenerator(source, StreamConfig(batch_size=2)).clock
        assert generator_clock is None
        with _engine(batch_size=2) as engine:
            result = engine.run(source)
        assert result.total_positive == 2
        assert result.latency_summary() is None


    def test_event_time_drives_delay_without_a_broker(self):
        # Plain list: arrival time falls back to the events' timestamps.
        events = [
            StreamEvent.insert(1, 2, timestamp=0.0),
            StreamEvent.insert(2, 3, timestamp=0.2),
            StreamEvent.insert(3, 4, timestamp=5.0),   # > 1s after batch open
            StreamEvent.insert(4, 5, timestamp=5.5),
        ]
        config = StreamConfig(batch_size=100, max_batch_delay=1.0)
        snapshots = SnapshotGenerator(ListSource(events), config).snapshots()
        assert [len(s.insertions) for s in snapshots] == [2, 2]
        assert snapshots[0].first_arrival == 0.0
        assert snapshots[1].first_arrival == 5.0

    def test_delay_none_is_bit_identical_to_fixed_batching(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=float(i)) for i in range(10)]
        fixed = SnapshotGenerator(ListSource(events), StreamConfig(batch_size=4)).snapshots()
        assert [len(s.insertions) for s in fixed] == [4, 4, 2]
        assert [s.watermark for s in fixed] == [3.0, 7.0, 9.0]


class TestMnemonicService:
    def test_lazy_api_export(self):
        assert LazyMnemonicService is MnemonicService

    def test_submit_poll_drain_roundtrip(self):
        clock = VirtualClock()
        with _engine(batch_size=2) as engine:
            service = MnemonicService(engine, clock=clock)
            events = path_events(5)
            assert service.submit(events[:4]) == 4
            results = service.poll()  # two full batches of 2
            assert [r.number for r in results] == [0, 1]
            assert sum(r.num_positive for r in results) == 2
            assert service.pending == 0
            service.submit(events[4])
            assert service.poll() == []  # open batch below the size cap
            assert service.pending == 1
            final = service.drain()
            assert len(final) == 1 and service.pending == 0
            assert service.stats()["snapshots_processed"] == 3

    def test_adaptive_delay_flush_while_idle(self):
        clock = VirtualClock()
        with _engine(batch_size=100, max_batch_delay=1.0) as engine:
            service = MnemonicService(engine, clock=clock)
            service.submit(path_events(2))
            assert service.poll() == []  # deadline not reached yet
            clock.advance(1.0)
            results = service.poll()  # idle flush: no new events needed
            assert len(results) == 1
            assert results[0].ingest_latency_seconds == pytest.approx(1.0)

    def test_tuple_coercion_and_latency_stamps(self):
        clock = VirtualClock()
        with _engine(batch_size=2) as engine:
            service = MnemonicService(engine, clock=clock)
            service.submit([(10, 11, 0, 0.0, A, B), (11, 12, 0, 0.0, B, C)])
            results = service.poll()
            assert len(results) == 1
            assert results[0].num_positive == 1
            assert results[0].ingest_latency_seconds == 0.0

    def test_multi_query_engine_results_are_stamped_per_query(self):
        clock = VirtualClock()
        config = EngineConfig(stream=StreamConfig(batch_size=2))
        with MultiQueryEngine(config=config) as engine:
            qid = engine.register(path_query())
            service = MnemonicService(engine, clock=clock)
            service.submit(path_events(2))
            clock.advance(0.25)
            results = service.drain()
            assert len(results) == 1
            multi = results[0]
            assert multi.ingest_latency_seconds == pytest.approx(0.25)
            assert multi.per_query[qid].ingest_latency_seconds == pytest.approx(0.25)
            assert multi.per_query[qid].num_positive == 1

    def test_cancelled_batch_resets_deadline_and_pending(self):
        # Regression: an insert/delete pair elided inside the open batch
        # used to leave the batch's arrival stamp behind — a dead
        # deadline that hot-spun broker polls, sealed an empty snapshot
        # on the next event (with a bogus latency), and left
        # service.pending overcounting forever.
        clock = VirtualClock()
        with _engine(batch_size=100, max_batch_delay=1.0,
                     stream_type=StreamType.INSERT_DELETE) as engine:
            service = MnemonicService(engine, clock=clock)
            service.submit(StreamEvent.insert(1, 2, timestamp=0.0))
            service.submit(StreamEvent.delete(1, 2, timestamp=0.0))
            assert service.poll() == []  # the pair annihilated in-batch
            assert service.pending == 0
            clock.advance(5.0)
            assert service.poll() == []  # no empty snapshot from a dead deadline
            # a fresh event past the old deadline opens a NEW batch
            service.submit(StreamEvent.insert(3, 4, timestamp=0.0))
            clock.advance(1.0)
            results = service.poll()
            assert len(results) == 1
            assert results[0].num_insertions == 1
            assert results[0].ingest_latency_seconds == pytest.approx(1.0)

    def test_cancelled_batch_clears_broker_poll_deadline(self):
        from repro.streams.generator import SnapshotBatcher

        config = StreamConfig(stream_type=StreamType.INSERT_DELETE,
                              batch_size=100, max_batch_delay=1.0)
        batcher = SnapshotBatcher(config, lambda: 0)
        assert batcher.offer(StreamEvent.insert(1, 2), arrival=0.0) == []
        assert batcher.poll_timeout(0.5) == pytest.approx(0.5)
        assert batcher.offer(StreamEvent.delete(1, 2), arrival=0.5) == []
        # batch is empty again: no deadline, no pending flush
        assert batcher.poll_timeout(10.0) is None
        assert batcher.flush() is None
        # and the next event opens a batch with its OWN arrival stamp
        assert batcher.offer(StreamEvent.insert(3, 4), arrival=7.0) == []
        assert batcher.deadline() == pytest.approx(8.0)

    def test_submit_rejects_nothing_but_handles_event_tuples(self):
        # Regression: a bare tuple OF StreamEvents was treated as one
        # coercible field-tuple, nesting events into a corrupt event.
        clock = VirtualClock()
        with _engine(batch_size=2) as engine:
            service = MnemonicService(engine, clock=clock)
            events = tuple(path_events(2))
            assert service.submit(events) == 2
            results = service.poll()
            assert len(results) == 1 and results[0].num_positive == 1

    def test_insert_delete_service(self):
        clock = VirtualClock()
        with _engine(batch_size=10, stream_type=StreamType.INSERT_DELETE) as engine:
            service = MnemonicService(engine, clock=clock)
            events = path_events(4)
            service.submit(events)
            service.submit(StreamEvent.delete(events[0].src, events[0].dst,
                                              timestamp=events[0].timestamp))
            results = service.drain()
            # insert of events[0] was cancelled in-batch by the delete
            assert sum(r.num_insertions for r in results) == 3
            assert sum(r.num_positive for r in results) == 1

    def test_sliding_window_rejected(self):
        config = EngineConfig(stream=StreamConfig(
            stream_type=StreamType.SLIDING_WINDOW, window=10.0, stride=5.0
        ))
        with MnemonicEngine(path_query(), config=config) as engine:
            with pytest.raises(ConfigurationError):
                MnemonicService(engine)

    def test_close_refuses_further_submissions(self):
        with _engine(batch_size=2) as engine:
            service = MnemonicService(engine, clock=VirtualClock())
            service.submit(path_events(2))
            final = service.close()
            assert len(final) == 1
            assert service.close() == []  # idempotent
            with pytest.raises(ConfigurationError):
                service.submit(path_events(2))

    def test_context_manager_drains_on_exit(self):
        clock = VirtualClock()
        with _engine(batch_size=100) as engine:
            with MnemonicService(engine, clock=clock) as service:
                service.submit(path_events(2))
            assert service.pending == 0  # exit drained the partial batch
            assert engine.graph.num_edges == 2

    def test_exceptional_exit_stops_ingest_without_processing(self):
        clock = VirtualClock()
        with _engine(batch_size=100) as engine:
            with pytest.raises(RuntimeError):
                with MnemonicService(engine, clock=clock) as service:
                    service.submit(path_events(2))
                    raise RuntimeError("application bug")
            assert engine.graph.num_edges == 0  # nothing was force-processed
