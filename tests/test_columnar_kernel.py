"""Property and edge-case tests for the columnar enumeration kernel.

The kernel's contract is strict: for any supported context it must
reproduce the tuple-at-a-time reference path **exactly** — the same
embeddings (as identity sets; the kernel emits breadth-first, the
reference depth-first), the same ``candidates_scanned`` totals, and the
same behaviour at every degenerate input (no units, no candidates,
duplicate-vertex rejections).  The arena that backs it must grow
geometrically, never shrink, and be reusable across batches without
further allocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.enumeration import (
    EmbeddingArena,
    columnar_enumerate,
    columnar_enumerate_packed,
    columnar_supported,
    decompose_batch,
)
from repro.matchers import HomomorphismMatcher, IsomorphismMatcher
from repro.query.query_graph import QueryGraph
from repro.streams.events import StreamEvent

# ---------------------------------------------------------------------- helpers
_QUERIES = [
    QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0}),
    QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)], node_labels={0: 0, 1: 1, 2: 0}),
    QueryGraph.from_edges([(0, 1), (0, 2), (3, 0)], node_labels={0: 1, 1: 0, 2: 0, 3: 0}),
    QueryGraph.from_edges([(0, 1), (1, 2), (1, 3)]),
]


def _random_events(rng, num_events, num_vertices=8, num_labels=2):
    """A random insert/delete stream over a small labelled vertex set."""
    vertex_label = {v: v % 2 for v in range(num_vertices)}
    live: dict[tuple, int] = {}
    events = []
    for _ in range(num_events):
        src, dst = (int(x) for x in rng.integers(0, num_vertices, size=2))
        if src == dst:
            continue
        label = int(rng.integers(0, num_labels))
        if rng.random() < 0.8 or not live.get((src, dst, label)):
            events.append(StreamEvent.insert(src, dst, label, 0.0,
                                             vertex_label[src], vertex_label[dst]))
            live[(src, dst, label)] = live.get((src, dst, label), 0) + 1
        else:
            events.append(StreamEvent.delete(src, dst, label))
            live[(src, dst, label)] -= 1
    return events


def _batches(events, rng, max_batch=7):
    position = 0
    while position < len(events):
        size = int(rng.integers(1, max_batch + 1))
        yield events[position : position + size]
        position += size


def _identities(embeddings):
    return {e.identity() for e in embeddings}


def _run_engine(query, batched_events, kernel, match_def=None):
    """Feed batches through one engine; return per-batch identity sets + scans."""
    engine = MnemonicEngine(query, config=EngineConfig(kernel=kernel),
                            match_def=match_def)
    positives, negatives, scanned = [], [], 0
    for batch in batched_events:
        inserts = [e for e in batch if e.is_insert]
        deletes = [e for e in batch if e.is_delete]
        if inserts:
            result = engine.batch_inserts(inserts)
            positives.append(_identities(result.positive_embeddings))
            scanned += result.candidates_scanned
        if deletes:
            result = engine.batch_deletes(deletes)
            negatives.append(_identities(result.negative_embeddings))
            scanned += result.candidates_scanned
    return engine, positives, negatives, scanned


# ---------------------------------------------------------------------- kernel == reference
class TestKernelMatchesReference:
    @pytest.mark.parametrize("query_index", range(len(_QUERIES)))
    @pytest.mark.parametrize("injective", [True, False])
    def test_randomized_streams_agree_batch_for_batch(self, rng, query_index, injective):
        """Columnar and reference engines agree on every batch's results."""
        query = _QUERIES[query_index]
        match_def = IsomorphismMatcher() if injective else HomomorphismMatcher()
        events = _random_events(rng, num_events=60)
        splits = list(_batches(events, rng))
        _, col_pos, col_neg, col_scans = _run_engine(
            query, splits, "columnar", type(match_def)())
        _, ref_pos, ref_neg, ref_scans = _run_engine(
            query, splits, "python", type(match_def)())
        assert col_pos == ref_pos
        assert col_neg == ref_neg
        assert col_scans == ref_scans

    def test_kernel_level_parity_on_full_enumeration(self, rng, paper_example):
        """columnar_enumerate over the live graph == the tuple enumerate loop."""
        engine = MnemonicEngine(paper_example.query)
        engine.load_initial(paper_example.initial_events()
                            + paper_example.delta1_events())
        live_ids = [record.edge_id for record in engine.graph.edges()]
        context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
        units = decompose_batch(context, live_ids)
        assert columnar_supported(context)
        embeddings, count = columnar_enumerate(context, units)
        reference = [
            e for unit in units for e in context.match_def.enumerate(context, unit)
        ]
        assert count == len(embeddings) == len(reference)
        assert _identities(embeddings) == _identities(reference)

    def test_count_only_matches_collected_count(self, paper_example):
        engine = MnemonicEngine(paper_example.query)
        engine.load_initial(paper_example.initial_events()
                            + paper_example.delta1_events())
        live_ids = [record.edge_id for record in engine.graph.edges()]
        context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
        units = decompose_batch(context, live_ids)
        collected, n_collected = columnar_enumerate(context, units, collect=True)
        context2 = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
        empty, n_counted = columnar_enumerate(context2, decompose_batch(context2, live_ids),
                                              collect=False)
        assert empty == []
        assert n_counted == n_collected == len(collected)

    def test_packed_layout_roundtrips(self, paper_example):
        """The arena's direct IPC emission unpacks to the collected embeddings."""
        from repro.core.parallel import _unpack_embeddings

        engine = MnemonicEngine(paper_example.query)
        engine.load_initial(paper_example.initial_events())
        live_ids = [record.edge_id for record in engine.graph.edges()]
        context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
        units = decompose_batch(context, live_ids)
        collected, _ = columnar_enumerate(context, units)
        context2 = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
        payload, count = columnar_enumerate_packed(
            context2, decompose_batch(context2, live_ids))
        unpacked = _unpack_embeddings(payload, positive=True)
        assert count == len(unpacked) == len(collected)
        assert _identities(unpacked) == _identities(collected)


# ---------------------------------------------------------------------- arena invariants
class TestArenaInvariants:
    def test_growth_is_geometric_and_monotone(self):
        arena = EmbeddingArena(capacity=4)
        arena.begin(node_rows=3, edge_rows=3)
        capacities = [arena.capacity]
        for rows in (3, 5, 9, 2, 33):
            arena.reserve(rows)
            capacities.append(arena.capacity)
        # Never shrinks, every size is the initial capacity times a power
        # of two, and only genuine growths were counted.
        assert capacities == sorted(capacities)
        for cap in capacities:
            assert cap % 4 == 0 and (cap // 4) & ((cap // 4) - 1) == 0
        assert arena.capacity >= 33
        assert arena.grow_events == 3  # 4 -> 8, 8 -> 16, 16 -> 64
        assert arena.high_water == 33

    def test_reuse_across_batches_stops_allocating(self, rng):
        """Steady-state batches reuse the arena: grow_events stays flat."""
        query = _QUERIES[0]
        events = [e for e in _random_events(rng, num_events=40) if e.is_insert]
        engine = MnemonicEngine(query, config=EngineConfig(kernel="columnar"))
        engine.load_initial(events)
        live_ids = [record.edge_id for record in engine.graph.edges()]
        arena = EmbeddingArena(capacity=8)
        for _ in range(4):
            context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
            units = decompose_batch(context, live_ids)
            columnar_enumerate(context, units, arena=arena)
        assert arena.batches_served >= 4
        grow_after_warmup = arena.grow_events
        for _ in range(3):
            context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
            columnar_enumerate(context, decompose_batch(context, live_ids), arena=arena)
        assert arena.grow_events == grow_after_warmup
        assert arena.high_water <= arena.capacity

    def test_double_buffers_are_distinct(self):
        arena = EmbeddingArena(capacity=4)
        arena.begin(node_rows=2, edge_rows=2)
        arena.reserve(2)
        back_nodes, _ = arena.back()
        arena.swap()
        front_nodes, _ = arena.front()
        assert front_nodes is back_nodes
        arena.reserve(2)
        other_nodes, _ = arena.back()
        assert other_nodes is not front_nodes

    def test_reserve_rejects_nonpositive_initial_capacity(self):
        with pytest.raises(Exception):
            EmbeddingArena(capacity=0)


# ---------------------------------------------------------------------- edge cases
class TestKernelEdgeCases:
    def _context(self, engine, edge_ids):
        return engine._make_context(batch_edge_ids=set(edge_ids), positive=True)

    def test_empty_unit_list(self, paper_example):
        engine = MnemonicEngine(paper_example.query)
        engine.load_initial(paper_example.initial_events())
        context = self._context(engine, [])
        arena = EmbeddingArena(capacity=4)
        embeddings, count = columnar_enumerate(context, [], arena=arena)
        assert embeddings == [] and count == 0
        assert arena.batches_served == 0  # no start-edge group ever began
        payload, count = columnar_enumerate_packed(context, [], arena=arena)
        assert payload.size == 0 and count == 0

    def test_zero_candidate_frontier(self):
        """A start edge whose extension step has no candidates yields nothing."""
        query = QueryGraph.from_edges([(0, 1), (1, 2)],
                                      node_labels={0: 0, 1: 1, 2: 0})
        engine = MnemonicEngine(query, config=EngineConfig(kernel="columnar"))
        # One matching start edge (0-label -> 1-label) and no second hop.
        result = engine.batch_inserts(
            [StreamEvent.insert(10, 11, 0, 0.0, 0, 1)]
        )
        assert result.positive_embeddings == []
        reference = MnemonicEngine(query, config=EngineConfig(kernel="python"))
        ref = reference.batch_inserts([StreamEvent.insert(10, 11, 0, 0.0, 0, 1)])
        assert result.candidates_scanned == ref.candidates_scanned

    def test_duplicate_vertex_rejected_under_isomorphism(self):
        """A 2-cycle cannot embed a 3-path injectively; it can homomorphically."""
        query = QueryGraph.from_edges([(0, 1), (1, 2)])
        events = [
            StreamEvent.insert(10, 11, 0, 0.0, 0, 0),
            StreamEvent.insert(11, 10, 0, 0.0, 0, 0),
        ]
        for kernel in ("columnar", "python"):
            iso = MnemonicEngine(query, config=EngineConfig(kernel=kernel),
                                 match_def=IsomorphismMatcher())
            assert iso.batch_inserts(list(events)).positive_embeddings == []
            homo = MnemonicEngine(query, config=EngineConfig(kernel=kernel),
                                  match_def=HomomorphismMatcher())
            homo_result = homo.batch_inserts(list(events))
            assert len(homo_result.positive_embeddings) == 2

    def test_duplicate_edge_witnesses_stay_distinct(self):
        """Parallel edges are distinct witnesses: the kernel must keep both."""
        query = QueryGraph.from_edges([(0, 1)])
        events = [
            StreamEvent.insert(10, 11, 0, 0.0, 0, 0),
            StreamEvent.insert(10, 11, 0, 0.0, 0, 0),
        ]
        for kernel in ("columnar", "python"):
            engine = MnemonicEngine(query, config=EngineConfig(kernel=kernel))
            result = engine.batch_inserts(list(events))
            assert len(result.positive_embeddings) == 2
            assert len(_identities(result.positive_embeddings)) == 2

    def test_unsupported_contexts_fall_back(self, paper_example):
        """Custom match definitions run the reference path, same answers."""
        from repro.core.enumeration import MatchDefinition

        class CountingMatcher(IsomorphismMatcher):
            def accept(self, context, embedding):  # overridden hook
                return MatchDefinition.accept(self, context, embedding)

        engine = MnemonicEngine(paper_example.query,
                                config=EngineConfig(kernel="columnar"),
                                match_def=CountingMatcher())
        context = engine._make_context(batch_edge_ids=set(), positive=True)
        assert not columnar_supported(context)
        result = engine.batch_inserts(paper_example.initial_events())
        reference = MnemonicEngine(paper_example.query,
                                   config=EngineConfig(kernel="python"))
        ref = reference.batch_inserts(paper_example.initial_events())
        assert _identities(result.positive_embeddings) == _identities(
            ref.positive_embeddings)

    def test_python_kernel_config_disables_kernel(self, paper_example):
        engine = MnemonicEngine(paper_example.query,
                                config=EngineConfig(kernel="python"))
        context = engine._make_context(batch_edge_ids=set(), positive=True)
        assert not columnar_supported(context)

    def test_invalid_kernel_name_rejected(self):
        from repro.utils.validation import ConfigurationError

        with pytest.raises(ConfigurationError):
            EngineConfig(kernel="simd")


# ---------------------------------------------------------------------- seam contract
class TestExtendIntersectSeam:
    def test_contiguous_int64_in_and_out(self, paper_example):
        """The seam sees C-contiguous int64 arrays and returns the same."""
        from repro.core import enumeration as enum_mod

        engine = MnemonicEngine(paper_example.query)
        engine.load_initial(paper_example.initial_events()
                            + paper_example.delta1_events())
        live_ids = [record.edge_id for record in engine.graph.edges()]
        context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
        units = decompose_batch(context, live_ids)

        seen = []
        original = enum_mod.extend_intersect

        def spy(inv, order_idx, group_counts, pool_ids, pool_verts, pool_sizes,
                bound_nodes, bound_edges, batch_ids, masked, injective,
                root_mask_fn):
            out = original(inv, order_idx, group_counts, pool_ids, pool_verts,
                           pool_sizes, bound_nodes, bound_edges, batch_ids,
                           masked, injective, root_mask_fn)
            seen.append((pool_ids, pool_verts, batch_ids, out))
            return out

        enum_mod.extend_intersect = spy
        try:
            columnar_enumerate(context, units)
        finally:
            enum_mod.extend_intersect = original
        assert seen, "the kernel never reached its seam"
        for pool_ids, pool_verts, batch_ids, out in seen:
            for pool in (*pool_ids, *pool_verts, batch_ids, *out):
                assert pool.dtype == np.int64
                assert pool.flags["C_CONTIGUOUS"]
