"""Tests for the shared-memory snapshot layer and the persistent pool.

Covers the satellite requirements of the shared-memory refactor:
attach/detach round-trips of the CSR graph export and the DEBI buffers,
pool reuse across engine batches, and graceful fallback when
``multiprocessing.shared_memory`` is unavailable.
"""

from __future__ import annotations

import pytest

from repro.core.debi import DEBI
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import (
    ParallelConfig,
    SharedMemoryPool,
    _pack_embeddings,
    _unpack_embeddings,
)
from repro.core.results import Embedding
from repro.core.shared_snapshot import SharedSnapshotWriter, SnapshotAttachment
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.graph.adjacency import CSRGraphView, DynamicGraph
from repro.query.generator import QueryGenerator
from repro.query.query_graph import QueryGraph
from repro.query.query_tree import QueryTree
from repro.streams.config import StreamConfig
from repro.utils.bitset import BitMatrix, BitVector


def small_graph() -> DynamicGraph:
    """A graph with deletions, so placeholders and live edges diverge."""
    graph = DynamicGraph()
    graph.add_edge(1, 2, label=7, timestamp=1.0, src_label=1, dst_label=2)
    graph.add_edge(2, 3, label=8, timestamp=2.0, dst_label=3)
    graph.add_edge(2, 3, label=8, timestamp=3.0)  # parallel edge
    graph.add_edge(3, 1, label=9, timestamp=4.0)
    doomed = graph.add_edge(1, 3, label=7, timestamp=5.0)
    graph.delete_edge(doomed)
    return graph


def view_of(graph: DynamicGraph) -> CSRGraphView:
    return CSRGraphView(graph.export_csr())


class TestCSRExportRoundTrip:
    def test_vertices_and_labels(self):
        graph = small_graph()
        view = view_of(graph)
        assert set(view.vertices()) == set(graph.vertices())
        assert view.num_vertices == graph.num_vertices
        for v in graph.vertices():
            assert view.vertex_label(v) == graph.vertex_label(v)
        assert not view.has_vertex(99)
        assert view.vertex_label(99) == 0

    def test_adjacency_preserved(self):
        graph = small_graph()
        view = view_of(graph)
        for v in graph.vertices():
            assert list(view.out_edges(v)) == list(graph.out_edges(v))
            assert list(view.in_edges(v)) == list(graph.in_edges(v))
            assert list(view.incident_edges(v)) == list(graph.incident_edges(v))
            assert view.out_degree(v) == graph.out_degree(v)
            assert view.in_degree(v) == graph.in_degree(v)

    def test_edge_records_and_liveness(self):
        graph = small_graph()
        view = view_of(graph)
        assert view.num_edges == graph.num_edges
        assert view.num_placeholders == graph.num_placeholders
        for record in graph.edges():
            assert view.edge(record.edge_id) == record
        dead = [i for i in range(graph.num_placeholders) if not graph.is_alive(i)]
        assert dead, "fixture should contain a dead placeholder"
        for edge_id in dead:
            assert not view.is_alive(edge_id)
            with pytest.raises(Exception):
                view.edge(edge_id)
        assert [r for r in view.edges()] == [r for r in graph.edges()]

    def test_find_edges_and_label_degrees(self):
        graph = small_graph()
        view = view_of(graph)
        assert view.find_edges(2, 3) == graph.find_edges(2, 3)
        assert view.find_edges(2, 3, label=8) == graph.find_edges(2, 3, label=8)
        assert view.find_edges(2, 3, label=99) == []
        for v in graph.vertices():
            for label in (7, 8, 9, 99):
                assert view.out_label_degree(v, label) == graph.out_label_degree(v, label)
                assert view.in_label_degree(v, label) == graph.in_label_degree(v, label)


class TestBitsetBufferRoundTrip:
    def test_bitvector_export_attach(self):
        vec = BitVector(initial_capacity=8)
        for i in (0, 3, 64, 200):
            vec.set(i)
        words, nbits = vec.export_words()
        clone = BitVector.from_words(words.copy(), nbits)
        assert clone.to_set() == vec.to_set()
        assert len(clone) == len(vec)
        assert clone.count() == vec.count()
        assert not clone.get(5)

    def test_bitmatrix_export_attach(self):
        matrix = BitMatrix(width=5, initial_rows=4)
        matrix.set(0, 1)
        matrix.set(9, 4)
        matrix.set(9, 0)
        rows, nrows = matrix.export_words()
        clone = BitMatrix.from_words(rows.copy(), width=5, nrows=nrows)
        assert len(clone) == len(matrix)
        for row in range(nrows):
            assert clone.get_row(row) == matrix.get_row(row)
        assert clone.filter_rows_with_column([0, 9], 4) == [9]
        assert clone.count() == matrix.count()


def build_debi_fixture() -> tuple[DEBI, QueryTree]:
    query = QueryGraph()
    query.add_node(0, label=1)
    query.add_node(1, label=2)
    query.add_node(2, label=3)
    query.add_edge(0, 1, label=7)
    query.add_edge(1, 2, label=8)
    tree = QueryTree(query)
    debi = DEBI(tree, initial_edges=4, initial_vertices=4)
    debi.set(0, 0)
    debi.set(3, tree.num_columns - 1)
    debi.set_root(2)
    return debi, tree


class TestSharedSnapshotRoundTrip:
    def test_publish_attach_detach(self):
        pytest.importorskip("multiprocessing.shared_memory")
        graph = small_graph()
        debi, tree = build_debi_fixture()
        batch = {0, 2}
        writer = SharedSnapshotWriter()
        attachment = SnapshotAttachment()
        try:
            descriptor = writer.publish(graph, debi, batch, positive=True)
            assert descriptor["epoch"] == 1
            view, debi_view, batch_ids = attachment.views(descriptor, tree)
            assert batch_ids == batch
            for v in graph.vertices():
                assert list(view.out_edges(v)) == list(graph.out_edges(v))
            for row in range(graph.num_placeholders):
                assert debi_view.row(row) == debi.row(row)
            assert debi_view.is_root(2) and not debi_view.is_root(1)
            # Same epoch: views are cached, not rebuilt.
            again = attachment.views(descriptor, tree)
            assert again[0] is view
        finally:
            attachment.detach()
            writer.close()

    def test_republish_advances_epoch_and_reflects_updates(self):
        pytest.importorskip("multiprocessing.shared_memory")
        graph = small_graph()
        debi, tree = build_debi_fixture()
        writer = SharedSnapshotWriter()
        attachment = SnapshotAttachment()
        try:
            first = writer.publish(graph, debi, {0}, positive=True)
            view1, _, _ = attachment.views(first, tree)
            new_edge = graph.add_edge(3, 2, label=8, timestamp=6.0)
            debi.set(new_edge, 0)
            second = writer.publish(graph, debi, {new_edge}, positive=False)
            assert second["epoch"] == first["epoch"] + 1
            assert second["positive"] is False
            view2, debi2, batch2 = attachment.views(second, tree)
            assert view2 is not view1
            assert batch2 == {new_edge}
            assert new_edge in list(view2.out_edges(3))
            assert debi2.get(new_edge, 0)
        finally:
            attachment.detach()
            writer.close()


class TestDoubleBufferedWriter:
    """Epoch/slot behaviour of the two-slot writer: segment reuse across
    epochs, growth/shrink/regrowth, zero-query publications, and
    detaching while the writer still holds the segments."""

    def test_consecutive_epochs_use_alternating_segments(self):
        pytest.importorskip("multiprocessing.shared_memory")
        graph = small_graph()
        debi, tree = build_debi_fixture()
        writer = SharedSnapshotWriter()
        try:
            assert writer.num_slots == 2
            names = [
                writer.publish(graph, debi, {0}, positive=True)["name"]
                for _ in range(4)
            ]
            # Epoch e and e+1 never share a segment (the double-buffer
            # invariant pipelining relies on); epoch e and e+2 reuse one.
            assert names[0] != names[1]
            assert names[0] == names[2]
            assert names[1] == names[3]
        finally:
            writer.close()

    def test_segment_grow_shrink_regrow(self):
        pytest.importorskip("multiprocessing.shared_memory")
        debi, tree = build_debi_fixture()
        writer = SharedSnapshotWriter()
        attachment = SnapshotAttachment()

        def graph_of(num_edges: int) -> DynamicGraph:
            graph = DynamicGraph()
            for i in range(num_edges):
                graph.add_edge(i, i + 1, label=7, timestamp=float(i))
            return graph

        try:
            small = writer.publish(graph_of(4), debi, {0}, positive=True)
            # Grow: a much larger snapshot must replace the slot's segment.
            big_graph = graph_of(600)
            big_debi, _ = build_debi_fixture()
            grown = writer.publish(big_graph, big_debi, set(range(600)), positive=True)
            view, _, batch = attachment.views(grown, tree)
            assert view.num_edges == 600
            assert len(batch) == 600
            # Shrink: a small snapshot fits the grown segment (same name,
            # no reallocation) two epochs later when its slot comes round.
            shrunk = writer.publish(graph_of(3), debi, {0}, positive=False)
            shrunk_again = writer.publish(graph_of(3), debi, {0}, positive=False)
            assert shrunk_again["name"] == grown["name"]
            view2, _, _ = attachment.views(shrunk_again, tree)
            assert view2.num_edges == 3
            # Regrow beyond the first growth: replaced again, still readable.
            regrown = writer.publish(
                graph_of(2000), big_debi, set(range(2000)), positive=True
            )
            view3, _, batch3 = attachment.views(regrown, tree)
            assert view3.num_edges == 2000
            assert len(batch3) == 2000
            assert shrunk["epoch"] < shrunk_again["epoch"] < regrown["epoch"]
        finally:
            attachment.detach()
            writer.close()

    def test_zero_query_multi_publish(self):
        """A multi-query engine may evaluate a batch with no registered
        queries: the publication ships the graph and an empty DEBI map."""
        pytest.importorskip("multiprocessing.shared_memory")
        graph = small_graph()
        writer = SharedSnapshotWriter()
        attachment = SnapshotAttachment()
        try:
            descriptor = writer.publish(graph, {}, {0, 1}, positive=True)
            assert descriptor["debi_meta"] == {}
            view, debis, batch = attachment.views(descriptor, {})
            assert debis == {}
            assert batch == {0, 1}
            assert view.num_edges == graph.num_edges
        finally:
            attachment.detach()
            writer.close()

    def test_detach_while_writer_attached(self):
        """A worker detaching mid-stream must not disturb the writer or
        other attachments; re-attaching afterwards works."""
        pytest.importorskip("multiprocessing.shared_memory")
        graph = small_graph()
        debi, tree = build_debi_fixture()
        writer = SharedSnapshotWriter()
        first = SnapshotAttachment()
        second = SnapshotAttachment()
        try:
            descriptor = writer.publish(graph, debi, {0}, positive=True)
            view1, _, _ = first.views(descriptor, tree)
            view2, _, _ = second.views(descriptor, tree)
            assert list(view1.edges()) == list(view2.edges())
            first.detach()  # worker goes away; segment stays mapped elsewhere
            assert list(view2.edges()) == list(graph.edges())
            # The detached attachment can come back for a later epoch.
            later = writer.publish(graph, debi, {1}, positive=False)
            view3, _, batch3 = first.views(later, tree)
            assert batch3 == {1}
            assert view3.num_edges == graph.num_edges
        finally:
            first.detach()
            second.detach()
            writer.close()

    def test_detach_is_idempotent_and_releases_mappings(self):
        pytest.importorskip("multiprocessing.shared_memory")
        graph = small_graph()
        debi, tree = build_debi_fixture()
        writer = SharedSnapshotWriter()
        attachment = SnapshotAttachment()
        try:
            for _ in range(3):  # map both slots
                attachment.views(writer.publish(graph, debi, {0}, True), tree)
            assert len(attachment._segments) == 2
            attachment.detach()
            assert attachment._segments == {}
            attachment.detach()  # second detach is a no-op
        finally:
            writer.close()


class TestEmbeddingPacking:
    def test_pack_unpack_round_trip(self):
        embeddings = [
            Embedding(node_map=((0, 10), (1, 11)), edge_map=((0, 5),), start_edge=0),
            Embedding(
                node_map=((0, 7), (1, 8), (2, 9)),
                edge_map=((0, 1), (1, 2), (2, 3)),
                start_edge=2,
            ),
        ]
        packed = _pack_embeddings(embeddings)
        restored = _unpack_embeddings(packed, positive=True)
        assert restored == embeddings
        negatives = _unpack_embeddings(packed, positive=False)
        assert all(not e.positive for e in negatives)

    def test_empty(self):
        assert _unpack_embeddings(_pack_embeddings([]), positive=True) == []


def pool_workload():
    stream = generate_netflow_stream(NetFlowConfig(num_events=600, num_hosts=60, seed=13))
    graph = graph_from_events(stream[:400])
    query = QueryGenerator(graph, seed=2).tree_query(3)
    return query, stream


def run_engine(query, stream, parallel: ParallelConfig):
    config = EngineConfig(stream=StreamConfig(batch_size=64), parallel=parallel)
    with MnemonicEngine(query, config=config) as engine:
        engine.load_initial(stream[:400])
        result = engine.run(stream[400:])
        return engine, result


class TestPersistentPool:
    def test_pool_reused_across_batches(self):
        pytest.importorskip("multiprocessing.shared_memory")
        query, stream = pool_workload()
        config = EngineConfig(
            stream=StreamConfig(batch_size=64),
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=8),
        )
        with MnemonicEngine(query, config=config) as engine:
            assert isinstance(engine._pool, SharedMemoryPool)
            pool = engine._pool
            engine.load_initial(stream[:400])
            result = engine.run(stream[400:])
            assert len(result.snapshots) > 1, "workload must span several batches"
            assert engine._pool is pool, "pool must persist across batches"
            assert pool.usable
            # Several batches were published through the same writer
            # (batches whose decomposition yields no work skip publication).
            assert pool._writer.epoch >= 2
        assert not pool.usable  # close() shuts the pool down

    def test_pool_results_match_serial(self):
        pytest.importorskip("multiprocessing.shared_memory")
        query, stream = pool_workload()
        _, serial = run_engine(query, stream, ParallelConfig(backend="serial"))
        _, pooled = run_engine(
            query, stream, ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        )
        serial_set = {e.identity() for s in serial.snapshots for e in s.positive_embeddings}
        pooled_set = {e.identity() for s in pooled.snapshots for e in s.positive_embeddings}
        assert pooled_set == serial_set
        assert pooled.total_positive == serial.total_positive

    def test_count_only_mode_matches_collected_counts(self):
        pytest.importorskip("multiprocessing.shared_memory")
        query, stream = pool_workload()
        parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        config = EngineConfig(
            stream=StreamConfig(batch_size=64), parallel=parallel, collect_embeddings=False
        )
        with MnemonicEngine(query, config=config) as engine:
            engine.load_initial(stream[:400])
            counted = engine.run(stream[400:])
        _, collected = run_engine(query, stream, parallel)
        assert counted.total_positive == collected.total_positive
        assert not counted.all_positive(), "count-only mode must not materialise embeddings"

    def test_fallback_when_shared_memory_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.parallel.shared_memory_available", lambda: False
        )
        query, stream = pool_workload()
        engine, result = run_engine(
            query, stream, ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        )
        assert engine._pool is None, "pool must not spawn without shared memory"
        _, serial = run_engine(query, stream, ParallelConfig(backend="serial"))
        assert result.total_positive == serial.total_positive

    def test_engine_close_is_idempotent(self):
        query, stream = pool_workload()
        config = EngineConfig(
            parallel=ParallelConfig(backend="process", num_workers=2)
        )
        engine = MnemonicEngine(query, config=config)
        engine.close()
        engine.close()
        assert engine._pool is None
